#!/usr/bin/env python
"""Passive-DNS exploration: why dedicated vs shared is decidable.

Walks the §4.2.1 reasoning on three concrete backends:

* a vendor-operated dedicated cluster (Philips) — every address
  reverse-maps to one second-level domain;
* a cloud-VM tenancy (Anova) — the A-record owner is the provider's
  compute name, but the only *querying* name is the tenant's, so the
  address still counts as dedicated;
* a shared CDN domain — the same address serves dozens of unrelated
  second-level domains, so it can never be attributed.

Run:  python examples/passive_dns_explorer.py
"""

from __future__ import annotations

from repro.cloud.addressing import ip_to_str
from repro.core.infra import classify_infrastructure
from repro.scenario import build_default_scenario
from repro.timeutil import STUDY_END, STUDY_START


def explore(scenario, fqdn: str) -> None:
    dnsdb = scenario.dnsdb
    print(f"\n== {fqdn} ==")
    addresses = sorted(
        dnsdb.addresses_for_domain(fqdn, STUDY_START, STUDY_END)
    )
    print(f"forward (domain -> addresses): {len(addresses)} addresses")
    for address in addresses[:3]:
        owners = dnsdb.owners_of_address(address, STUDY_START, STUDY_END)
        slds = dnsdb.slds_for_address(address, STUDY_START, STUDY_END)
        print(
            f"  {ip_to_str(address)}: {len(owners)} owner name(s), "
            f"SLDs behind it: {sorted(slds)[:4]}"
            + (" ..." if len(slds) > 4 else "")
        )
    verdict = classify_infrastructure(
        fqdn, dnsdb, STUDY_START, STUDY_END
    )
    print(f"verdict: {verdict.status.upper()}")
    if verdict.shared_addresses:
        print(
            f"  (shared evidence on "
            f"{len(verdict.shared_addresses)} address(es))"
        )


def main() -> None:
    scenario = build_default_scenario(seed=7)
    library = scenario.library

    dedicated = library.rule_domains["Philips Dev."][0]
    cloud_vm = library.rule_domains["Anova Sousvide"][0]
    shared = next(
        fqdn
        for fqdn, spec in library.domains.items()
        if spec.hosting == "cdn" and spec.registrant == "Amazon"
    )
    for fqdn in (dedicated, cloud_vm, shared):
        explore(scenario, fqdn)

    print(
        "\nThe dedicated and cloud-VM domains can anchor detection "
        "rules; the CDN-hosted one can never be attributed from flow "
        "headers (Section 4.2)."
    )
    resolution = scenario.make_resolver(feed_dnsdb=False).resolve(
        cloud_vm, STUDY_START
    )
    print(
        f"\nCNAME chain of the cloud tenancy: {cloud_vm} -> "
        f"{', '.join(resolution.cname_targets)} -> "
        f"{', '.join(ip_to_str(a) for a in resolution.addresses)}"
    )


if __name__ == "__main__":
    main()
