#!/usr/bin/env python
"""ISP IoT census: the network-analytics scenario of Section 6.

An ISP operator wants to know which IoT products its subscriber base
runs — without payload inspection, from sampled NetFlow only.  This
example runs the in-the-wild simulation over a week at reduced scale
and prints an operator dashboard: per-class penetration, the
Amazon/Samsung drill-down, diurnal usage, and the actively-used Alexa
estimate of Section 7.1.

Run:  python examples/isp_iot_census.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_histogram_row, render_table
from repro.core.hitlist import build_hitlist
from repro.core.rules import generate_rules
from repro.isp.simulation import WildConfig, run_wild_isp
from repro.scenario import build_default_scenario

SUBSCRIBERS = 60_000
DAYS = 7


def main() -> None:
    scenario = build_default_scenario(seed=11)
    hitlist = build_hitlist(scenario)
    rules = generate_rules(scenario.catalog, hitlist)

    print(
        f"running the wild ISP study: {SUBSCRIBERS:,} subscriber lines, "
        f"{DAYS} days, 1-in-100 packet sampling ..."
    )
    result = run_wild_isp(
        scenario,
        rules,
        hitlist,
        WildConfig(subscribers=SUBSCRIBERS, days=DAYS, seed=3),
    )

    print("\n== daily penetration (mean over the week) ==")
    rows = []
    for class_name in (
        "Alexa Enabled", "Amazon Product", "Fire TV",
        "Samsung IoT", "Samsung TV",
    ):
        daily = result.daily_counts[class_name].mean()
        rows.append(
            (
                class_name,
                int(daily),
                f"{daily / SUBSCRIBERS:.2%}",
                result.owner_counts[class_name],
            )
        )
    rows.append(
        (
            "any IoT class",
            int(result.any_daily.mean()),
            f"{result.any_daily.mean() / SUBSCRIBERS:.2%}",
            "-",
        )
    )
    print(
        render_table(
            ("class", "lines/day", "penetration", "true owners"), rows
        )
    )

    print("\n== top 10 other device types (mean lines/day) ==")
    others = sorted(
        (
            (series.mean(), name)
            for name, series in result.daily_counts.items()
            if name
            not in (
                "Alexa Enabled", "Amazon Product", "Fire TV",
                "Samsung IoT", "Samsung TV",
            )
        ),
        reverse=True,
    )[:10]
    maximum = others[0][0] if others else 1.0
    for value, name in others:
        print(render_histogram_row(name, value, maximum))

    print("\n== Alexa diurnal profile (mean detected lines per hour of day) ==")
    hourly = result.hourly_counts["Alexa Enabled"].reshape(-1, 24)
    profile = hourly.mean(axis=0)
    for hour, value in enumerate(profile):
        print(render_histogram_row(f"{hour:02d}:00", value, profile.max()))

    print("\n== actively used Alexa devices (Section 7.1) ==")
    active = result.alexa_active_hourly
    print(
        f"peak hour: {active.max():,} lines in active use "
        f"({active.max() / max(1, result.daily_counts['Alexa Enabled'].mean()):.1%} "
        "of the detected population) — the paper reports ~27k of ~2.2M"
    )


if __name__ == "__main__":
    main()
