#!/usr/bin/env python
"""Security use-case (Section 7.2): which IoT device is behind an attack?

An ISP observes a set of subscriber lines emitting suspicious traffic
(say, participating in a Mirai-style botnet).  The paper suggests using
the detection methodology to find *which IoT products are common among
the suspicious lines*, so their owners can be notified or the botnet's
control traffic blocked.

We simulate that investigation: plant a vulnerable device class on a
set of "infected" lines, mix them into a larger population, run the
detector over everyone's sampled flows, and rank device classes by how
over-represented they are among the suspicious lines.

Run:  python examples/botnet_investigation.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.detector import WindowedDetector, anonymize_subscriber
from repro.core.hitlist import build_hitlist
from repro.core.rules import generate_rules
from repro.devices.behavior import DeviceBehavior
from repro.scenario import build_default_scenario
from repro.timeutil import SECONDS_PER_DAY, SECONDS_PER_HOUR, STUDY_START

VULNERABLE_PRODUCT = "Wansview Cam"  # the class behind the "attack"
INFECTED_LINES = 60
CLEAN_LINES = 400


def _simulate_line(
    detector, scenario, rng, resolver, subscriber, products
) -> None:
    """One day of sampled evidence for a subscriber's devices."""
    sampling = 100
    for product in products:
        behavior = DeviceBehavior(scenario.library.profile(product))
        for hour in range(24):
            when = STUDY_START + hour * SECONDS_PER_HOUR
            traffic = behavior.hour_traffic(rng, active=False)
            for fqdn, packets in traffic.packets.items():
                if rng.binomial(packets, 1.0 / sampling) == 0:
                    continue
                detector.observe_evidence(subscriber, fqdn, when + 30)


def main() -> None:
    scenario = build_default_scenario(seed=23)
    hitlist = build_hitlist(scenario)
    rules = generate_rules(scenario.catalog, hitlist)
    rng = np.random.default_rng(5)
    resolver = scenario.make_resolver(feed_dnsdb=False)

    detector = WindowedDetector(
        rules, hitlist, window_seconds=SECONDS_PER_DAY, threshold=0.4
    )

    # Population: infected lines all host the vulnerable camera (plus
    # whatever else); clean lines host random other devices.
    candidate_products = [
        product.name
        for product in scenario.catalog.products
        if product.detectable
    ]
    print(
        f"simulating {INFECTED_LINES} infected + {CLEAN_LINES} clean "
        "subscriber lines (one day, 1-in-100 sampling) ..."
    )
    suspicious = []
    for line in range(INFECTED_LINES):
        subscriber = 1_000 + line
        suspicious.append(anonymize_subscriber(subscriber))
        extra = list(
            rng.choice(candidate_products, size=2, replace=False)
        )
        _simulate_line(
            detector, scenario, rng, resolver, subscriber,
            [VULNERABLE_PRODUCT] + extra,
        )
    for line in range(CLEAN_LINES):
        subscriber = 10_000 + line
        products = list(
            rng.choice(candidate_products, size=2, replace=False)
        )
        _simulate_line(
            detector, scenario, rng, resolver, subscriber, products
        )

    detected = detector.detections_in_window(0)
    suspicious_set = set(suspicious)

    rows = []
    for class_name, subscribers in detected.items():
        hits = len(subscribers & suspicious_set)
        if hits == 0:
            continue
        share_suspicious = hits / len(suspicious_set)
        share_clean = len(subscribers - suspicious_set) / CLEAN_LINES
        lift = share_suspicious / max(share_clean, 1e-6)
        rows.append(
            (
                class_name,
                hits,
                f"{share_suspicious:.0%}",
                f"{share_clean:.1%}",
                f"{min(lift, 999):.0f}x",
            )
        )
    rows.sort(key=lambda row: -row[1])
    print(
        render_table(
            (
                "detected class",
                "suspicious lines",
                "suspicious share",
                "clean share",
                "lift",
            ),
            rows[:8],
            title="classes common among suspicious subscriber lines",
        )
    )
    top = rows[0][0]
    print(
        f"\n-> the investigation points at {top!r} "
        f"(ground truth: {VULNERABLE_PRODUCT!r})."
    )
    print(
        "The ISP can now notify owners of that device or sinkhole its "
        "control-channel destinations (Section 7.2)."
    )


if __name__ == "__main__":
    main()
