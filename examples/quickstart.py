#!/usr/bin/env python
"""Quickstart: build the world, derive detection rules, detect devices.

This walks the paper's full pipeline end to end at small scale:

1. build the simulated world (devices, backends, DNS, TLS scans);
2. run the Figure-7 hitlist pipeline (classify domains, split
   dedicated/shared backends via passive DNS, recover no-record domains
   via certificates, drop shared-infrastructure devices);
3. generate detection rules (Section 4.3);
4. feed sampled flow records from one simulated subscriber through the
   detector and print what it finds.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.cloud.addressing import ip_to_str
from repro.core.detector import FlowDetector
from repro.core.hitlist import build_hitlist
from repro.core.rules import generate_rules
from repro.devices.behavior import DeviceBehavior
from repro.netflow.records import FlowKey, FlowRecord, PROTO_TCP, TCP_ACK
from repro.scenario import build_default_scenario
from repro.timeutil import STUDY_START, SECONDS_PER_HOUR


def main() -> None:
    print("building the simulated world ...")
    scenario = build_default_scenario(seed=7)
    print(
        f"  {len(scenario.library.domains)} domains, "
        f"{len(scenario.clusters)} dedicated clusters, "
        f"{len(scenario.dnsdb)} passive-DNS tuples, "
        f"{len(scenario.scans)} scanned hosts"
    )

    print("running the hitlist pipeline (Figure 7) ...")
    hitlist = build_hitlist(scenario)
    report = hitlist.report
    print(
        f"  {report.observed_domains} observed domains -> "
        f"{report.dedicated_domains} dedicated / "
        f"{report.shared_domains} shared / "
        f"{report.no_record_domains} no-record "
        f"({report.censys_recovered_domains} recovered via certificates)"
    )
    print(f"  excluded products: {', '.join(report.excluded_products)}")

    rules = generate_rules(scenario.catalog, hitlist)
    print(f"generated {len(rules)} detection rules")

    # Simulate one subscriber line hosting an Echo Dot and a Yi camera,
    # observed through 1-in-100 packet sampling for six hours.
    print("\nsimulating one subscriber line (Echo Dot + Yi Cam) ...")
    detector = FlowDetector(rules, hitlist, threshold=0.4)
    rng = np.random.default_rng(1)
    resolver = scenario.make_resolver(feed_dnsdb=False)
    subscriber_ip = 0x0A0B0C0D
    sampling = 100

    for product in ("Echo Dot", "Yi Cam"):
        behavior = DeviceBehavior(scenario.library.profile(product))
        for hour in range(6):
            when = STUDY_START + hour * SECONDS_PER_HOUR
            traffic = behavior.hour_traffic(rng, active=False)
            for fqdn, packets in traffic.packets.items():
                sampled = rng.binomial(packets, 1.0 / sampling)
                if sampled == 0:
                    continue
                resolution = resolver.resolve(fqdn, when)
                if not resolution.addresses:
                    continue
                spec = scenario.library.domain(fqdn)
                flow = FlowRecord(
                    key=FlowKey(
                        src_ip=subscriber_ip,
                        dst_ip=resolution.addresses[0],
                        protocol=PROTO_TCP,
                        src_port=49152,
                        dst_port=spec.primary_port,
                    ),
                    first_switched=when + 60,
                    last_switched=when + 120,
                    packets=int(sampled),
                    bytes=int(sampled) * 120,
                    tcp_flags=TCP_ACK,
                    sampling_interval=sampling,
                )
                detector.observe_flow(subscriber_ip, flow)

    print(
        f"  observed {detector.flows_seen} sampled flows, "
        f"{detector.flows_matched} matched the hitlist"
    )
    print("\ndetections (threshold D=0.4):")
    for detection in detector.detections():
        hours = (detection.detected_at - STUDY_START) / 3600
        print(
            f"  {detection.class_name:<22s} after {hours:4.1f}h "
            f"via {len(detection.matched_domains)} domain(s) "
            f"(subscriber {detection.subscriber})"
        )
    print(
        "\nnote: subscriber identifiers are anonymised hashes — the raw "
        f"address {ip_to_str(subscriber_ip)} never enters analysis state."
    )


if __name__ == "__main__":
    main()
