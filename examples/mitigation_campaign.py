#!/usr/bin/env python
"""Mitigation campaign (Section 7.2): block or redirect a vulnerable
device class at the ISP border.

Scenario: a camera vendor abandons its product; its cloud endpoints are
being abused.  The ISP derives a daily blocklist / redirect map from
the detection hitlist, applies it at the border, and verifies that
(a) the vulnerable class's traffic is neutralised and (b) everyone
else's flows pass untouched.

Run:  python examples/mitigation_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.detector import FlowDetector
from repro.core.hitlist import build_hitlist
from repro.core.mitigation import FlowFilter, MitigationPlanner
from repro.core.rules import generate_rules
from repro.devices.behavior import DeviceBehavior
from repro.netflow.records import FlowKey, FlowRecord, PROTO_TCP, TCP_ACK
from repro.scenario import build_default_scenario
from repro.timeutil import SECONDS_PER_HOUR, STUDY_START

VULNERABLE_CLASS = "Wansview Cam."
NOTIFICATION_SERVER = 0x0814_2233  # the ISP's advisory portal


def _flows_for(scenario, product, subscriber_ip, hours, rng, resolver):
    sampling = 100
    behavior = DeviceBehavior(scenario.library.profile(product))
    for hour in range(hours):
        when = STUDY_START + hour * SECONDS_PER_HOUR
        traffic = behavior.hour_traffic(rng, active=False)
        for fqdn, packets in traffic.packets.items():
            sampled = rng.binomial(packets, 1.0 / sampling)
            if sampled == 0:
                continue
            resolution = resolver.resolve(fqdn, when)
            if not resolution.addresses:
                continue
            spec = scenario.library.domain(fqdn)
            yield FlowRecord(
                key=FlowKey(
                    src_ip=subscriber_ip,
                    dst_ip=resolution.addresses[0],
                    protocol=PROTO_TCP,
                    src_port=49152,
                    dst_port=spec.primary_port,
                ),
                first_switched=when + 90,
                last_switched=when + 150,
                packets=int(sampled),
                bytes=int(sampled) * 120,
                tcp_flags=TCP_ACK,
            )


def main() -> None:
    scenario = build_default_scenario(seed=41)
    hitlist = build_hitlist(scenario)
    rules = generate_rules(scenario.catalog, hitlist)
    planner = MitigationPlanner(rules, hitlist)

    policies = planner.campaign(
        VULNERABLE_CLASS, days=range(14), action="block"
    )
    print(
        f"campaign: block {VULNERABLE_CLASS!r} — "
        f"{policies[0].endpoint_count} endpoints across "
        f"{len(policies[0].domains)} domains, refreshed daily"
    )
    redirect = planner.redirect(
        VULNERABLE_CLASS, day=0, target=NOTIFICATION_SERVER
    )
    print(
        f"alternative: redirect the same endpoints to the advisory "
        f"portal ({redirect.endpoint_count} rewrite rules)"
    )

    # Apply at the border: one infected line, one innocent line.
    rng = np.random.default_rng(3)
    resolver = scenario.make_resolver(feed_dnsdb=False)
    flt = FlowFilter(policies)
    detector = FlowDetector(rules, hitlist, threshold=0.4)

    for subscriber_ip, product in (
        (0x0A00_0001, "Wansview Cam"),
        (0x0A00_0002, "Philips Hue"),
    ):
        for flow in _flows_for(
            scenario, product, subscriber_ip, 24, rng, resolver
        ):
            survivor = flt.apply(flow)
            if survivor is not None:
                detector.observe_flow(subscriber_ip, survivor)

    detected = {}
    for detection in detector.detections():
        detected.setdefault(detection.subscriber, set()).add(
            detection.class_name
        )
    print(
        render_table(
            ("filter counters", "flows"),
            [
                ("forwarded", flt.forwarded),
                ("blocked", flt.blocked),
                ("redirected", flt.redirected),
            ],
        )
    )
    print("\npost-mitigation detections per line:")
    for subscriber, classes in sorted(detected.items()):
        print(f"  {subscriber}: {', '.join(sorted(classes))}")
    blocked_class_seen = any(
        VULNERABLE_CLASS in classes for classes in detected.values()
    )
    print(
        f"\n{VULNERABLE_CLASS!r} traffic neutralised: "
        f"{'NO' if blocked_class_seen else 'YES'}; "
        "other devices unaffected."
    )


if __name__ == "__main__":
    main()
