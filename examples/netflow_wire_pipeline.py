#!/usr/bin/env python
"""End-to-end wire-format pipeline: packets → sampler → flow cache →
binary NetFlow v9 export → collector parse → detection.

Everything the ISP side of the paper does, on real bytes: a border
router samples packets 1-in-100, aggregates them into a flow cache,
exports binary NetFlow v9 packets; a collector parses the export and
feeds the flow records to the detector.

Run:  python examples/netflow_wire_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import FlowDetector
from repro.core.hitlist import build_hitlist
from repro.core.rules import generate_rules
from repro.devices.behavior import DeviceBehavior
from repro.netflow.collector import FlowCollector
from repro.netflow.records import PacketRecord, TCP_ACK
from repro.netflow.sampler import PacketSampler
from repro.netflow.v9 import NetflowV9Codec
from repro.scenario import build_default_scenario
from repro.timeutil import SECONDS_PER_HOUR, STUDY_START

SAMPLING = 100
HOURS = 8
SUBSCRIBER_IP = 0x0A141E28


def main() -> None:
    scenario = build_default_scenario(seed=17)
    hitlist = build_hitlist(scenario)
    rules = generate_rules(scenario.catalog, hitlist)
    resolver = scenario.make_resolver(feed_dnsdb=False)
    rng = np.random.default_rng(2)

    # --- router side -----------------------------------------------------
    sampler = PacketSampler(SAMPLING, mode="random", seed=9)
    cache = FlowCollector(sampling_interval=SAMPLING)
    behavior = DeviceBehavior(scenario.library.profile("Fire TV"))

    print(
        f"generating {HOURS}h of Fire TV packets through a 1/{SAMPLING} "
        "sampled border router ..."
    )
    for hour in range(HOURS):
        when = STUDY_START + hour * SECONDS_PER_HOUR
        traffic = behavior.hour_traffic(rng, active=True,
                                        functional_interactions=2)
        for fqdn, packet_count in traffic.packets.items():
            spec = scenario.library.domain(fqdn)
            resolution = resolver.resolve(fqdn, when)
            if not resolution.addresses:
                continue
            dst_ip = resolution.addresses[0]
            for index in range(packet_count):
                packet = PacketRecord(
                    timestamp=when + (index * 3600) // max(
                        1, packet_count
                    ),
                    src_ip=SUBSCRIBER_IP,
                    dst_ip=dst_ip,
                    protocol=spec.protocol,
                    src_port=49152,
                    dst_port=spec.primary_port,
                    size=120,
                    tcp_flags=TCP_ACK,
                )
                if sampler.sample(packet):
                    cache.observe(packet)
    cache.flush()
    flows = cache.drain()
    print(
        f"  {sampler.seen:,} packets on the wire, {sampler.kept:,} "
        f"sampled ({sampler.observed_rate:.2%}), {len(flows)} flow "
        "records exported"
    )

    # --- export / collect on real bytes -----------------------------------
    codec = NetflowV9Codec(source_id=7, sampling_interval=SAMPLING)
    export_packets = [
        codec.encode(flows[offset : offset + 24], STUDY_START)
        for offset in range(0, len(flows), 24)
    ]
    wire_bytes = sum(len(packet) for packet in export_packets)
    print(
        f"  exported {len(export_packets)} NetFlow v9 packets "
        f"({wire_bytes:,} bytes on the management network)"
    )

    collector_codec = NetflowV9Codec(sampling_interval=SAMPLING)
    parsed = [
        flow
        for packet in export_packets
        for flow in collector_codec.decode(packet)
    ]
    assert len(parsed) == len(flows)
    print(f"  collector parsed {len(parsed)} records back")

    # --- detection -----------------------------------------------------------
    detector = FlowDetector(rules, hitlist, threshold=0.4)
    for flow in parsed:
        detector.observe_flow(flow.src_ip, flow)
    print("\ndetections from the parsed export:")
    for detection in detector.detections():
        hours = (detection.detected_at - STUDY_START) / 3600
        print(
            f"  {detection.class_name:<16s} after {hours:4.1f}h "
            f"({len(detection.matched_domains)} domains matched)"
        )


if __name__ == "__main__":
    main()
