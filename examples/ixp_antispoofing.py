#!/usr/bin/env python
"""IXP anti-spoofing (Section 6.3): why TCP flows need established
evidence before they count.

An IXP cannot enforce spoofing prevention on its members.  A SYN flood
with forged sources towards known IoT backends would — naively — make
thousands of innocent addresses look like IoT hosts.  The paper's
filter requires a packet indicating an established connection before
trusting a TCP flow.  This example measures the damage without the
filter and the result with it.

Run:  python examples/ixp_antispoofing.py
"""

from __future__ import annotations

from repro.analysis.reporting import render_table
from repro.core.detector import FlowDetector
from repro.core.hitlist import build_hitlist
from repro.core.rules import generate_rules
from repro.ixp.fabric import make_spoofed_flows
from repro.scenario import build_default_scenario

SPOOFED_FLOWS = 5_000


def main() -> None:
    scenario = build_default_scenario(seed=31)
    hitlist = build_hitlist(scenario)
    rules = generate_rules(scenario.catalog, hitlist)

    print(
        f"injecting {SPOOFED_FLOWS:,} SYN-only flows with forged "
        "sources towards hitlist endpoints ..."
    )
    spoofed = make_spoofed_flows(hitlist, SPOOFED_FLOWS, seed=8)

    rows = []
    for filtered in (False, True):
        detector = FlowDetector(
            rules,
            hitlist,
            threshold=0.4,
            require_established=filtered,
        )
        for flow in spoofed:
            detector.observe_flow(flow.src_ip, flow)
        detections = detector.detections()
        phantom_hosts = {d.subscriber for d in detections}
        rows.append(
            (
                "established-evidence filter ON"
                if filtered
                else "no filter (naive)",
                detector.flows_matched,
                detector.flows_rejected_spoof,
                len(phantom_hosts),
            )
        )
    print(
        render_table(
            (
                "configuration",
                "flows matched",
                "flows rejected",
                "phantom IoT hosts",
            ),
            rows,
        )
    )
    naive_phantoms = rows[0][3]
    filtered_phantoms = rows[1][3]
    print(
        f"\nwithout the filter the spoof run fabricates "
        f"{naive_phantoms:,} phantom IoT hosts; with it, "
        f"{filtered_phantoms} — while legitimate established flows "
        "(see examples/quickstart.py) still pass."
    )


if __name__ == "__main__":
    main()
