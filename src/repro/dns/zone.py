"""Authoritative DNS data.

A :class:`Zone` wraps one backend infrastructure and synthesises the
records a resolver would receive: an optional CNAME chain (cloud/CDN
indirection) terminated by time-varying A records.  A :class:`ZoneSet`
aggregates all zones in a scenario and answers by longest matching
hosted name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.dns.names import normalize

__all__ = ["ResourceRecord", "Zone", "ZoneSet"]


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record as seen in a response."""

    rrname: str
    rrtype: str  # "A" or "CNAME"
    rdata: str  # dotted quad for A, target name for CNAME
    ttl: int


class _Infrastructure(Protocol):
    """The duck type every backend infrastructure satisfies."""

    def cname_chain(self, fqdn: str) -> List[str]: ...

    def a_records(self, fqdn: str, when: int) -> List[int]: ...

    def ports_for(self, fqdn: str) -> Tuple[int, ...]: ...

    @property
    def domains(self) -> Dict[str, Tuple[int, ...]]: ...


class Zone:
    """Authoritative data for the domains hosted by one infrastructure."""

    def __init__(
        self,
        infrastructure: _Infrastructure,
        a_ttl: int = 300,
        cname_ttl: int = 3600,
    ) -> None:
        self.infrastructure = infrastructure
        self.a_ttl = a_ttl
        self.cname_ttl = cname_ttl

    def hosted_names(self) -> List[str]:
        """All FQDNs this zone can answer for."""
        return list(self.infrastructure.domains)

    def answers(self, fqdn: str, when: int) -> List[ResourceRecord]:
        """Produce the full answer section for a query at time ``when``.

        The answer lists the CNAME chain first (if any), followed by the
        A records attached to the final name — exactly the shape a real
        recursive response takes and the shape the passive-DNS store
        ingests.
        """
        from repro.cloud.addressing import ip_to_str

        fqdn = normalize(fqdn)
        records: List[ResourceRecord] = []
        owner = fqdn
        for target in self.infrastructure.cname_chain(fqdn):
            records.append(
                ResourceRecord(owner, "CNAME", target, self.cname_ttl)
            )
            owner = target
        for address in self.infrastructure.a_records(fqdn, when):
            records.append(
                ResourceRecord(owner, "A", ip_to_str(address), self.a_ttl)
            )
        return records


class ZoneSet:
    """All authoritative zones of a scenario, indexed by hosted FQDN."""

    def __init__(self) -> None:
        self._by_fqdn: Dict[str, Zone] = {}

    def add(self, zone: Zone) -> None:
        """Register ``zone`` for every name it hosts."""
        for fqdn in zone.hosted_names():
            fqdn = normalize(fqdn)
            if fqdn in self._by_fqdn:
                raise ValueError(f"{fqdn!r} hosted by two zones")
            self._by_fqdn[fqdn] = zone

    def zone_for(self, fqdn: str) -> Optional[Zone]:
        return self._by_fqdn.get(normalize(fqdn))

    def answers(self, fqdn: str, when: int) -> List[ResourceRecord]:
        """Authoritative answer for ``fqdn`` or an empty list (NXDOMAIN)."""
        zone = self.zone_for(fqdn)
        if zone is None:
            return []
        return zone.answers(fqdn, when)

    def hosted_names(self) -> List[str]:
        return list(self._by_fqdn)

    def ports_for(self, fqdn: str) -> Sequence[int]:
        """Service ports for a hosted name."""
        zone = self.zone_for(fqdn)
        if zone is None:
            raise KeyError(f"no zone hosts {fqdn!r}")
        return zone.infrastructure.ports_for(normalize(fqdn))

    def __contains__(self, fqdn: str) -> bool:
        return normalize(fqdn) in self._by_fqdn

    def __len__(self) -> int:
        return len(self._by_fqdn)
