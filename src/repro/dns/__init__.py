"""DNS substrate: name utilities, authoritative zones, a caching resolver
with TTL-driven churn, and a passive-DNS observation store standing in for
Farsight DNSDB."""

from repro.dns.names import (
    is_subdomain,
    matches_pattern,
    normalize,
    second_level_domain,
)
from repro.dns.zone import ResourceRecord, Zone, ZoneSet
from repro.dns.resolver import Resolver, Resolution
from repro.dns.dnsdb import PassiveDnsDatabase, PdnsObservation

__all__ = [
    "is_subdomain",
    "matches_pattern",
    "normalize",
    "second_level_domain",
    "ResourceRecord",
    "Zone",
    "ZoneSet",
    "Resolver",
    "Resolution",
    "PassiveDnsDatabase",
    "PdnsObservation",
]
