"""Domain-name utilities.

The methodology reasons about names at two granularities: fully qualified
domain names (FQDNs, the unit of the hitlist) and "second-level" domains
(SLDs, the unit of ownership used by the dedicated/shared classifier and
the certificate matcher).  Wildcard patterns such as
``avs-alexa.*.amazon-iot.example`` appear in detection-rule side
information and in certificate names.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Tuple

__all__ = [
    "normalize",
    "labels",
    "second_level_domain",
    "is_subdomain",
    "matches_pattern",
]

_LABEL_RE = re.compile(r"^[a-z0-9_]([a-z0-9_-]*[a-z0-9_])?$")

#: Public suffixes that require three labels to identify ownership,
#: mirroring entries like ``co.uk`` on the real public-suffix list.
_TWO_LABEL_SUFFIXES = frozenset(
    {"co.uk", "com.au", "co.jp", "com.cn", "org.uk"}
)


def normalize(name: str) -> str:
    """Lowercase a domain name and strip any trailing dot."""
    name = name.strip().lower()
    if name.endswith("."):
        name = name[:-1]
    return name


def labels(name: str) -> Tuple[str, ...]:
    """Split a normalised name into its labels, root first.

    >>> labels("a.b.example")
    ('example', 'b', 'a')
    """
    name = normalize(name)
    if not name:
        return ()
    return tuple(reversed(name.split(".")))


def validate(name: str) -> None:
    """Raise :class:`ValueError` if ``name`` is not a plausible FQDN."""
    name = normalize(name)
    if not name or len(name) > 253:
        raise ValueError(f"invalid domain name: {name!r}")
    for label in name.split("."):
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label {label!r} in {name!r}")


@lru_cache(maxsize=65536)
def second_level_domain(name: str) -> str:
    """Return the registrable "second-level" domain of a name.

    >>> second_level_domain("api.eu.vendor.example")
    'vendor.example'
    >>> second_level_domain("shop.vendor.co.uk")
    'vendor.co.uk'
    """
    name = normalize(name)
    parts = name.split(".")
    if len(parts) < 2:
        return name
    suffix = ".".join(parts[-2:])
    if suffix in _TWO_LABEL_SUFFIXES and len(parts) >= 3:
        return ".".join(parts[-3:])
    return suffix


def is_subdomain(name: str, ancestor: str) -> bool:
    """True if ``name`` equals ``ancestor`` or sits below it.

    >>> is_subdomain("api.vendor.example", "vendor.example")
    True
    >>> is_subdomain("vendorx.example", "vendor.example")
    False
    """
    name = normalize(name)
    ancestor = normalize(ancestor)
    return name == ancestor or name.endswith("." + ancestor)


def matches_pattern(name: str, pattern: str) -> bool:
    """Match a name against a wildcard pattern.

    ``*`` matches exactly one label; a leading ``*.`` therefore matches
    direct children only (the X.509 wildcard convention).  Patterns may
    contain multiple wildcards, e.g. ``avs-alexa.*.amazon-iot.example``.

    >>> matches_pattern("a.vendor.example", "*.vendor.example")
    True
    >>> matches_pattern("a.b.vendor.example", "*.vendor.example")
    False
    """
    name_parts = normalize(name).split(".")
    pattern_parts = normalize(pattern).split(".")
    if len(name_parts) != len(pattern_parts):
        return False
    return all(
        want == "*" or want == have
        for have, want in zip(name_parts, pattern_parts)
    )
