"""A caching recursive resolver over the simulated zones.

Devices resolve their backend domains through this resolver; every
resolution is (optionally) mirrored into the passive-DNS database, the
way Farsight's DNSDB ingests sensor data below recursive resolvers.
TTL-driven cache expiry is what surfaces the authoritative churn of
dedicated clusters and CDNs to the clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud.addressing import str_to_ip
from repro.dns.names import normalize
from repro.dns.zone import ResourceRecord, ZoneSet

__all__ = ["Resolution", "Resolver"]


@dataclass(frozen=True)
class Resolution:
    """The outcome of one query: final addresses plus the raw records."""

    qname: str
    addresses: Tuple[int, ...]
    records: Tuple[ResourceRecord, ...]
    from_cache: bool

    @property
    def nxdomain(self) -> bool:
        return not self.records

    @property
    def cname_targets(self) -> Tuple[str, ...]:
        return tuple(
            record.rdata
            for record in self.records
            if record.rrtype == "CNAME"
        )


@dataclass
class _CacheEntry:
    expires: int
    addresses: Tuple[int, ...]
    records: Tuple[ResourceRecord, ...]


@dataclass
class Resolver:
    """Caching resolver; optionally feeds a passive-DNS sink.

    ``sink`` is any object with an ``ingest(records, when)`` method —
    in practice :class:`repro.dns.dnsdb.PassiveDnsDatabase`.
    """

    zones: ZoneSet
    sink: Optional[object] = None
    negative_ttl: int = 300
    _cache: Dict[str, _CacheEntry] = field(default_factory=dict)
    queries: int = 0
    cache_hits: int = 0

    def resolve(self, qname: str, when: int) -> Resolution:
        """Resolve ``qname`` at epoch second ``when``."""
        qname = normalize(qname)
        self.queries += 1
        entry = self._cache.get(qname)
        if entry is not None and entry.expires > when:
            self.cache_hits += 1
            return Resolution(qname, entry.addresses, entry.records, True)
        records = tuple(self.zones.answers(qname, when))
        addresses = tuple(
            str_to_ip(record.rdata)
            for record in records
            if record.rrtype == "A"
        )
        if records:
            ttl = min(record.ttl for record in records)
        else:
            ttl = self.negative_ttl
        self._cache[qname] = _CacheEntry(when + ttl, addresses, records)
        if self.sink is not None and records:
            self.sink.ingest(records, when)
        return Resolution(qname, addresses, records, False)

    def flush(self) -> None:
        """Drop every cached answer."""
        self._cache.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from cache."""
        if not self.queries:
            return 0.0
        return self.cache_hits / self.queries
