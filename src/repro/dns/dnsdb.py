"""Passive-DNS observation store — the simulation's DNSDB.

Farsight DNSDB records, for every (rrname, rrtype, rdata) tuple seen by
its sensors, the first/last time and count of observations.  The
methodology (Section 4.2.1) issues two query shapes against it:

* *forward*: every address a domain (and its CNAME chain) mapped to in a
  time window — used to expand the hitlist beyond the single vantage
  point's resolutions, and
* *inverse*: every owner name observed mapping to an address — used to
  decide whether an address exclusively serves one second-level domain.

Real DNSDB has coverage gaps (it only sees queries crossing its sensor
deck); ``coverage_filter`` models that by silently dropping observations
for selected names, which is what forces the Censys fallback of
Section 4.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cloud.addressing import str_to_ip
from repro.dns.names import normalize, second_level_domain
from repro.dns.zone import ResourceRecord

__all__ = ["PdnsObservation", "PassiveDnsDatabase"]


@dataclass
class PdnsObservation:
    """Aggregated sightings of one (rrname, rrtype, rdata) tuple."""

    rrname: str
    rrtype: str
    rdata: str
    first_seen: int
    last_seen: int
    count: int = 1

    def overlaps(self, start: int, end: int) -> bool:
        """True if any sighting falls within ``[start, end]``."""
        return self.first_seen <= end and self.last_seen >= start


class PassiveDnsDatabase:
    """Time-indexed passive-DNS store with forward and inverse indexes."""

    def __init__(
        self, coverage_filter: Optional[Callable[[str], bool]] = None
    ) -> None:
        #: Drops an observation when the filter returns ``False`` for its
        #: rrname.  ``None`` keeps everything.
        self.coverage_filter = coverage_filter
        self._tuples: Dict[Tuple[str, str, str], PdnsObservation] = {}
        self._by_rrname: Dict[str, List[PdnsObservation]] = {}
        self._a_by_address: Dict[int, List[PdnsObservation]] = {}
        self._cname_by_target: Dict[str, List[PdnsObservation]] = {}

    # ------------------------------------------------------------------
    # ingestion

    def ingest(self, records: Iterable[ResourceRecord], when: int) -> None:
        """Ingest the answer section of one resolution at time ``when``."""
        for record in records:
            rrname = normalize(record.rrname)
            if self.coverage_filter is not None and not self.coverage_filter(
                rrname
            ):
                continue
            rdata = (
                normalize(record.rdata)
                if record.rrtype == "CNAME"
                else record.rdata
            )
            key = (rrname, record.rrtype, rdata)
            observation = self._tuples.get(key)
            if observation is not None:
                observation.first_seen = min(observation.first_seen, when)
                observation.last_seen = max(observation.last_seen, when)
                observation.count += 1
                continue
            observation = PdnsObservation(
                rrname, record.rrtype, rdata, when, when
            )
            self._tuples[key] = observation
            self._by_rrname.setdefault(rrname, []).append(observation)
            if record.rrtype == "A":
                self._a_by_address.setdefault(
                    str_to_ip(record.rdata), []
                ).append(observation)
            elif record.rrtype == "CNAME":
                self._cname_by_target.setdefault(rdata, []).append(
                    observation
                )

    # ------------------------------------------------------------------
    # forward queries

    def lookup_rrset(
        self, rrname: str, start: int, end: int
    ) -> List[PdnsObservation]:
        """All observations whose owner is ``rrname`` within a window."""
        return [
            observation
            for observation in self._by_rrname.get(normalize(rrname), [])
            if observation.overlaps(start, end)
        ]

    def has_records(self, rrname: str) -> bool:
        """Whether DNSDB has *any* observation for this owner name."""
        return bool(self._by_rrname.get(normalize(rrname)))

    def addresses_for_domain(
        self, fqdn: str, start: int, end: int, _depth: int = 0
    ) -> Set[int]:
        """Every address the domain resolved to in the window, following
        observed CNAME chains (bounded depth, as real resolvers do)."""
        if _depth > 8:
            return set()
        addresses: Set[int] = set()
        for observation in self.lookup_rrset(fqdn, start, end):
            if observation.rrtype == "A":
                addresses.add(str_to_ip(observation.rdata))
            elif observation.rrtype == "CNAME":
                addresses |= self.addresses_for_domain(
                    observation.rdata, start, end, _depth + 1
                )
        return addresses

    # ------------------------------------------------------------------
    # inverse queries

    def owners_of_address(
        self, address: int, start: int, end: int
    ) -> Set[str]:
        """Owner names directly observed with an A record for ``address``."""
        return {
            observation.rrname
            for observation in self._a_by_address.get(address, [])
            if observation.overlaps(start, end)
        }

    def query_names_for_owner(
        self, owner: str, start: int, end: int, _depth: int = 0
    ) -> Set[str]:
        """Original query names whose CNAME chain reaches ``owner``.

        Includes ``owner`` itself — a name with a direct A record is its
        own query name.
        """
        owner = normalize(owner)
        names = {owner}
        if _depth > 8:
            return names
        for observation in self._cname_by_target.get(owner, []):
            if observation.overlaps(start, end):
                names |= self.query_names_for_owner(
                    observation.rrname, start, end, _depth + 1
                )
        return names

    def query_names_for_address(
        self, address: int, start: int, end: int
    ) -> Set[str]:
        """Every query name observed ultimately resolving to ``address``."""
        names: Set[str] = set()
        for owner in self.owners_of_address(address, start, end):
            names |= self.query_names_for_owner(owner, start, end)
        return names

    def slds_for_address(
        self, address: int, start: int, end: int
    ) -> Set[str]:
        """Second-level domains of the *query* names behind an address.

        This deliberately ignores the SLDs of intermediate CNAME owners
        (e.g. the cloud provider's compute domain): the paper treats an
        EC2 address whose only query name is ``devA.com`` as dedicated to
        ``devA.com`` even though the A-record owner lives under the cloud
        provider's domain.
        """
        slds: Set[str] = set()
        for owner in self.owners_of_address(address, start, end):
            query_names = self.query_names_for_owner(owner, start, end)
            non_terminal = query_names - {owner}
            if non_terminal:
                # The A-record owner is a CNAME target (provider name);
                # ownership is defined by the querying names.
                slds |= {
                    second_level_domain(name) for name in non_terminal
                }
            else:
                slds.add(second_level_domain(owner))
        return slds

    # ------------------------------------------------------------------
    # statistics

    def __len__(self) -> int:
        return len(self._tuples)

    def observations(self) -> Sequence[PdnsObservation]:
        return list(self._tuples.values())
