"""ISP substrate: topology (BNG/border routers, Home-VP), subscriber
population with address churn, CGNAT/adversary hooks for the scenario
matrix, and the ground-truth + wild-scale simulation drivers."""

from repro.isp.topology import BorderRouter, HomeVantagePoint, IspTopology
from repro.isp.subscribers import SubscriberPopulation
from repro.isp.cgnat import AddressPlan, CgnatPool, build_address_plan
from repro.isp.adversary import assign_hidden, assign_mimics
from repro.isp.simulation import (
    GroundTruthCapture,
    GtFlowEvent,
    WildConfig,
    WildIspResult,
    run_ground_truth,
    run_wild_isp,
)

__all__ = [
    "BorderRouter",
    "HomeVantagePoint",
    "IspTopology",
    "SubscriberPopulation",
    "AddressPlan",
    "CgnatPool",
    "build_address_plan",
    "assign_hidden",
    "assign_mimics",
    "GroundTruthCapture",
    "GtFlowEvent",
    "WildConfig",
    "WildIspResult",
    "run_ground_truth",
    "run_wild_isp",
]
