"""ISP substrate: topology (BNG/border routers, Home-VP), subscriber
population with address churn, and the ground-truth + wild-scale
simulation drivers."""

from repro.isp.topology import BorderRouter, HomeVantagePoint, IspTopology
from repro.isp.subscribers import SubscriberPopulation
from repro.isp.simulation import (
    GroundTruthCapture,
    GtFlowEvent,
    WildConfig,
    WildIspResult,
    run_ground_truth,
    run_wild_isp,
)

__all__ = [
    "BorderRouter",
    "HomeVantagePoint",
    "IspTopology",
    "SubscriberPopulation",
    "GroundTruthCapture",
    "GtFlowEvent",
    "WildConfig",
    "WildIspResult",
    "run_ground_truth",
    "run_wild_isp",
]
