"""ISP simulation drivers.

Two entry points:

* :func:`run_ground_truth` — the Section 2/3 setup: every scheduled
  device-hour of the two testbeds generates traffic through the Home-VP;
  the same traffic reappears, sampled, at the ISP border routers
  (ISP-VP).  Produces the event streams behind Figures 5, 6, 8, 9, 10
  and 17.
* :func:`run_wild_isp` — the Section 6 in-the-wild run: a synthetic
  subscriber population with per-product device ownership, vectorised
  per-cohort simulation of sampled-domain evidence, windowed rule
  evaluation per hour and per day, address churn for the cumulative
  views, and the Section 7.1 usage signal.  Produces the series behind
  Figures 11, 12, 13, 14 and 18.  With ``WildConfig.workers != 1`` the
  run is delegated to the sharded multiprocess engine
  (:mod:`repro.engine`); the default serial path stays bit-exact with
  the historical implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hitlist import Hitlist
from repro.core.rules import DetectionRule, RuleSet
from repro.engine.plan import domain_day_availability
from repro.devices.behavior import DeviceBehavior
from repro.devices.testbed import ExperimentSchedule
from repro.isp.subscribers import (
    OwnershipAssignment,
    SubscriberPopulation,
    derive_product_penetration,
)
from repro.isp.topology import IspTopology
from repro.netflow.records import (
    PROTO_TCP,
    TCP_ACK,
    FlowKey,
    FlowRecord,
)
from repro.scenario import Scenario
from repro.timeutil import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    STUDY_START,
    hour_of_day,
)

__all__ = [
    "GtFlowEvent",
    "GroundTruthCapture",
    "run_ground_truth",
    "WildConfig",
    "WildIspResult",
    "run_wild_isp",
    "diurnal_profile_for",
    "aggregate_daily_detections",
    "cumulative_churn_series",
]


# ---------------------------------------------------------------------------
# diurnal usage profiles (hour-of-day multipliers on active-use probability)

_EVENING_PROFILE = np.array(
    [0.15, 0.10, 0.10, 0.10, 0.15, 0.25, 0.50, 0.80, 1.00, 1.00, 1.00,
     1.10, 1.20, 1.20, 1.20, 1.30, 1.50, 1.80, 2.00, 2.00, 1.80, 1.30,
     0.80, 0.40]
)
_SAMSUNG_PROFILE = np.array(
    [0.15, 0.10, 0.10, 0.10, 0.20, 0.50, 1.00, 1.20, 0.90, 0.80, 0.80,
     0.90, 1.00, 1.00, 1.10, 1.20, 1.50, 1.90, 2.10, 2.00, 1.70, 1.20,
     0.70, 0.30]
)
_FLAT_PROFILE = np.ones(24)

_SAMSUNG_CLASSES = frozenset({"Samsung IoT", "Samsung TV"})
_EVENING_CLASSES = frozenset({"Alexa Enabled", "Amazon Product", "Fire TV"})


def diurnal_profile_for(class_name: str) -> np.ndarray:
    """Hour-of-day multiplier on the probability of active use."""
    if class_name in _EVENING_CLASSES:
        return _EVENING_PROFILE
    if class_name in _SAMSUNG_CLASSES:
        return _SAMSUNG_PROFILE
    return _FLAT_PROFILE


# ---------------------------------------------------------------------------
# ground-truth run


@dataclass(frozen=True)
class GtFlowEvent:
    """One (device, domain, address) traffic aggregate within an hour."""

    __slots__ = (
        "device_id", "product", "fqdn", "dst_ip", "dst_port", "protocol",
        "timestamp", "packets", "bytes", "mode",
    )

    device_id: int
    product: str
    fqdn: str
    dst_ip: int
    dst_port: int
    protocol: int
    timestamp: int
    packets: int
    bytes: int
    mode: str  # "active" | "idle"

    def to_flow_record(
        self, src_ip: int, sampling_interval: int
    ) -> FlowRecord:
        """Render as an exported flow record (established TCP)."""
        return FlowRecord(
            key=FlowKey(
                src_ip=src_ip,
                dst_ip=self.dst_ip,
                protocol=self.protocol,
                src_port=40000 + (self.device_id * 7 + self.dst_port) % 20000,
                dst_port=self.dst_port,
            ),
            first_switched=self.timestamp,
            last_switched=self.timestamp + 59,
            packets=self.packets,
            bytes=self.bytes,
            tcp_flags=TCP_ACK if self.protocol == PROTO_TCP else 0,
            sampling_interval=sampling_interval,
        )


@dataclass
class GroundTruthCapture:
    """Result of a ground-truth run: both vantage points."""

    home_events: List[GtFlowEvent]
    isp_events: List[GtFlowEvent]
    sampling_interval: int
    topology: IspTopology

    def isp_flow_records(self) -> Iterable[FlowRecord]:
        """The sampled flows as the detector consumes them."""
        src = self.topology.home_vp.vpn_endpoint
        for event in self.isp_events:
            yield event.to_flow_record(src, self.sampling_interval)

    def events_in_mode(
        self, events: Sequence[GtFlowEvent], mode: str
    ) -> List[GtFlowEvent]:
        return [event for event in events if event.mode == mode]


def run_ground_truth(
    scenario: Scenario,
    schedule: Optional[ExperimentSchedule] = None,
    sampling_interval: int = 100,
    seed: int = 20191115,
    topology: Optional[IspTopology] = None,
) -> GroundTruthCapture:
    """Simulate both testbeds through the Home-VP and the sampled
    ISP-VP."""
    schedule = schedule or ExperimentSchedule(
        scenario.catalog, scenario.library
    )
    topology = topology or scenario.isp_topology(sampling_interval)
    resolver = scenario.make_resolver(feed_dnsdb=True)
    rng = np.random.default_rng(seed)
    home_events: List[GtFlowEvent] = []
    isp_events: List[GtFlowEvent] = []
    library = scenario.library

    for entry in schedule.iter_schedule():
        behavior = schedule.behaviors[entry.instance.device_id]
        traffic = behavior.hour_traffic(
            rng,
            active=entry.mode == "active",
            power_interactions=entry.power_interactions,
            functional_interactions=entry.functional_interactions,
            startup=entry.startup,
        )
        for fqdn, packet_count in traffic.packets.items():
            if packet_count <= 0:
                # the per-address byte split divides by packet_count
                continue
            spec = library.domain(fqdn)
            moment = entry.hour_start + int(rng.integers(0, 3000))
            resolution = resolver.resolve(fqdn, moment)
            addresses = resolution.addresses
            if not addresses:
                continue
            byte_count = traffic.bytes[fqdn]
            shares = _split_packets(packet_count, len(addresses), rng)
            for address, share in zip(addresses, shares):
                if share == 0:
                    continue
                event_bytes = int(
                    round(byte_count * (share / packet_count))
                )
                event = GtFlowEvent(
                    device_id=entry.instance.device_id,
                    product=entry.instance.product_name,
                    fqdn=fqdn,
                    dst_ip=address,
                    dst_port=spec.primary_port,
                    protocol=spec.protocol,
                    timestamp=moment,
                    packets=share,
                    bytes=event_bytes,
                    mode=entry.mode,
                )
                home_events.append(event)
                sampled = int(rng.binomial(share, 1.0 / sampling_interval))
                if sampled > 0:
                    isp_events.append(
                        GtFlowEvent(
                            device_id=event.device_id,
                            product=event.product,
                            fqdn=event.fqdn,
                            dst_ip=event.dst_ip,
                            dst_port=event.dst_port,
                            protocol=event.protocol,
                            timestamp=event.timestamp,
                            packets=sampled,
                            bytes=max(
                                1,
                                int(event_bytes * sampled / share),
                            ),
                            mode=event.mode,
                        )
                    )
    return GroundTruthCapture(
        home_events=home_events,
        isp_events=isp_events,
        sampling_interval=sampling_interval,
        topology=topology,
    )


def _split_packets(
    total: int, parts: int, rng: np.random.Generator
) -> List[int]:
    """Split a packet count across the resolved addresses (uneven,
    favouring the first answer the stub resolver would use)."""
    if parts == 1:
        return [total]
    weights = np.array([2.0] + [1.0] * (parts - 1))
    return list(rng.multinomial(total, weights / weights.sum()))


# ---------------------------------------------------------------------------
# wild-scale ISP run


@dataclass
class WildConfig:
    """Parameters of the in-the-wild ISP simulation.

    ``workers`` selects the execution path: ``1`` (the default) runs
    the historical serial implementation, which stays bit-exact across
    releases; any other value routes through the sharded multiprocess
    engine (:mod:`repro.engine`), where ``0`` means "one worker per
    CPU" and ``shard_size`` caps the owners simulated per shard task.

    ``max_retries``/``shard_timeout``/``quarantine_dir`` parameterise
    the engine's shard supervision
    (:class:`~repro.resilience.supervisor.ShardSupervisor`): retry
    budget per failed shard, per-shard wall-clock budget in seconds
    (``None`` disables), and where dead-letter records are persisted.

    ``memory_budget``/``deadline`` attach runtime guards
    (:mod:`repro.runtime`) to the sharded engine: an RSS budget in
    bytes the run sheds under rather than exceeds, and a wall-clock
    budget in seconds after which the run stops admitting shards and
    returns partial results marked ``degraded`` in the metrics
    document.  Both only take effect on the engine path; the serial
    path ignores them.
    """

    subscribers: int = 100_000
    sampling_interval: int = 100
    days: int = 14
    threshold: float = 0.4
    seed: int = 42
    churn_probability: float = 0.03
    usage_packet_threshold: int = 10
    workers: int = 1
    shard_size: int = 8192
    max_retries: int = 2
    shard_timeout: Optional[float] = None
    quarantine_dir: Optional[str] = None
    #: RSS budget in bytes (``None`` disables the memory governor)
    memory_budget: Optional[int] = None
    #: wall-clock run budget in seconds (``None`` disables)
    deadline: Optional[float] = None

    @property
    def hours(self) -> int:
        return self.days * 24


@dataclass
class WildIspResult:
    """All series produced by the wild ISP run."""

    config: WildConfig
    #: class -> detected subscriber lines per hour (length hours)
    hourly_counts: Dict[str, np.ndarray]
    #: class -> detected subscriber lines per day (length days)
    daily_counts: Dict[str, np.ndarray]
    #: unique lines with *any* of the "other 32" classes, per hour/day
    other_hourly: np.ndarray
    other_daily: np.ndarray
    #: unique lines with any IoT class at all, per day
    any_daily: np.ndarray
    #: class -> cumulative unique line identifiers per day (Figure 13)
    cumulative_lines: Dict[str, np.ndarray]
    #: class -> cumulative unique /24s per day (Figure 13, lower panel)
    cumulative_slash24: Dict[str, np.ndarray]
    #: subscribers with *actively used* Alexa devices per hour (Fig. 18)
    alexa_active_hourly: np.ndarray
    #: owners per class (ground truth of the simulation)
    owner_counts: Dict[str, int]
    #: engine metrics document (``repro.engine.metrics/1`` schema) when
    #: the run went through the sharded engine; ``None`` on the serial
    #: path
    metrics: Optional[Dict[str, object]] = None

    def penetration(self, class_name: str, day: int = -1) -> float:
        """Detected daily penetration of a class."""
        return float(
            self.daily_counts[class_name][day] / self.config.subscribers
        )


@dataclass
class _CohortOutput:
    owners: np.ndarray
    hourly: Dict[str, np.ndarray]  # class -> (n, hours) bool
    daily: Dict[str, np.ndarray]  # class -> (n, days) bool
    alexa_active: Optional[np.ndarray] = None  # (n, hours) bool


def _relevant_rules(
    product_classes: Sequence[str], rules: RuleSet
) -> List[DetectionRule]:
    names: List[str] = []
    for class_name in product_classes:
        if class_name not in rules:
            continue
        for candidate in [class_name] + rules.ancestors(class_name):
            if candidate not in names:
                names.append(candidate)
    return [rules.rule(name) for name in names]


def _simulate_cohort(
    product_name: str,
    owners: np.ndarray,
    scenario: Scenario,
    rules: RuleSet,
    hitlist: Hitlist,
    config: WildConfig,
    rng: np.random.Generator,
) -> Optional[_CohortOutput]:
    """Exact per-owner simulation of sampled evidence for one product
    cohort, evaluated hour-by-hour and day-by-day.

    Evidence is gated by the hitlist's per-day validity: a rule domain
    with no (address, port) endpoint on the daily hitlist cannot be
    matched by the detector that day, so its evidence probability is
    zeroed for that day (days beyond the hitlist window keep all
    domains available).  In the default world every surviving rule
    domain is listed every day, so the gate leaves the historical
    output bit-exact while making address-churn gaps observable in
    counterfactual scenarios.
    """
    catalog = scenario.catalog
    library = scenario.library
    product = catalog.product(product_name)
    relevant = _relevant_rules(product.detection_classes, rules)
    if not relevant or owners.size == 0:
        return None
    profile = library.profile(product_name)
    usage_by_fqdn = {usage.fqdn: usage for usage in profile.usages}

    universe: List[str] = []
    for rule in relevant:
        for fqdn in rule.domains:
            if fqdn not in universe:
                universe.append(fqdn)
    index_of = {fqdn: i for i, fqdn in enumerate(universe)}
    lam_idle = np.array(
        [
            usage_by_fqdn[fqdn].idle_pph if fqdn in usage_by_fqdn else 0.0
            for fqdn in universe
        ]
    )
    lam_active = np.array(
        [
            usage_by_fqdn[fqdn].active_pph if fqdn in usage_by_fqdn else 0.0
            for fqdn in universe
        ]
    )
    scale = 1.0 / config.sampling_interval
    p_idle = 1.0 - np.exp(-lam_idle * scale)
    p_active = 1.0 - np.exp(-lam_active * scale)
    availability = domain_day_availability(
        hitlist, universe, config.days
    )

    # Usage behaviour comes from the most specific class of the product.
    leaf_class = product.detection_classes[-1]
    behavior = library.wild_behaviors[leaf_class]
    profile_curve = diurnal_profile_for(leaf_class)
    base_hour = hour_of_day(STUDY_START)
    q_by_hour = np.array(
        [
            min(
                1.0,
                behavior.active_use_prob
                * profile_curve[(base_hour + h) % 24],
            )
            for h in range(24)
        ]
    )

    n = owners.size
    hours = config.hours
    hourly: Dict[str, np.ndarray] = {
        rule.class_name: np.zeros((n, hours), dtype=bool)
        for rule in relevant
    }
    daily: Dict[str, np.ndarray] = {
        rule.class_name: np.zeros((n, config.days), dtype=bool)
        for rule in relevant
    }
    is_alexa_member = "Alexa Enabled" in product.detection_classes
    alexa_active = (
        np.zeros((n, hours), dtype=bool) if is_alexa_member else None
    )
    if is_alexa_member and "Alexa Enabled" in rules:
        alexa_domains = [
            index_of[fqdn]
            for fqdn in rules.rule("Alexa Enabled").domains
            if fqdn in index_of
        ]
        lam_alexa_idle = lam_idle[alexa_domains].sum() * scale
        lam_alexa_active = lam_active[alexa_domains].sum() * scale
    rule_indices = {
        rule.class_name: np.array(
            [index_of[fqdn] for fqdn in rule.domains]
        )
        for rule in relevant
    }
    crit_indices = {
        rule.class_name: np.array(
            [index_of[fqdn] for fqdn in rule.critical], dtype=np.int64
        )
        for rule in relevant
    }

    for day in range(config.days):
        available = availability[day]
        if available.all():
            p_active_day, p_idle_day = p_active, p_idle
        else:
            p_active_day = np.where(available, p_active, 0.0)
            p_idle_day = np.where(available, p_idle, 0.0)
        active = rng.random((n, 24)) < q_by_hour[None, :]
        probabilities = np.where(
            active[:, :, None], p_active_day[None, None, :],
            p_idle_day[None, None, :],
        )
        seen = rng.random((n, 24, len(universe))) < probabilities
        day_seen = seen.any(axis=1)
        satisfied_hourly: Dict[str, np.ndarray] = {}
        satisfied_daily: Dict[str, np.ndarray] = {}
        for rule in relevant:
            indices = rule_indices[rule.class_name]
            needed = rule.required_domains(config.threshold)
            counts_h = seen[:, :, indices].sum(axis=2)
            counts_d = day_seen[:, indices].sum(axis=1)
            ok_h = counts_h >= needed
            ok_d = counts_d >= needed
            crit = crit_indices[rule.class_name]
            if crit.size:
                ok_h &= seen[:, :, crit].all(axis=2)
                ok_d &= day_seen[:, crit].all(axis=1)
            satisfied_hourly[rule.class_name] = ok_h
            satisfied_daily[rule.class_name] = ok_d
        for rule in relevant:
            det_h = satisfied_hourly[rule.class_name].copy()
            det_d = satisfied_daily[rule.class_name].copy()
            for ancestor in rules.ancestors(rule.class_name):
                if ancestor in satisfied_hourly:
                    det_h &= satisfied_hourly[ancestor]
                    det_d &= satisfied_daily[ancestor]
            hourly[rule.class_name][:, day * 24 : (day + 1) * 24] = det_h
            daily[rule.class_name][:, day] = det_d
        if alexa_active is not None and "Alexa Enabled" in rules:
            lam_matrix = np.where(
                active, lam_alexa_active, lam_alexa_idle
            )
            counts = rng.poisson(lam_matrix)
            alexa_active[:, day * 24 : (day + 1) * 24] = (
                counts >= config.usage_packet_threshold
            )
    return _CohortOutput(
        owners=owners, hourly=hourly, daily=daily,
        alexa_active=alexa_active,
    )


_HIERARCHY_CLASSES = (
    "Alexa Enabled",
    "Amazon Product",
    "Fire TV",
    "Samsung IoT",
    "Samsung TV",
)


def aggregate_daily_detections(
    daily_detected: Dict[str, List[List[np.ndarray]]],
    class_names: Sequence[str],
    days: int,
) -> Tuple[Dict[str, np.ndarray], np.ndarray, np.ndarray]:
    """Fold per-day detected-owner arrays into the daily series.

    ``daily_detected`` maps class name -> day -> list of detected
    owner-index arrays (one per cohort or shard; owners may repeat
    across lists and are deduplicated here).  Returns
    ``(daily_counts, other_daily, any_daily)`` — the unique-line counts
    per class, for the non-hierarchy ("other 32") classes combined, and
    for any IoT class at all.  Shared by the serial path and the
    sharded engine so both aggregate identically.
    """
    daily_counts: Dict[str, np.ndarray] = {}
    for class_name in class_names:
        series = np.zeros(days, dtype=np.int64)
        for day in range(days):
            arrays = daily_detected[class_name][day]
            if arrays:
                series[day] = np.unique(np.concatenate(arrays)).size
        daily_counts[class_name] = series

    other_daily = np.zeros(days, dtype=np.int64)
    any_daily = np.zeros(days, dtype=np.int64)
    for day in range(days):
        other_arrays = []
        any_arrays = []
        for class_name in class_names:
            arrays = daily_detected[class_name][day]
            if not arrays:
                continue
            any_arrays.extend(arrays)
            if class_name not in _HIERARCHY_CLASSES:
                other_arrays.extend(arrays)
        if other_arrays:
            other_daily[day] = np.unique(
                np.concatenate(other_arrays)
            ).size
        if any_arrays:
            any_daily[day] = np.unique(np.concatenate(any_arrays)).size
    return daily_counts, other_daily, any_daily


def cumulative_churn_series(
    daily_detected: Dict[str, List[List[np.ndarray]]],
    daily_counts: Dict[str, np.ndarray],
    population: SubscriberPopulation,
    days: int,
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Cumulative unique lines and /24s per hierarchy class (Fig. 13).

    Address churn makes cumulative per-line counts inflate over weeks
    while /24 aggregation stabilises; both views are derived from the
    per-day detected owners and the population's per-day addresses.
    """
    cumulative_lines: Dict[str, np.ndarray] = {}
    cumulative_slash24: Dict[str, np.ndarray] = {}
    for class_name in _HIERARCHY_CLASSES:
        if class_name not in daily_counts:
            continue
        seen_lines = np.empty(0, dtype=np.int64)
        seen_slash24 = np.empty(0, dtype=np.int64)
        lines_series = np.zeros(days, dtype=np.int64)
        slash24_series = np.zeros(days, dtype=np.int64)
        for day in range(days):
            arrays = daily_detected[class_name][day]
            if arrays:
                owners = np.unique(np.concatenate(arrays))
                addresses = population.addresses_for_day(day)[owners]
                seen_lines = np.union1d(seen_lines, addresses)
                seen_slash24 = np.union1d(
                    seen_slash24, population.slash24_of(addresses)
                )
            lines_series[day] = seen_lines.size
            slash24_series[day] = seen_slash24.size
        cumulative_lines[class_name] = lines_series
        cumulative_slash24[class_name] = slash24_series
    return cumulative_lines, cumulative_slash24


def run_wild_isp(
    scenario: Scenario,
    rules: RuleSet,
    hitlist: Hitlist,
    config: Optional[WildConfig] = None,
    population: Optional[SubscriberPopulation] = None,
    ownership: Optional[OwnershipAssignment] = None,
    topology: Optional[IspTopology] = None,
) -> WildIspResult:
    """Run the Section 6 in-the-wild detection study on the ISP.

    ``config.workers == 1`` (the default) runs the serial per-cohort
    path below, bit-exact with the historical implementation for a
    given seed.  Any other worker count routes through the sharded
    multiprocess engine (:func:`repro.engine.run_wild_isp_sharded`),
    which produces statistically equivalent series and attaches its
    metrics document to ``result.metrics``.
    """
    config = config or WildConfig()
    if config.workers != 1:
        from repro.engine.runner import run_wild_isp_sharded

        return run_wild_isp_sharded(
            scenario,
            rules,
            hitlist,
            config=config,
            population=population,
            ownership=ownership,
            topology=topology,
        )
    topology = topology or scenario.isp_topology(
        config.sampling_interval
    )
    population = population or SubscriberPopulation(
        config.subscribers,
        topology.subscriber_space,
        churn_probability=config.churn_probability,
        seed=config.seed,
    )
    if ownership is None:
        penetration = derive_product_penetration(scenario.catalog)
        ownership = population.assign_ownership(
            scenario.catalog, penetration
        )
    rng = np.random.default_rng(config.seed)

    hours = config.hours
    class_names = list(rules.class_names())
    hourly_counts = {
        name: np.zeros(hours, dtype=np.int64) for name in class_names
    }
    # Per-class per-day detected owner lists (for dedup and cumulative).
    daily_detected: Dict[str, List[List[np.ndarray]]] = {
        name: [[] for _ in range(config.days)] for name in class_names
    }
    other_hourly_sets: Dict[int, np.ndarray] = {}
    alexa_active_hourly = np.zeros(hours, dtype=np.int64)

    outputs: List[Tuple[str, _CohortOutput]] = []
    for product_name in sorted(ownership.product_owners):
        owners = ownership.product_owners[product_name]
        output = _simulate_cohort(
            product_name, owners, scenario, rules, hitlist, config, rng
        )
        if output is None:
            continue
        outputs.append((product_name, output))
        for class_name, matrix in output.hourly.items():
            hourly_counts[class_name] += matrix.sum(axis=0)
        for class_name, matrix in output.daily.items():
            for day in range(config.days):
                detected = output.owners[matrix[:, day]]
                daily_detected[class_name][day].append(detected)
        if output.alexa_active is not None:
            alexa_active_hourly += output.alexa_active.sum(axis=0)
        # "Other 32" dedup across classes: OR the per-owner hourly
        # detection of every non-hierarchy class.
        other_matrix = None
        for class_name, matrix in output.hourly.items():
            if class_name in _HIERARCHY_CLASSES:
                continue
            other_matrix = (
                matrix if other_matrix is None else other_matrix | matrix
            )
        if other_matrix is not None:
            for row, owner in enumerate(output.owners):
                existing = other_hourly_sets.get(owner)
                if existing is None:
                    other_hourly_sets[owner] = other_matrix[row].copy()
                else:
                    existing |= other_matrix[row]

    # ---- aggregate counts ---------------------------------------------------
    daily_counts, other_daily, any_daily = aggregate_daily_detections(
        daily_detected, class_names, config.days
    )

    other_hourly = np.zeros(hours, dtype=np.int64)
    if other_hourly_sets:
        stacked = np.stack(list(other_hourly_sets.values()))
        other_hourly = stacked.sum(axis=0).astype(np.int64)

    # ---- cumulative unique lines and /24s (Figure 13) ----------------------
    cumulative_lines, cumulative_slash24 = cumulative_churn_series(
        daily_detected, daily_counts, population, config.days
    )

    owner_counts = {
        class_name: int(
            ownership.owners_of_class(scenario.catalog, class_name).size
        )
        for class_name in class_names
    }
    return WildIspResult(
        config=config,
        hourly_counts=hourly_counts,
        daily_counts=daily_counts,
        other_hourly=other_hourly,
        other_daily=other_daily,
        any_daily=any_daily,
        cumulative_lines=cumulative_lines,
        cumulative_slash24=cumulative_slash24,
        alexa_active_hourly=alexa_active_hourly,
        owner_counts=owner_counts,
    )


# ---------------------------------------------------------------------------
# packet-level cross-validation


@dataclass
class PacketLevelValidation:
    """Comparison of the event-level shortcut against true per-packet
    sampling for one device.

    The wild/ground-truth simulations thin hourly packet aggregates
    binomially instead of materialising every packet; this harness runs
    both paths over identical traffic and reports the sampled totals so
    tests can assert they agree statistically.
    """

    product: str
    hours: int
    wire_packets: int
    event_sampled: int
    packet_sampled: int
    event_domains: frozenset
    packet_domains: frozenset

    @property
    def relative_difference(self) -> float:
        reference = max(1, self.wire_packets)
        return abs(self.event_sampled - self.packet_sampled) / (
            reference / 100.0
        )


def validate_packet_level(
    scenario: Scenario,
    product: str = "Echo Dot",
    hours: int = 24,
    sampling_interval: int = 100,
    seed: int = 99,
) -> PacketLevelValidation:
    """Run the same traffic through both sampling models.

    Draws one traffic realisation (per-domain hourly packet counts),
    then samples it (a) with the vectorised binomial shortcut and
    (b) packet by packet through a :class:`~repro.netflow.sampler.PacketSampler`
    feeding a :class:`~repro.netflow.collector.FlowCollector`.
    """
    from repro.netflow.collector import FlowCollector
    from repro.netflow.records import PacketRecord
    from repro.netflow.sampler import PacketSampler

    behavior = DeviceBehavior(scenario.library.profile(product))
    rng = np.random.default_rng(seed)
    resolver = scenario.make_resolver(feed_dnsdb=False)

    wire_packets = 0
    event_sampled = 0
    event_domains = set()
    packet_domains = set()
    sampler = PacketSampler(sampling_interval, mode="random", seed=seed)
    collector = FlowCollector(sampling_interval=sampling_interval)

    for hour in range(hours):
        when = STUDY_START + hour * SECONDS_PER_HOUR
        traffic = behavior.hour_traffic(rng, active=False)
        for fqdn, packet_count in traffic.packets.items():
            wire_packets += packet_count
            spec = scenario.library.domain(fqdn)
            resolution = resolver.resolve(fqdn, when)
            if not resolution.addresses:
                continue
            dst_ip = resolution.addresses[0]
            # (a) event-level binomial thinning
            thinned = int(
                rng.binomial(packet_count, 1.0 / sampling_interval)
            )
            event_sampled += thinned
            if thinned:
                event_domains.add(fqdn)
            # (b) true per-packet sampling into a flow cache
            for index in range(packet_count):
                packet = PacketRecord(
                    timestamp=when + (index * SECONDS_PER_HOUR)
                    // max(1, packet_count),
                    src_ip=0x0A000001,
                    dst_ip=dst_ip,
                    protocol=spec.protocol,
                    src_port=49152,
                    dst_port=spec.primary_port,
                )
                if sampler.sample(packet):
                    collector.observe(packet)
                    packet_domains.add(fqdn)
    collector.flush()
    packet_sampled = sum(flow.packets for flow in collector.drain())
    return PacketLevelValidation(
        product=product,
        hours=hours,
        wire_packets=wire_packets,
        event_sampled=event_sampled,
        packet_sampled=packet_sampled,
        event_domains=frozenset(event_domains),
        packet_domains=frozenset(packet_domains),
    )
