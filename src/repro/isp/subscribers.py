"""Subscriber population: line identifiers, regional address pools,
daily churn, and per-class device ownership.

Address model: subscribers are grouped into *regions* of 256 lines;
each region owns two /24 blocks (512 addresses) of the ISP's subscriber
space.  A line keeps its address until a churn event (router reboot,
re-assignment), at which point it draws a fresh address from its
region's pool.  This is what makes cumulative per-line counts inflate
over weeks while /24-aggregated counts stabilise (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.addressing import Prefix
from repro.devices.catalog import DeviceCatalog

__all__ = ["OwnershipAssignment", "SubscriberPopulation"]

_REGION_SIZE = 256
_ADDRESSES_PER_REGION = 512  # two /24s


@dataclass
class OwnershipAssignment:
    """Device ownership: which subscribers own which product."""

    #: product name -> sorted array of owner subscriber indices
    product_owners: Dict[str, np.ndarray]

    def owners_of_class(
        self, catalog: DeviceCatalog, class_name: str
    ) -> np.ndarray:
        spec = catalog.detection_class(class_name)
        arrays = [
            self.product_owners[product]
            for product in spec.member_products
            if product in self.product_owners
        ]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(arrays))

    def all_owners(self) -> np.ndarray:
        if not self.product_owners:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(list(self.product_owners.values())))


class SubscriberPopulation:
    """The ISP's broadband subscriber lines."""

    def __init__(
        self,
        count: int,
        prefix: Prefix,
        churn_probability: float = 0.03,
        seed: int = 13,
    ) -> None:
        if count < 1:
            raise ValueError("need at least one subscriber")
        self.count = count
        self.prefix = prefix
        self.churn_probability = churn_probability
        self.seed = seed
        self.region_count = (count + _REGION_SIZE - 1) // _REGION_SIZE
        needed = self.region_count * _ADDRESSES_PER_REGION
        if needed > prefix.size:
            raise ValueError(
                f"prefix {prefix} too small for {count} subscribers "
                f"({needed} addresses needed)"
            )
        self._day_slots: List[np.ndarray] = []
        self._rng = np.random.default_rng(seed)
        self._regions = (
            np.arange(count, dtype=np.int64) // _REGION_SIZE
        )

    # ------------------------------------------------------------------
    # address assignment with churn

    def _slots_for_day(self, day: int) -> np.ndarray:
        """Per-subscriber slot (0..511) within its region for study day
        ``day``; slots are materialised lazily and deterministically."""
        while len(self._day_slots) <= day:
            if not self._day_slots:
                slots = np.arange(self.count, dtype=np.int64) % _REGION_SIZE
            else:
                slots = self._day_slots[-1].copy()
                churned = (
                    self._rng.random(self.count) < self.churn_probability
                )
                slots[churned] = self._rng.integers(
                    0, _ADDRESSES_PER_REGION, size=int(churned.sum())
                )
            self._day_slots.append(slots)
        return self._day_slots[day]

    def addresses_for_day(self, day: int) -> np.ndarray:
        """External IPv4 address of every subscriber on study day
        ``day``.  Collisions within a region are possible after churn
        (carrier-grade sharing) and harmless for the analyses."""
        slots = self._slots_for_day(day)
        return (
            self.prefix.first
            + self._regions * _ADDRESSES_PER_REGION
            + slots
        )

    def address_of(self, subscriber: int, day: int) -> int:
        """External address of one subscriber on study day ``day``."""
        return int(self.addresses_for_day(day)[subscriber])

    @staticmethod
    def slash24_of(addresses: np.ndarray) -> np.ndarray:
        """/24 network identifiers of an address array."""
        return addresses >> 8

    # ------------------------------------------------------------------
    # device ownership

    def assign_ownership(
        self,
        catalog: DeviceCatalog,
        product_penetration: Dict[str, float],
        seed: Optional[int] = None,
    ) -> OwnershipAssignment:
        """Assign owners per product.

        Draws are independent across products (a household can own
        several device types) but sampled without replacement within a
        product.
        """
        rng = np.random.default_rng(
            self.seed * 7 + 1 if seed is None else seed
        )
        owners: Dict[str, np.ndarray] = {}
        for product, penetration in sorted(product_penetration.items()):
            if not 0.0 <= penetration <= 1.0:
                raise ValueError(
                    f"penetration out of range for {product!r}: "
                    f"{penetration}"
                )
            size = int(round(penetration * self.count))
            if size == 0:
                owners[product] = np.empty(0, dtype=np.int64)
                continue
            owners[product] = np.sort(
                rng.choice(self.count, size=size, replace=False)
            )
        return OwnershipAssignment(owners)


def derive_product_penetration(
    catalog: DeviceCatalog,
) -> Dict[str, float]:
    """Split class-level penetrations (from the catalog) into per-product
    penetrations, respecting the Alexa/Amazon/Fire-TV and Samsung
    hierarchies (child cohorts are carved out of the parent's)."""
    penetration: Dict[str, float] = {}
    spec_by_name = {
        spec.name: spec for spec in catalog.detection_classes
    }

    alexa = spec_by_name["Alexa Enabled"].penetration
    amazon = spec_by_name["Amazon Product"].penetration
    firetv = spec_by_name["Fire TV"].penetration
    penetration["Fire TV"] = firetv
    echo_share = amazon - firetv
    penetration["Echo Dot"] = echo_share * 0.55
    penetration["Echo Spot"] = echo_share * 0.20
    penetration["Echo Plus"] = echo_share * 0.25
    penetration["Allure with Alexa"] = alexa - amazon

    samsung = spec_by_name["Samsung IoT"].penetration
    samsung_tv = spec_by_name["Samsung TV"].penetration
    penetration["Samsung TV"] = samsung_tv
    penetration["Samsung Dryer"] = (samsung - samsung_tv) * 0.5
    penetration["Samsung Fridge"] = (samsung - samsung_tv) * 0.5

    handled = {
        "Alexa Enabled",
        "Amazon Product",
        "Fire TV",
        "Samsung IoT",
        "Samsung TV",
    }
    for spec in catalog.detection_classes:
        if spec.name in handled:
            continue
        members = spec.member_products
        share = spec.penetration / len(members)
        for product in members:
            penetration[product] = penetration.get(product, 0.0) + share
    return penetration
