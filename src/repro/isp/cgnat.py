"""Carrier-grade NAT pools and the per-day address plan.

The paper assumes one broadband *line* per external address; CGNAT
breaks that by parking ``pool_size`` lines behind a single translated
public address.  :class:`CgnatPool` models the translation (static
line->pool mapping, the common carrier deployment), and
:class:`AddressPlan` combines it with the churn model of
:class:`~repro.isp.subscribers.SubscriberPopulation` into one per-day
view that the scenario-matrix sweep can both render flows from and
*invert* for scoring: a detection names an address, scoring needs the
set of lines that could have produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cloud.addressing import Prefix
from repro.isp.subscribers import SubscriberPopulation

__all__ = ["CgnatPool", "AddressPlan", "build_address_plan"]


@dataclass(frozen=True)
class CgnatPool:
    """``pool_size`` subscriber lines share one translated address.

    The line->pool mapping is static (line index // pool size), as in
    deterministic carrier-grade NAT: churn on the private side is
    invisible once translation collapses the pool onto one public
    address.
    """

    pool_size: int
    base_address: int

    def __post_init__(self) -> None:
        if self.pool_size < 2:
            raise ValueError("CGNAT pool size must be >= 2")

    def public_addresses(self, lines: np.ndarray) -> np.ndarray:
        """Translated public address per line index."""
        return self.base_address + lines // self.pool_size

    def lines_behind(self, address: int, count: int) -> np.ndarray:
        """All line indices (< ``count``) sharing ``address``."""
        slot = int(address) - self.base_address
        if slot < 0:
            return np.empty(0, dtype=np.int64)
        first = slot * self.pool_size
        if first >= count:
            return np.empty(0, dtype=np.int64)
        return np.arange(
            first, min(first + self.pool_size, count), dtype=np.int64
        )


class AddressPlan:
    """Per-day line->external-address mapping, invertible for scoring.

    Without a pool this is exactly the population's churn model; with a
    pool every line's external identity is its pool address, stable
    across churn (the translation hides private-side reassignment).
    """

    def __init__(
        self,
        population: SubscriberPopulation,
        pool: Optional[CgnatPool] = None,
    ) -> None:
        self.population = population
        self.pool = pool

    @property
    def count(self) -> int:
        return self.population.count

    def addresses_for_day(self, day: int) -> np.ndarray:
        """External address of every line on study day ``day``."""
        if self.pool is not None:
            lines = np.arange(self.count, dtype=np.int64)
            return self.pool.public_addresses(lines)
        return self.population.addresses_for_day(day)

    def address_of(self, line: int, day: int) -> int:
        return int(self.addresses_for_day(day)[line])

    def lines_for_address(self, address: int, day: int) -> np.ndarray:
        """Every line that ``address`` could name on ``day``.

        This is what a per-address detection *means* at line
        granularity: one line normally, a whole pool under CGNAT, and
        possibly several lines after churn collisions within a region.
        """
        if self.pool is not None:
            return self.pool.lines_behind(address, self.count)
        addresses = self.population.addresses_for_day(day)
        return np.flatnonzero(addresses == int(address)).astype(np.int64)


def build_address_plan(
    prefix: Prefix,
    count: int,
    churn_probability: float = 0.0,
    cgnat_pool_size: int = 1,
    seed: int = 13,
) -> AddressPlan:
    """Wire a population (+ optional CGNAT pool) inside ``prefix``.

    The pool's public range is carved from the middle of ``prefix`` so
    it never collides with the region-allocated population addresses at
    the bottom of the space or the Home-VP carved from the top.
    """
    population = SubscriberPopulation(
        count, prefix, churn_probability=churn_probability, seed=seed
    )
    if cgnat_pool_size <= 1:
        return AddressPlan(population)
    pool_count = (count + cgnat_pool_size - 1) // cgnat_pool_size
    base = prefix.first + prefix.size // 2
    if base + pool_count > prefix.last:
        raise ValueError(
            f"prefix {prefix} too small for {pool_count} CGNAT addresses"
        )
    pool = CgnatPool(pool_size=cgnat_pool_size, base_address=base)
    return AddressPlan(population, pool)
