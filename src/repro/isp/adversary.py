"""Adversarial behaviours layered on the subscriber population.

Two behaviours from the threat-model literature, both expressed as
deterministic *assignments* over line indices so the sweep runner can
turn them into flow-generation layers and, independently, into ground
truth:

* **mimicry** — non-IoT hosts replaying a device class's domain and
  endpoint pattern (false-positive pressure on the detector);
* **hiding** — device owners whose IoT traffic never reaches the
  vantage point, e.g. tunnelled through a VPN (false-negative
  pressure).

Neither needs traffic knowledge: they are pure functions of the line
set, the available device patterns, and a seeded RNG.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence

import numpy as np

__all__ = ["assign_mimics", "assign_hidden"]


def assign_mimics(
    rng: np.random.Generator,
    candidate_lines: Sequence[int],
    patterns: Sequence[str],
    fraction: float,
) -> Dict[int, str]:
    """Pick ``fraction`` of ``candidate_lines`` as mimics.

    Each chosen line replays one device class's endpoint pattern;
    patterns rotate round-robin over the (sorted) chosen lines so a
    grid cell exercises several classes.  Returns ``{line: class}``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"mimicry fraction out of range: {fraction}")
    candidates = np.sort(np.asarray(candidate_lines, dtype=np.int64))
    size = int(round(fraction * len(candidates)))
    if size == 0 or not patterns:
        return {}
    chosen = np.sort(rng.choice(candidates, size=size, replace=False))
    ordered = sorted(patterns)
    return {
        int(line): ordered[i % len(ordered)]
        for i, line in enumerate(chosen)
    }


def assign_hidden(
    rng: np.random.Generator,
    owner_lines: Sequence[int],
    fraction: float,
) -> FrozenSet[int]:
    """Pick ``fraction`` of owners whose device traffic is hidden.

    Hidden owners stay in the ground truth (they *do* own the device);
    their flows are simply never emitted, so every one of their truth
    entries the detector misses is a false negative by construction.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"hiding fraction out of range: {fraction}")
    owners = np.sort(np.asarray(owner_lines, dtype=np.int64))
    size = int(round(fraction * len(owners)))
    if size == 0:
        return frozenset()
    chosen = rng.choice(owners, size=size, replace=False)
    return frozenset(int(line) for line in chosen)
