"""ISP topology: border routers with NetFlow export, BNG aggregation,
and the Home-VP subscriber line used for ground-truth injection.

The paper's ISP (Figure 3) monitors flows with NetFlow at all border
routers at one consistent sampling rate.  Subscriber traffic enters
through BNG routers and leaves through a border router chosen by the
destination; the Home-VP is a /28 out of a residential /22, reserved
for the testbeds' VPN endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.addressing import (
    AddressAllocator,
    ASRegistry,
    AutonomousSystem,
    Prefix,
)
from repro.netflow.collector import FlowCollector
from repro.netflow.sampler import PacketSampler

__all__ = ["BorderRouter", "HomeVantagePoint", "IspTopology"]


@dataclass
class BorderRouter:
    """One border router: consistent-rate sampler plus a flow cache."""

    name: str
    sampling_interval: int
    seed: int
    sampler: PacketSampler = field(init=False)
    collector: FlowCollector = field(init=False)

    def __post_init__(self) -> None:
        self.sampler = PacketSampler(
            self.sampling_interval, mode="random", seed=self.seed
        )
        self.collector = FlowCollector(
            sampling_interval=self.sampling_interval
        )

    def observe(self, packet) -> bool:
        """Sample one transit packet; returns True if it was kept."""
        if not self.sampler.sample(packet):
            return False
        self.collector.observe(packet)
        return True


@dataclass(frozen=True)
class HomeVantagePoint:
    """The instrumented subscriber line (a /28 of a residential /22)."""

    prefix: Prefix
    vpn_endpoint: int  # address the testbed tunnels terminate on

    @classmethod
    def carve(cls, residential: Prefix) -> "HomeVantagePoint":
        """Reserve the first /28 of a residential /22 (paper setup)."""
        if residential.length > 22:
            raise ValueError("Home-VP expects at least a /22 to carve from")
        home = Prefix(residential.network, 28)
        return cls(prefix=home, vpn_endpoint=home.first + 1)


class IspTopology:
    """The simulated ISP: address space, routers, and the Home-VP."""

    def __init__(
        self,
        allocator: AddressAllocator,
        registry: ASRegistry,
        asn: int = 64500,
        name: str = "ResidentialISP",
        subscriber_prefix_length: int = 12,
        border_router_count: int = 4,
        sampling_interval: int = 100,
        seed: int = 11,
    ) -> None:
        self.autonomous_system = AutonomousSystem(asn, name, "eyeball")
        self.subscriber_space = allocator.allocate(subscriber_prefix_length)
        self.autonomous_system.announce(self.subscriber_space)
        registry.register(self.autonomous_system)
        self.sampling_interval = sampling_interval
        self.border_routers = [
            BorderRouter(
                f"br{index}", sampling_interval, seed=seed * 1000 + index
            )
            for index in range(border_router_count)
        ]
        # Reserve the top of the subscriber space for the instrumented
        # residential /22.
        residential = Prefix(
            self.subscriber_space.last + 1 - (1 << 10), 22
        )
        self.home_vp = HomeVantagePoint.carve(residential)

    def border_router_for(self, dst_ip: int) -> BorderRouter:
        """Destination-hashed egress router (consistent per backend)."""
        return self.border_routers[dst_ip % len(self.border_routers)]

    def drain_flows(self):
        """Flush and collect every border router's exported flows."""
        flows = []
        for router in self.border_routers:
            router.collector.flush()
            flows.extend(router.collector.drain())
        return flows
