"""Typed configuration for pipeline assemblies.

Before this layer the same knobs lived in three dialects: the stream
engine's ``StreamConfig`` fields, the batch engine's ``WildConfig``
extras, and loose CLI flags.  :class:`PipelineConfig` groups them by
the stage they tune — detection semantics, per-key state bounds,
checkpoint cadence, quarantine routing, runtime guards — so an
assembly reads exactly the group it owns and the CLI builds one object
(:meth:`PipelineConfig.from_args`) for every entry point.

The sub-configs are frozen: a config captured in a checkpoint or a
metrics document cannot drift mid-run.  Conversions from the legacy
per-entry-point config types live with those entry points (e.g. the
stream engine maps its ``StreamConfig``), keeping this module free of
upward imports — :mod:`repro.pipeline` never imports
:mod:`repro.engine`, :mod:`repro.stream`, or :mod:`repro.ixp`.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.netflow.parse import DEFAULT_CHUNK_SIZE
from repro.pipeline.core import GuardSet
from repro.runtime.overload import OverloadMetrics
from repro.runtime.shutdown import StopToken

__all__ = [
    "DetectionConfig",
    "StateConfig",
    "CheckpointConfig",
    "QuarantineConfig",
    "GuardConfig",
    "ColumnarConfig",
    "RulesConfig",
    "PipelineConfig",
]

_PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class DetectionConfig:
    """What counts as a detection (the Validate/Detect stages)."""

    threshold: float = 0.4
    #: TCP flows must show established-connection evidence (the IXP
    #: anti-spoofing filter); non-TCP flows always pass
    require_established: bool = False
    #: salt of the subscriber anonymisation digest
    salt: str = "haystack"

    def __post_init__(self) -> None:
        if not 0 < self.threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")


@dataclass(frozen=True)
class StateConfig:
    """Bounds of online per-key evidence state (Detect stage)."""

    #: total tracked keys (subscriber lines, addresses) across shards
    max_keys: int = 1 << 16
    #: evict keys idle longer than this (event-time seconds); None = off
    ttl_seconds: Optional[int] = None
    #: state shards; keys are partitioned by digest/address
    shards: int = 1

    def __post_init__(self) -> None:
        if self.max_keys < 1:
            raise ValueError("max_keys must be >= 1")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive when set")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    @property
    def per_shard(self) -> int:
        """Table bound per shard (at least one key each)."""
        return max(1, self.max_keys // self.shards)


@dataclass(frozen=True)
class CheckpointConfig:
    """Crash-safety cadence (wraps :mod:`repro.stream.checkpoint`)."""

    directory: Optional[_PathLike] = None
    #: write a checkpoint every N processed records; 0 disables
    every: int = 0
    keep: int = 3

    def __post_init__(self) -> None:
        if self.every < 0:
            raise ValueError("every must be >= 0")
        if self.every and self.directory is None:
            raise ValueError("checkpoint cadence needs a directory")
        if self.keep < 1:
            raise ValueError("keep must be >= 1")


@dataclass(frozen=True)
class QuarantineConfig:
    """Routing of malformed/impossible records (Validate stage)."""

    #: sample bad records here instead of raising; None keeps the
    #: historical raise-on-bad-record behaviour
    directory: Optional[_PathLike] = None


@dataclass(frozen=True)
class GuardConfig:
    """Runtime-guard budgets (see :mod:`repro.runtime`)."""

    #: RSS budget in bytes; None disables the memory governor
    memory_budget: Optional[int] = None
    #: wall-clock budget in seconds; None disables the deadline
    deadline_seconds: Optional[float] = None


@dataclass(frozen=True)
class RulesConfig:
    """Live rule refresh from a versioned hitlist store.

    ``hitlist_dir`` points at a :class:`repro.rules.lifecycle.
    VersionedRuleStore` directory; when ``refresh_every`` is positive
    the assembly polls the store every that many records (at
    absolute record-count multiples, so a resumed run polls at the
    same stream positions as an uninterrupted one) and hot-swaps to a
    newer published generation at the next event-time hour boundary.
    """

    hitlist_dir: Optional[_PathLike] = None
    #: poll the store every N processed records; 0 disables refresh
    refresh_every: int = 0

    def __post_init__(self) -> None:
        if self.refresh_every < 0:
            raise ValueError("refresh_every must be >= 0")
        if self.refresh_every and self.hitlist_dir is None:
            raise ValueError("refresh cadence needs a hitlist_dir")


@dataclass(frozen=True)
class ColumnarConfig:
    """The vectorized chunked detect path (Decode/Validate/Detect).

    When ``enabled``, assemblies decode flow sources into
    :class:`~repro.netflow.parse.FlowChunk` column batches of
    ``chunk_size`` rows and run them through
    :class:`~repro.pipeline.columnar.ColumnarFlowPipeline` — same
    events, metrics, and checkpoints as the per-record path, at vector
    speed.
    """

    enabled: bool = False
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")


@dataclass(frozen=True)
class PipelineConfig:
    """One assembly's full tuning, grouped by stage."""

    detection: DetectionConfig = field(default_factory=DetectionConfig)
    state: StateConfig = field(default_factory=StateConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    quarantine: QuarantineConfig = field(default_factory=QuarantineConfig)
    guards: GuardConfig = field(default_factory=GuardConfig)
    columnar: ColumnarConfig = field(default_factory=ColumnarConfig)
    rules: RulesConfig = field(default_factory=RulesConfig)

    @classmethod
    def from_args(
        cls,
        threshold: float = 0.4,
        require_established: bool = False,
        salt: str = "haystack",
        max_keys: int = 1 << 16,
        ttl_seconds: Optional[int] = None,
        shards: int = 1,
        checkpoint_dir: Optional[_PathLike] = None,
        checkpoint_every: int = 0,
        checkpoint_keep: int = 3,
        quarantine_dir: Optional[_PathLike] = None,
        memory_budget: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        columnar: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        hitlist_dir: Optional[_PathLike] = None,
        hitlist_refresh_every: int = 0,
    ) -> "PipelineConfig":
        """Build from the flat knob names the CLI flags use."""
        return cls(
            detection=DetectionConfig(
                threshold=threshold,
                require_established=require_established,
                salt=salt,
            ),
            state=StateConfig(
                max_keys=max_keys,
                ttl_seconds=ttl_seconds,
                shards=shards,
            ),
            checkpoint=CheckpointConfig(
                directory=checkpoint_dir,
                every=checkpoint_every,
                keep=checkpoint_keep,
            ),
            quarantine=QuarantineConfig(directory=quarantine_dir),
            guards=GuardConfig(
                memory_budget=memory_budget,
                deadline_seconds=deadline_seconds,
            ),
            columnar=ColumnarConfig(
                enabled=columnar, chunk_size=chunk_size
            ),
            rules=RulesConfig(
                hitlist_dir=hitlist_dir,
                refresh_every=hitlist_refresh_every,
            ),
        )

    def build_guards(
        self,
        stop_token: Optional[StopToken] = None,
        overload: Optional[OverloadMetrics] = None,
        on_pressure=None,
    ) -> GuardSet:
        """A :class:`~repro.pipeline.core.GuardSet` for these budgets."""
        return GuardSet.build(
            memory_budget=self.guards.memory_budget,
            deadline=self.guards.deadline_seconds,
            stop_token=stop_token,
            overload=overload,
            on_pressure=on_pressure,
        )
