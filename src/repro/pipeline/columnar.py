"""Vectorized columnar twin of the :class:`FlowPipeline` hot loop.

The per-record path pays one Python ``observe()`` call per flow; at
ISP replay rates that call dominates wall time even though the vast
majority of records match nothing.  This module runs the same fused
``Validate → Detect`` stages over :class:`~repro.netflow.parse.FlowChunk`
column batches instead:

* the TCP-established anti-spoofing filter is one boolean mask over the
  ``proto``/``flags`` columns;
* the hitlist endpoint lookup is a binary search of ``(dst << 16) |
  dport`` keys against a per-day sorted index precompiled lazily by
  :class:`EndpointDayIndex`;
* only the (rare) matching rows drop into the existing per-subscriber
  ``_fold`` of the wrapped :class:`~repro.pipeline.flow.FlowDetectStage`
  subclass, in ascending row order — so events, indices, metrics, and
  checkpoint-visible state are *identical* to the per-record path over
  the same flows.  The per-record path stays the equivalence oracle
  (``tests/test_columnar.py``).

Guards are polled once per chunk rather than every
:data:`~repro.pipeline.core.GUARD_STRIDE` records, and checkpoint
cadence fires at chunk boundaries once ``records_since_checkpoint``
reaches the configured period — cadence coarsens to the chunk size,
resumability does not change.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.netflow.parse import FlowChunk
from repro.netflow.records import PROTO_TCP, TCP_ACK, TCP_SYN
from repro.pipeline.core import GuardSet
from repro.pipeline.events import MemoryEventSink
from repro.pipeline.flow import FlowDetectStage
from repro.timeutil import SECONDS_PER_DAY, STUDY_START

__all__ = ["EndpointDayIndex", "ColumnarFlowPipeline"]


class EndpointDayIndex:
    """Per-day sorted ``(dst_ip << 16) | dport`` endpoint index.

    Built lazily from the same ``hitlist.daily_endpoints`` mapping the
    scalar stage reads, one day at a time: a sorted int64 key array for
    :func:`numpy.searchsorted` plus the fqdn list in key order.  The
    packing is exact — dst_ip occupies bits 16..47 and dport bits
    0..15, both within int64 — so two distinct ``(dst, port)`` pairs
    never collide.
    """

    __slots__ = ("_daily", "_compiled")

    def __init__(
        self, daily_endpoints: Dict[int, Dict[Tuple[int, int], str]]
    ) -> None:
        self._daily = daily_endpoints
        self._compiled: Dict[int, Optional[Tuple[np.ndarray, List[str]]]] = {}

    def day(self, day: int) -> Optional[Tuple[np.ndarray, List[str]]]:
        """``(sorted keys, fqdns in key order)``; ``None`` if empty."""
        try:
            return self._compiled[day]
        except KeyError:
            pass
        endpoints = self._daily.get(day)
        if not endpoints:
            compiled = None
        else:
            keys = np.fromiter(
                (
                    (dst << 16) | port
                    for dst, port in endpoints.keys()
                ),
                dtype=np.int64,
                count=len(endpoints),
            )
            order = np.argsort(keys, kind="stable")
            fqdns = list(endpoints.values())
            compiled = (
                keys[order],
                [fqdns[i] for i in order.tolist()],
            )
        self._compiled[day] = compiled
        return compiled

    def days(self) -> Iterable[int]:
        """All days the hitlist defines endpoints for."""
        return self._daily.keys()


class ColumnarFlowPipeline:
    """Chunked vectorized ingest sharing a scalar stage's semantics.

    Wraps an existing :class:`~repro.pipeline.flow.FlowDetectStage`
    subclass — the *same instance* an assembly would hand to
    :class:`~repro.pipeline.flow.FlowPipeline` — so state tables,
    keying, metrics, and checkpoints are shared verbatim between the
    two paths; an assembly can even mix them (resume per-record,
    continue columnar).
    """

    def __init__(
        self,
        stage: FlowDetectStage,
        sink=None,
        guards: Optional[GuardSet] = None,
        checkpoint_every: int = 0,
        on_checkpoint=None,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and on_checkpoint is None:
            raise ValueError("checkpoint_every needs an on_checkpoint")
        self.stage = stage
        self.sink = sink if sink is not None else MemoryEventSink()
        self.guards = guards if guards is not None else GuardSet()
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        self.index = EndpointDayIndex(stage._daily)

    # -- ingest -------------------------------------------------------

    def run_chunks(
        self,
        chunks: Iterable[FlowChunk],
        max_records: Optional[int] = None,
    ) -> int:
        """Fold decoded column chunks; records folded.

        Equivalent to feeding the rows of every chunk through
        ``stage.observe`` one by one — same events in the same order,
        same metrics — at vector speed for the non-matching majority.
        """
        guards = self.guards
        checkpoint_every = self.checkpoint_every
        metrics = self.stage.metrics
        processed = 0
        if self.index._daily is not self.stage._daily:
            # A rule swap applied on the per-record path (the stage is
            # shared) retired the mapping this index was compiled from.
            self.index = EndpointDayIndex(self.stage._daily)
        if guards.check(0) is not None:  # stop already requested
            return 0
        if checkpoint_every:
            metrics.records_since_checkpoint = 0
        started = time.perf_counter()
        try:
            for chunk in chunks:
                if max_records is not None:
                    budget = max_records - processed
                    if len(chunk) > budget:
                        chunk = chunk.head(budget)
                count = len(chunk)
                if count:
                    if self.stage._pending_swap is not None:
                        self._observe_split(chunk)
                    else:
                        self._observe_chunk(chunk)
                    processed += count
                if (
                    checkpoint_every
                    and metrics.records_since_checkpoint >= checkpoint_every
                ):
                    self.on_checkpoint()
                    metrics.records_since_checkpoint = 0
                if guards.check(count) is not None:
                    break
                if max_records is not None and processed >= max_records:
                    break
        finally:
            metrics.process_seconds += time.perf_counter() - started
        return processed

    # -- the vectorized fused stage -----------------------------------

    def _observe_split(self, chunk: FlowChunk) -> None:
        """Fold a chunk across a staged rule swap's activation boundary.

        The per-record path applies a staged swap at the first record
        whose timestamp reaches ``activate_at`` — in arrival order —
        and folds that record and everything after it under the new
        generation.  This reproduces those semantics chunked: rows
        before the first boundary row fold under the old generation,
        then the stage swap is applied and the endpoint index is
        exchanged for the generation's prebuilt one (or a lazily
        compiled replacement), and the boundary row onward folds under
        the new generation.  Splitting keeps the two paths
        record-for-record identical across swaps, including swaps that
        land mid-chunk.
        """
        stage = self.stage
        pending = stage._pending_swap
        while pending is not None and len(chunk):
            boundary = np.flatnonzero(chunk.first >= pending.activate_at)
            if not len(boundary):
                break
            split = int(boundary[0])
            if split:
                self._observe_chunk(chunk.head(split))
                chunk = chunk.tail(split)
            generation = pending.generation
            stage._apply_swap()
            self.index = (
                generation.index
                if generation.index is not None
                else EndpointDayIndex(stage._daily)
            )
            pending = stage._pending_swap
        if len(chunk):
            self._observe_chunk(chunk)

    def _observe_chunk(self, chunk: FlowChunk) -> None:
        stage = self.stage
        metrics = stage.metrics
        count = len(chunk)
        metrics.records_processed += count
        metrics.records_since_checkpoint += count
        first = chunk.first
        watermark = int(first.max())
        if watermark > metrics.watermark:
            metrics.watermark = watermark
        rows = None  # admitted row positions, None == all
        if stage.require_established:
            keep = (chunk.proto != PROTO_TCP) | (
                ((chunk.flags & TCP_ACK) != 0)
                & ((chunk.flags & TCP_SYN) == 0)
            )
            rejected = count - int(keep.sum())
            if rejected:
                metrics.flows_rejected_spoof += rejected
                rows = np.flatnonzero(keep)
                first = first[rows]
                if not len(first):
                    return
        day = (first - STUDY_START) // SECONDS_PER_DAY
        day_lo = int(day.min())
        day_hi = int(day.max())
        dst = chunk.dst if rows is None else chunk.dst[rows]
        dport = chunk.dport if rows is None else chunk.dport[rows]
        key = (dst << np.int64(16)) | dport
        matches: List[Tuple[np.ndarray, List[str]]] = []
        for index_day in self.index.days():
            if index_day < day_lo or index_day > day_hi:
                continue
            compiled = self.index.day(index_day)
            if compiled is None:
                continue
            keys, fqdns = compiled
            if day_lo == day_hi:
                sub_rows = None
                sub_key = key
            else:
                sub_rows = np.flatnonzero(day == index_day)
                if not len(sub_rows):
                    continue
                sub_key = key[sub_rows]
            pos = np.searchsorted(keys, sub_key)
            hit = keys[np.minimum(pos, len(keys) - 1)] == sub_key
            hit_rows = np.flatnonzero(hit)
            if not len(hit_rows):
                continue
            hit_fqdns = [fqdns[i] for i in pos[hit_rows].tolist()]
            if sub_rows is not None:
                hit_rows = sub_rows[hit_rows]
            matches.append((hit_rows, hit_fqdns))
        if not matches:
            return
        if len(matches) == 1:
            hit_rows, hit_fqdns = matches[0]
        else:
            hit_rows = np.concatenate([m[0] for m in matches])
            order = np.argsort(hit_rows, kind="stable")
            flat = [fqdn for _, fqdns in matches for fqdn in fqdns]
            hit_fqdns = [flat[i] for i in order.tolist()]
            hit_rows = hit_rows[order]
        # Map admitted-row positions back to chunk rows when the
        # established filter dropped rows.
        if rows is not None:
            hit_rows = rows[hit_rows]
        whens = chunk.first[hit_rows].tolist()
        srcs = chunk.src[hit_rows].tolist()
        metrics.flows_matched += len(hit_rows)
        fold = stage._fold
        # Routed fleet sub-chunks carry explicit per-row global stream
        # indices; plain chunks number contiguously from start_index.
        explicit = getattr(chunk, "indices", None)
        if explicit is None:
            hit_indices = (chunk.start_index + hit_rows).tolist()
        else:
            hit_indices = explicit[hit_rows].tolist()
        emit = self._emit
        for index, when, src, fqdn in zip(
            hit_indices, whens, srcs, hit_fqdns
        ):
            events = fold(index, when, src, fqdn)
            if events:
                emit(events)

    def _emit(self, events) -> None:
        append = self.sink.append
        for event in events:
            append(event)
        self.stage.metrics.events_emitted += len(events)
