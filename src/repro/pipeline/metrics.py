"""Run metrics shared by every pipeline assembly.

One metrics document family (version tag ``repro.engine.metrics/1``,
kept for trajectory continuity) covers all three entry points: the
sharded batch engine emits an :class:`EngineMetrics`, the streaming
and flow-replay assemblies a :class:`StreamMetrics`.  Emission lives
here — in :mod:`repro.pipeline` — so the per-stage accounting is
implemented once and the assemblies (:mod:`repro.engine`,
:mod:`repro.stream`, :mod:`repro.ixp`) merely fill it in.

Batch schema::

    {
      "schema": "repro.engine.metrics/1",
      "config": {"subscribers": …, "days": …, "seed": …,
                 "sampling_interval": …, "workers": …, "shard_size": …,
                 "max_retries": …, "shard_timeout": …},
      "faults": {"retries": …, "timeouts": …, "pool_restarts": …,
                 "isolated_runs": …, "dead_letters": […],
                 "missing_cohort_hours": …, "unstarted_shards": …},
      "overload": {"memory_budget_bytes": …, "deadline_seconds": …,
                   "rss_peak_bytes": …, "rss_samples": …,
                   "pressure_events": …, "shed_actions": {…},
                   "shed_units": {…}, "ingest_dropped": {…},
                   "stop_reason": …, "degraded": …},
      "stages": {"plan_seconds": …, "simulate_seconds": …,
                 "aggregate_seconds": …, "total_seconds": …},
      "shards": {"count": …, "peak_rss_bytes_max": …,
                 "peak_rss_bytes_mean": …},
      "throughput": {"draws": …, "flows_per_second": …},
      "cohorts": {"<product>": {"owners": …, "universe": …,
                  "shards": …}}
    }

``flows_per_second`` counts simulated per-(owner, hour, domain)
evidence draws — the engine's equivalent of raw flow records folded
through the detector — divided by the simulate-stage wall time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.overload import OverloadMetrics

__all__ = [
    "ShardMetrics",
    "EngineMetrics",
    "StreamMetrics",
    "METRICS_SCHEMA",
]

#: Version tag carried in every metrics document.
METRICS_SCHEMA = "repro.engine.metrics/1"


@dataclass
class ShardMetrics:
    """Timing/memory/throughput record of one simulated shard."""

    product: str
    owners: int
    universe: int
    wall_seconds: float
    draws: int
    peak_rss_bytes: int


@dataclass
class EngineMetrics:
    """Aggregated metrics of one sharded wild-ISP run."""

    subscribers: int
    days: int
    seed: int
    sampling_interval: int
    workers: int
    shard_size: int
    max_retries: int = 2
    shard_timeout: Optional[float] = None
    plan_seconds: float = 0.0
    simulate_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    shards: List[ShardMetrics] = field(default_factory=list)
    # -- supervision counters (see repro.resilience.supervisor) --------
    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    isolated_runs: int = 0
    dead_letters: List[Dict[str, object]] = field(default_factory=list)
    #: shards never started because the run stopped (drain/deadline)
    unstarted_shards: int = 0
    #: runtime-guard accounting (see repro.runtime.overload)
    overload: OverloadMetrics = field(default_factory=OverloadMetrics)

    @property
    def total_seconds(self) -> float:
        """Wall time across all engine stages."""
        return (
            self.plan_seconds + self.simulate_seconds + self.aggregate_seconds
        )

    @property
    def total_draws(self) -> int:
        """Simulated evidence draws across all shards."""
        return sum(shard.draws for shard in self.shards)

    @property
    def flows_per_second(self) -> float:
        """Evidence draws folded per simulate-stage wall second."""
        if self.simulate_seconds <= 0:
            return 0.0
        return self.total_draws / self.simulate_seconds

    def cohort_sizes(self) -> Dict[str, Dict[str, int]]:
        """Per-product owner/universe/shard-count summary."""
        cohorts: Dict[str, Dict[str, int]] = {}
        for shard in self.shards:
            entry = cohorts.setdefault(
                shard.product,
                {"owners": 0, "universe": shard.universe, "shards": 0},
            )
            entry["owners"] += shard.owners
            entry["shards"] += 1
        return cohorts

    @property
    def missing_cohort_hours(self) -> int:
        """Owner-hours of evidence lost to dead-lettered shards."""
        return sum(
            int(letter.get("missing_cohort_hours", 0))
            for letter in self.dead_letters
        )

    def record_supervision(self, report) -> None:
        """Fold a :class:`~repro.resilience.supervisor.SupervisorReport`
        into the document's fault counters."""
        self.retries += report.retries
        self.timeouts += report.timeouts
        self.pool_restarts += report.pool_restarts
        self.isolated_runs += report.isolated_runs
        self.dead_letters.extend(
            letter.to_dict() for letter in report.dead_letters
        )
        self.unstarted_shards += report.unstarted
        if report.unstarted:
            self.overload.partial = True
        if report.stop_reason and self.overload.stop_reason is None:
            self.overload.stop_reason = report.stop_reason

    def to_dict(self) -> Dict[str, object]:
        """Render the documented JSON-serialisable schema."""
        rss = [shard.peak_rss_bytes for shard in self.shards]
        return {
            "schema": METRICS_SCHEMA,
            "config": {
                "subscribers": self.subscribers,
                "days": self.days,
                "seed": self.seed,
                "sampling_interval": self.sampling_interval,
                "workers": self.workers,
                "shard_size": self.shard_size,
                "max_retries": self.max_retries,
                "shard_timeout": self.shard_timeout,
            },
            "faults": {
                "retries": self.retries,
                "timeouts": self.timeouts,
                "pool_restarts": self.pool_restarts,
                "isolated_runs": self.isolated_runs,
                "dead_letters": list(self.dead_letters),
                "missing_cohort_hours": self.missing_cohort_hours,
                "unstarted_shards": self.unstarted_shards,
            },
            "overload": self.overload.to_dict(),
            "stages": {
                "plan_seconds": self.plan_seconds,
                "simulate_seconds": self.simulate_seconds,
                "aggregate_seconds": self.aggregate_seconds,
                "total_seconds": self.total_seconds,
            },
            "shards": {
                "count": len(self.shards),
                "peak_rss_bytes_max": max(rss) if rss else 0,
                "peak_rss_bytes_mean": (
                    int(sum(rss) / len(rss)) if rss else 0
                ),
            },
            "throughput": {
                "draws": self.total_draws,
                "flows_per_second": self.flows_per_second,
            },
            "cohorts": self.cohort_sizes(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise :meth:`to_dict` as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


@dataclass
class StreamMetrics:
    """Metrics of one :mod:`repro.stream` run (same schema family).

    The document carries the ``repro.engine.metrics/1`` version tag
    with a ``"mode": "stream"`` discriminator, so the same tooling
    tracks batch-engine and stream trajectories.  Beyond the shared
    stage/throughput sections it reports the stream-specific health
    signals: ingest lag (records since the last checkpoint, replay
    buffer high watermark), state-table evictions, and checkpoint
    timings.
    """

    workers: int = 1
    max_subscribers: int = 0
    ttl_seconds: Optional[int] = None
    checkpoint_every: int = 0
    threshold: float = 0.4
    records_processed: int = 0
    flows_matched: int = 0
    flows_rejected_spoof: int = 0
    events_emitted: int = 0
    subscribers_tracked: int = 0
    evicted_lru: int = 0
    evicted_ttl: int = 0
    #: entries shed by memory-pressure table shrinks
    evicted_pressure: int = 0
    checkpoints_written: int = 0
    checkpoint_seconds: float = 0.0
    process_seconds: float = 0.0
    records_since_checkpoint: int = 0
    source_high_watermark: int = 0
    #: event-time high watermark (largest record timestamp seen)
    watermark: int = 0
    #: checkpoint generation resume() loaded, if any
    resumed_from_generation: Optional[int] = None
    #: damaged checkpoint generations skipped while resuming
    checkpoint_fallbacks: int = 0
    #: fresh starts forced by a checkpoint directory holding *only*
    #: torn-write ``.tmp`` leftovers — distinct from a genuinely empty
    #: directory, which a fleet lineage audit must read as "new
    #: worker", not "worker died mid-first-checkpoint"
    tmp_only_fallbacks: int = 0
    records_quarantined: int = 0
    quarantine_reasons: Dict[str, int] = field(default_factory=dict)
    # -- live rule lifecycle (see repro.pipeline.swap) ----------------
    #: rule generation currently detecting (0 = unversioned rules)
    rules_active_version: int = 0
    #: staged generation awaiting its activation boundary, if any
    rules_pending_version: Optional[int] = None
    #: event-time boundary the staged generation activates at
    rules_pending_activate_at: Optional[int] = None
    #: hot swaps applied so far
    rules_swaps: int = 0
    #: failed refresh attempts (backend outage, validation reject, …)
    rules_refresh_failures: int = 0
    #: first-seen domain windows that survived swap migration
    rules_evidence_migrated: int = 0
    #: first-seen windows expired because their domain was dropped
    rules_evidence_expired: int = 0
    #: per-class evidence expired because the class was dropped
    rules_classes_expired: int = 0
    #: runtime-guard accounting (see repro.runtime.overload)
    overload: OverloadMetrics = field(default_factory=OverloadMetrics)
    #: live-collector counters (see repro.collector.metrics) — any
    #: object with ``to_dict()`` (or a plain dict); rendered as the
    #: ``"collector"`` section when set.  ``None`` (file replay, batch)
    #: omits the section, keeping historical documents byte-stable.
    collector: Optional[object] = None
    #: fleet-mode counters (see repro.fleet.metrics) — any object with
    #: ``to_dict()`` (or a plain dict); rendered as the ``"fleet"``
    #: section when set.  ``None`` (single-engine runs) omits it.
    fleet: Optional[object] = None

    @property
    def records_per_second(self) -> float:
        """Records folded per wall second of processing."""
        if self.process_seconds <= 0:
            return 0.0
        return self.records_processed / self.process_seconds

    @property
    def checkpoint_overhead(self) -> float:
        """Fraction of total wall time spent writing checkpoints."""
        total = self.process_seconds + self.checkpoint_seconds
        if total <= 0:
            return 0.0
        return self.checkpoint_seconds / total

    def to_dict(self) -> Dict[str, object]:
        """Render the documented JSON-serialisable schema."""
        doc = {
            "schema": METRICS_SCHEMA,
            "mode": "stream",
            "config": {
                "workers": self.workers,
                "max_subscribers": self.max_subscribers,
                "ttl_seconds": self.ttl_seconds,
                "checkpoint_every": self.checkpoint_every,
                "threshold": self.threshold,
            },
            "stages": {
                "process_seconds": self.process_seconds,
                "checkpoint_seconds": self.checkpoint_seconds,
                "total_seconds": (
                    self.process_seconds + self.checkpoint_seconds
                ),
            },
            "state": {
                "subscribers_tracked": self.subscribers_tracked,
                "evicted_lru": self.evicted_lru,
                "evicted_ttl": self.evicted_ttl,
                "evicted_pressure": self.evicted_pressure,
            },
            "lag": {
                "records_since_checkpoint": self.records_since_checkpoint,
                "source_high_watermark": self.source_high_watermark,
                "event_time_watermark": self.watermark,
            },
            "checkpoints": {
                "written": self.checkpoints_written,
                "seconds": self.checkpoint_seconds,
                "overhead": self.checkpoint_overhead,
                "resumed_from_generation": self.resumed_from_generation,
                "fallbacks": self.checkpoint_fallbacks,
                "tmp_only_fallbacks": self.tmp_only_fallbacks,
            },
            "quarantine": {
                "total": self.records_quarantined,
                "by_reason": dict(sorted(self.quarantine_reasons.items())),
            },
            "rules": {
                "active_version": self.rules_active_version,
                "pending_version": self.rules_pending_version,
                "pending_activate_at": self.rules_pending_activate_at,
                "swap_count": self.rules_swaps,
                "refresh_failures": self.rules_refresh_failures,
                "evidence_migrated": self.rules_evidence_migrated,
                "evidence_expired": self.rules_evidence_expired,
                "classes_expired": self.rules_classes_expired,
            },
            "overload": self.overload.to_dict(),
            "throughput": {
                "records": self.records_processed,
                "matched": self.flows_matched,
                "rejected_spoof": self.flows_rejected_spoof,
                "events": self.events_emitted,
                "records_per_second": self.records_per_second,
            },
        }
        if self.collector is not None:
            render = getattr(self.collector, "to_dict", None)
            doc["collector"] = render() if callable(render) else dict(
                self.collector
            )
        if self.fleet is not None:
            render = getattr(self.fleet, "to_dict", None)
            doc["fleet"] = render() if callable(render) else dict(
                self.fleet
            )
        return doc

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise :meth:`to_dict` as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
