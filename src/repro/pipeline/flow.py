"""The staged flow hot path shared by every detection entry point.

Conceptually a record moves through five stages::

    Source → Decode → Validate → Detect → Sink

In practice a per-record method call per stage would dominate the
per-record budget (the stream path folds ~350k records/second), so the
middle three stages are *fused* into one :meth:`FlowDetectStage.observe`
call: watermark accounting, the TCP-established anti-spoofing filter
(Validate), the day-cached hitlist endpoint lookup (Decode against the
hitlist), and the per-key evidence fold (Detect).  Only records that
match a hitlist endpoint — a small fraction — pay the polymorphic
``_fold`` dispatch, so an assembly chooses its semantics without taxing
the non-matching majority:

* :class:`StreamingDetectStage` folds into bounded
  :class:`~repro.pipeline.state.EvidenceStateTable` shards and emits
  :class:`~repro.pipeline.events.DetectionEvent` instances the moment a
  rule chain completes (the online path);
* :class:`BatchDetectStage` accumulates unbounded first-seen evidence
  and replays it on demand, reproducing the batch
  :class:`~repro.core.detector.FlowDetector` result exactly (the
  offline path).

Keying is the other assembly axis: :class:`SubscriberKeying` anonymises
raw subscriber line identifiers into salted digests and shards by
digest (ISP paths), :class:`AddressKeying` keys by source address
(the IXP path, where no subscriber notion exists).

:class:`FlowPipeline` is the driver: one guarded ingest loop — records
or pre-parsed tuples — owning checkpoint cadence, sink emission, guard
polling every :data:`~repro.pipeline.core.GUARD_STRIDE` records, and
source drop/backpressure accounting.  The batch engine, the stream
engine, and the IXP fabric path are thin assemblies of these parts.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cloud.addressing import ip_to_str
from repro.core.detector import (
    Detection,
    SubscriberProgress,
    _AnonymizerCache,
)
from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet
from repro.netflow.records import PROTO_TCP, TCP_ACK, TCP_SYN
from repro.pipeline.core import GUARD_STRIDE, GuardSet
from repro.pipeline.events import DetectionEvent, MemoryEventSink
from repro.pipeline.metrics import StreamMetrics
from repro.pipeline.state import EvidenceStateTable
from repro.pipeline.swap import (
    PendingSwap,
    RuleGeneration,
    migrate_tables,
    next_activation,
)
from repro.timeutil import SECONDS_PER_DAY, STUDY_START

__all__ = [
    "SubscriberKeying",
    "AddressKeying",
    "RecordRouter",
    "FlowDetectStage",
    "StreamingDetectStage",
    "BatchDetectStage",
    "FlowPipeline",
]


class SubscriberKeying:
    """Raw subscriber line id → ``(salted digest, state shard)``.

    The digest is the anonymisation boundary (raw identifiers never
    persist past this point); the shard index partitions per-key state
    across ``shards`` tables by digest, so the shard count never
    changes *which* events are emitted, only how state is split.  The
    raw-id → identity cache is recomputable, which is why
    :meth:`forget` may drop it under memory pressure without affecting
    detection output.
    """

    __slots__ = ("shards", "_digests", "_identities")

    def __init__(self, salt: str = "haystack", shards: int = 1) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self._digests = _AnonymizerCache(salt)
        self._identities: Dict[int, Tuple[str, int]] = {}

    def identity(self, raw: int) -> Tuple[str, int]:
        """The cached ``(digest, shard)`` identity for a raw id."""
        identity = self._identities.get(raw)
        if identity is None:
            digest = self._digests(raw)
            identity = (digest, int(digest, 16) % self.shards)
            self._identities[raw] = identity
        return identity

    def ring_hash(self, raw: int) -> int:
        """The stable integer the fleet ring partitions by.

        The full digest value, before any ``% shards`` reduction — so a
        ring of any slot count and a keying of any shard count agree on
        which key a record belongs to.  ``identity(raw)[1]`` equals
        ``ring_hash(raw) % shards`` by construction; the golden-vector
        test pins both so an accidental hash change (which would
        silently corrupt fleet ring assignment and checkpoint lineage)
        fails tier-1.
        """
        digest, _ = self.identity(raw)
        return int(digest, 16)

    def forget(self) -> int:
        """Drop the recomputable identity cache; entries freed."""
        count = len(self._identities)
        self._identities.clear()
        return count


class AddressKeying:
    """Source address → ``(dotted quad, state shard)`` (IXP paths).

    At an IXP there is no subscriber notion — detection is per source
    address per the paper's Section 6 — so the key is the address
    itself, rendered printable.  The memo cache is recomputable and
    sheddable, mirroring :class:`SubscriberKeying`.
    """

    __slots__ = ("shards", "_names")

    def __init__(self, shards: int = 1) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self._names: Dict[int, Tuple[str, int]] = {}

    def identity(self, raw: int) -> Tuple[str, int]:
        """The cached ``(dotted quad, shard)`` identity for an address."""
        identity = self._names.get(raw)
        if identity is None:
            identity = (ip_to_str(raw), raw % self.shards)
            self._names[raw] = identity
        return identity

    def ring_hash(self, raw: int) -> int:
        """The stable integer the fleet ring partitions by.

        The address itself: ``identity(raw)[1]`` is ``raw % shards``,
        so the address is the pre-reduction hash.
        """
        return raw

    def forget(self) -> int:
        """Drop the recomputable name cache; entries freed."""
        count = len(self._names)
        self._names.clear()
        return count


class RecordRouter:
    """Consistent record → ring-slot assignment for fleet fan-out.

    The router stage in front of a worker fleet must send every record
    of one subscriber key to the same slot, across runs and across
    rebalances — detection folds per-key evidence in arrival order, so
    splitting a key over two workers would reorder its folds.  The
    assignment therefore reuses the keying's *memoised* identity: the
    router is built with a keying whose ``shards`` equals the ring slot
    count, making ``identity(src)[1]`` the slot directly (one dict hit
    per repeated source, digest arithmetic only on first sight).

    This stage is deliberately stateless beyond the recomputable memo:
    a crashed router rebuilds assignment from the keying salt alone,
    which is what makes whole-fleet resume possible.
    """

    __slots__ = ("keying", "slots")

    def __init__(self, keying, slots: Optional[int] = None) -> None:
        if slots is None:
            slots = keying.shards
        if slots != keying.shards:
            raise ValueError(
                f"router over {slots} slots needs a keying sharded "
                f"{slots} ways, got {keying.shards}"
            )
        self.keying = keying
        self.slots = slots

    def slot_of(self, src: int) -> int:
        """The ring slot of a raw source key (memoised)."""
        return self.keying.identity(src)[1]

    def route(
        self, pairs: Iterable[Tuple[int, Tuple[int, int, int, int, int, int]]]
    ) -> Iterable[Tuple[int, int, Tuple[int, int, int, int, int, int]]]:
        """Yield ``(slot, index, tuple)`` for indexed flow tuples."""
        identity = self.keying.identity
        for index, record in pairs:
            yield identity(record[1])[1], index, record


class FlowDetectStage:
    """Fused Decode/Validate/Detect over raw record fields.

    :meth:`observe` is *the* per-record hot call of every assembly.  It
    takes scalar fields rather than a record object so the tuple fast
    path never constructs records, and it fuses the cheap universal
    work — counters, watermark, the established filter, the day-cached
    endpoint lookup — dispatching to the subclass :meth:`_fold` only
    for the records that matched a hitlist endpoint.
    """

    __slots__ = (
        "rules",
        "hitlist",
        "threshold",
        "require_established",
        "keying",
        "metrics",
        "_daily",
        "_day_front",
        "_endpoints_front",
        "_day_back",
        "_endpoints_back",
        "_pending_swap",
    )

    def __init__(
        self,
        rules: RuleSet,
        hitlist: Hitlist,
        keying,
        threshold: float = 0.4,
        require_established: bool = False,
        metrics: Optional[StreamMetrics] = None,
    ) -> None:
        self.rules = rules
        self.hitlist = hitlist
        self.threshold = threshold
        self.require_established = require_established
        self.keying = keying
        self.metrics = metrics if metrics is not None else StreamMetrics(
            threshold=threshold
        )
        self._daily = hitlist.daily_endpoints
        # Two-entry day cache: out-of-order records that jitter across
        # a UTC day boundary alternate between two days, and a single
        # cached day would re-fetch from ``_daily`` on every flip.
        self._day_front: Optional[int] = None
        self._endpoints_front: Dict[Tuple[int, int], str] = {}
        self._day_back: Optional[int] = None
        self._endpoints_back: Dict[Tuple[int, int], str] = {}
        #: staged rule generation awaiting its event-time boundary
        self._pending_swap: Optional[PendingSwap] = None

    def observe(
        self,
        index: int,
        when: int,
        src: int,
        dst: int,
        proto: int,
        dport: int,
        flags: int,
    ) -> Optional[List[DetectionEvent]]:
        """Fold one record; completed detections (usually ``None``)."""
        metrics = self.metrics
        metrics.records_processed += 1
        metrics.records_since_checkpoint += 1
        if when > metrics.watermark:
            metrics.watermark = when
        if (
            self._pending_swap is not None
            and when >= self._pending_swap.activate_at
        ):
            self._apply_swap()
        if (
            self.require_established
            and proto == PROTO_TCP
            and not (flags & TCP_ACK and not flags & TCP_SYN)
        ):
            metrics.flows_rejected_spoof += 1
            return None
        day = (when - STUDY_START) // SECONDS_PER_DAY
        if day != self._day_front:
            if day == self._day_back:
                self._day_front, self._day_back = day, self._day_front
                self._endpoints_front, self._endpoints_back = (
                    self._endpoints_back,
                    self._endpoints_front,
                )
            else:
                self._day_back = self._day_front
                self._endpoints_back = self._endpoints_front
                self._day_front = day
                self._endpoints_front = self._daily.get(day, {})
        fqdn = self._endpoints_front.get((dst, dport))
        if fqdn is None:
            return None
        metrics.flows_matched += 1
        return self._fold(index, when, src, fqdn)

    def _fold(
        self, index: int, when: int, src: int, fqdn: str
    ) -> Optional[List[DetectionEvent]]:
        raise NotImplementedError

    # -- live rule swap (see repro.pipeline.swap) ---------------------

    def stage_swap(
        self,
        generation: RuleGeneration,
        activate_at: Optional[int] = None,
    ) -> int:
        """Stage ``generation`` for activation at an event-time boundary.

        With ``activate_at`` omitted the boundary is the next hour
        after the current watermark (:func:`~repro.pipeline.swap.
        next_activation`).  The swap applies at the first observed
        record whose timestamp reaches the boundary — in arrival
        order — so activation is deterministic in the record stream
        regardless of how the run is segmented.  Returns the boundary.
        """
        if activate_at is None:
            activate_at = next_activation(self.metrics.watermark)
        self._pending_swap = PendingSwap(generation, activate_at)
        self.metrics.rules_pending_version = generation.version
        self.metrics.rules_pending_activate_at = activate_at
        return activate_at

    def _apply_swap(self) -> None:
        """Take the staged generation live (called on the hot path).

        Reference flips plus one bounded evidence-migration pass: the
        rule set and daily-endpoint mapping are exchanged, the two-day
        endpoint cache is invalidated, and subclasses migrate their
        per-key evidence in :meth:`_migrate_evidence`.
        """
        pending = self._pending_swap
        assert pending is not None
        self._pending_swap = None
        generation = pending.generation
        self.rules = generation.rules
        self.hitlist = generation.hitlist
        self._daily = generation.hitlist.daily_endpoints
        self._day_front = None
        self._endpoints_front = {}
        self._day_back = None
        self._endpoints_back = {}
        metrics = self.metrics
        metrics.rules_active_version = generation.version
        metrics.rules_pending_version = None
        metrics.rules_pending_activate_at = None
        metrics.rules_swaps += 1
        self._migrate_evidence(generation.rules)

    def _migrate_evidence(self, rules: RuleSet) -> None:
        """Subclasses owning per-key evidence migrate it here."""

    def shed_pressure(self) -> None:
        """Default pressure response: drop recomputable caches."""
        self.keying.forget()


class StreamingDetectStage(FlowDetectStage):
    """Online Detect: bounded per-key state, events on completion.

    Per-key evidence lives in LRU/TTL-bounded
    :class:`~repro.pipeline.state.EvidenceStateTable` shards (one per
    keying shard).  The tables are *assignable* — a resuming engine
    restores checkpointed tables in place — and shrinkable under
    memory pressure.
    """

    __slots__ = ("tables",)

    def __init__(
        self,
        rules: RuleSet,
        hitlist: Hitlist,
        keying,
        tables: List[EvidenceStateTable],
        threshold: float = 0.4,
        require_established: bool = False,
        metrics: Optional[StreamMetrics] = None,
    ) -> None:
        super().__init__(
            rules,
            hitlist,
            keying,
            threshold=threshold,
            require_established=require_established,
            metrics=metrics,
        )
        if len(tables) != keying.shards:
            raise ValueError(
                f"{len(tables)} state tables for {keying.shards} shards"
            )
        self.tables = tables

    def _fold(
        self, index: int, when: int, src: int, fqdn: str
    ) -> Optional[List[DetectionEvent]]:
        key, shard = self.keying.identity(src)
        progress = self.tables[shard].touch(key, when)
        completed = progress.observe(
            self.rules, self.threshold, fqdn, when
        )
        if not completed:
            return None
        return [
            DetectionEvent(
                subscriber=key,
                class_name=class_name,
                detected_at=detected_at,
                record_index=index,
                matched_domains=self.rules.rule(
                    class_name
                ).matched_domains(progress.first_seen),
            )
            for class_name, detected_at in completed
        ]

    def _migrate_evidence(self, rules: RuleSet) -> None:
        """Migrate every state shard's evidence to the new rules.

        Surviving domains keep their first-seen windows, dropped
        domains/classes are expired — each tallied into the ``rules``
        metrics section (see :func:`~repro.pipeline.swap.
        migrate_tables` for the exact semantics).
        """
        report = migrate_tables(self.tables, rules)
        metrics = self.metrics
        metrics.rules_evidence_migrated += report.domains_kept
        metrics.rules_evidence_expired += report.domains_expired
        metrics.rules_classes_expired += report.classes_expired


class BatchDetectStage(FlowDetectStage):
    """Offline Detect: unbounded evidence, replayed on demand.

    Accumulates per-key first-seen evidence exactly like the batch
    :class:`~repro.core.detector.FlowDetector`'s store (min-merge on
    out-of-order arrivals) and computes :meth:`detections` by replaying
    each key's evidence in time order — so for the same flows the
    result equals ``FlowDetector.detections()`` verbatim, the
    cross-path equivalence the tests pin down.
    """

    __slots__ = ("_evidence",)

    def __init__(
        self,
        rules: RuleSet,
        hitlist: Hitlist,
        keying,
        threshold: float = 0.4,
        require_established: bool = False,
        metrics: Optional[StreamMetrics] = None,
    ) -> None:
        super().__init__(
            rules,
            hitlist,
            keying,
            threshold=threshold,
            require_established=require_established,
            metrics=metrics,
        )
        #: key -> fqdn -> earliest observation timestamp
        self._evidence: Dict[str, Dict[str, int]] = {}

    def _fold(
        self, index: int, when: int, src: int, fqdn: str
    ) -> None:
        key, _ = self.keying.identity(src)
        domains = self._evidence.setdefault(key, {})
        previous = domains.get(fqdn)
        if previous is None or when < previous:
            domains[fqdn] = when
        return None

    def detections(
        self, threshold: Optional[float] = None
    ) -> List[Detection]:
        """Earliest detection per (key, class), batch semantics."""
        threshold = self.threshold if threshold is None else threshold
        results: List[Detection] = []
        for key, evidence in self._evidence.items():
            ordered = sorted(
                evidence.items(), key=lambda item: (item[1], item[0])
            )
            progress = SubscriberProgress()
            emitted: List[Tuple[str, int]] = []
            for fqdn, when in ordered:
                emitted.extend(
                    progress.observe(self.rules, threshold, fqdn, when)
                )
            seen = set(evidence)
            results.extend(
                Detection(
                    subscriber=key,
                    class_name=class_name,
                    detected_at=detected_at,
                    matched_domains=self.rules.rule(
                        class_name
                    ).matched_domains(seen),
                )
                for class_name, detected_at in emitted
            )
        results.sort(
            key=lambda item: (
                item.detected_at,
                item.class_name,
                item.subscriber,
            )
        )
        return results


class FlowPipeline:
    """The guarded ingest loop every flow assembly runs.

    Owns the loop-level concerns the Detect stage must not: sink
    emission, checkpoint cadence (``checkpoint_every`` records, via the
    ``on_checkpoint`` callback the owning assembly provides), guard
    polling every :data:`~repro.pipeline.core.GUARD_STRIDE` records,
    ``max_records`` bounding, wall-time accounting, and — for
    backpressure-aware sources — high-watermark and shed-drop folding
    into the overload metrics.

    A guard stop ends the ingest call early and records the reason in
    the shared overload metrics; the assembly stays resumable and
    decides itself whether to drain (persist a final checkpoint).
    """

    def __init__(
        self,
        stage: FlowDetectStage,
        sink=None,
        guards: Optional[GuardSet] = None,
        checkpoint_every: int = 0,
        on_checkpoint=None,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and on_checkpoint is None:
            raise ValueError("checkpoint_every needs an on_checkpoint")
        self.stage = stage
        self.sink = sink if sink is not None else MemoryEventSink()
        self.guards = guards if guards is not None else GuardSet()
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint

    # -- ingest -------------------------------------------------------

    def run_records(self, source, max_records: Optional[int] = None) -> int:
        """Fold ``(index, FlowRecord)`` pairs; records folded.

        ``source`` is typically a
        :class:`~repro.netflow.replay.FlowReplaySource`; its
        backpressure high watermark and shed-policy drops are folded
        into the metrics when the call ends, however it ends.
        """
        drops_before = dict(getattr(source, "drops", None) or {})
        metrics = self.stage.metrics
        try:
            return self._run(
                (
                    (
                        index,
                        (
                            flow.first_switched,
                            flow.src_ip,
                            flow.dst_ip,
                            flow.protocol,
                            flow.dst_port,
                            flow.tcp_flags,
                        ),
                    )
                    for index, flow in source
                ),
                max_records,
            )
        finally:
            watermark = getattr(source, "high_watermark", None)
            if watermark is not None:
                metrics.source_high_watermark = max(
                    metrics.source_high_watermark, watermark
                )
            self._fold_source_drops(source, drops_before)

    def run_tuples(
        self,
        tuples: Iterable[Tuple[int, int, int, int, int, int]],
        start_index: int = 0,
        max_records: Optional[int] = None,
    ) -> int:
        """Fast-path ingest of pre-parsed flow tuples.

        ``tuples`` yields ``(first, src, dst, proto, dport, flags)``
        (see :func:`repro.netflow.replay.iter_flow_tuples`); indices
        are assigned from ``start_index``.
        """
        return self._run(
            zip(itertools.count(start_index), tuples), max_records
        )

    def run_pairs(
        self,
        pairs: Iterable[Tuple[int, Tuple[int, int, int, int, int, int]]],
        max_records: Optional[int] = None,
    ) -> int:
        """Ingest explicitly indexed ``(index, tuple)`` pairs.

        The fleet path: a routed worker receives records whose global
        stream indices are not contiguous (the router keeps the index a
        record had in the single-stream order), and event-log merge
        identity depends on folding them under exactly those indices.
        """
        return self._run(pairs, max_records)

    def _run(self, pairs, max_records: Optional[int]) -> int:
        observe = self.stage.observe
        emit = self._emit
        guards = self.guards
        checkpoint_every = self.checkpoint_every
        metrics = self.stage.metrics
        processed = 0
        guard_left = GUARD_STRIDE
        if guards.check(0) is not None:  # stop already requested
            return 0
        if checkpoint_every:
            # Cadence counts records since the last checkpoint, not the
            # cumulative total — a resume restored to a count that is
            # not a multiple of ``checkpoint_every`` must still write
            # its next checkpoint ``checkpoint_every`` records in.
            metrics.records_since_checkpoint = 0
        started = time.perf_counter()
        try:
            for index, (when, src, dst, proto, dport, flags) in pairs:
                events = observe(index, when, src, dst, proto, dport, flags)
                if events:
                    emit(events)
                processed += 1
                if (
                    checkpoint_every
                    and metrics.records_since_checkpoint >= checkpoint_every
                ):
                    self.on_checkpoint()
                    metrics.records_since_checkpoint = 0
                guard_left -= 1
                if guard_left <= 0:
                    guard_left = GUARD_STRIDE
                    if guards.check(GUARD_STRIDE) is not None:
                        break
                if max_records is not None and processed >= max_records:
                    break
        finally:
            metrics.process_seconds += time.perf_counter() - started
        return processed

    def _emit(self, events: List[DetectionEvent]) -> None:
        append = self.sink.append
        for event in events:
            append(event)
        self.stage.metrics.events_emitted += len(events)

    def _fold_source_drops(self, source, drops_before) -> None:
        """Account a source's shed-policy drops since this call began."""
        drops = getattr(source, "drops", None)
        if not drops:
            return
        delta = {
            reason: count - drops_before.get(reason, 0)
            for reason, count in drops.items()
        }
        self.stage.metrics.overload.record_drops(
            {r: c for r, c in delta.items() if c > 0}
        )
