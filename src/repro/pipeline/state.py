"""Bounded per-key evidence state for the Detect stage.

An online assembly must survive an unending feed from millions of keys
(subscriber lines at an ISP, addresses at an IXP), so per-key state
lives in a fixed-size table: least-recently
-active subscribers are evicted when the table is full (LRU), and
subscribers idle longer than a TTL are evicted as the event-time
watermark advances.  Eviction forgets evidence — a later re-appearance
of the subscriber starts from scratch and may re-emit a detection; the
counters make that trade-off observable.

Everything here is deterministic: eviction depends only on the record
stream (timestamps and arrival order), never on wall-clock, so a
resumed run behaves bit-identically to an uninterrupted one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.detector import SubscriberProgress

__all__ = ["EvidenceStateTable"]


class EvidenceStateTable:
    """LRU/TTL-evicted map of subscriber digest → evidence progress."""

    def __init__(
        self,
        max_subscribers: int,
        ttl_seconds: Optional[int] = None,
    ) -> None:
        if max_subscribers <= 0:
            raise ValueError("max_subscribers must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive when set")
        self.max_subscribers = max_subscribers
        self.ttl_seconds = ttl_seconds
        #: subscriber digest -> [last_active, SubscriberProgress],
        #: ordered least- to most-recently active.
        self._entries: "OrderedDict[str, List[object]]" = OrderedDict()
        self.evicted_lru = 0
        self.evicted_ttl = 0
        #: entries shed by a memory-pressure shrink (see :meth:`shrink`)
        self.evicted_pressure = 0
        #: true once :meth:`shrink` reduced the bound — overflow
        #: evictions are then *caused* by pressure, and charged to it
        self.pressure_reduced = False
        #: digests evicted under a pressure-reduced bound since the
        #: owner last drained this list (shed accounting)
        self.pressure_evicted: List[str] = []
        #: event-time high watermark driving TTL expiry
        self._clock = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def touch(self, digest: str, now: int) -> SubscriberProgress:
        """The subscriber's progress, created on first sight.

        Marks the subscriber most-recently active, advances the TTL
        clock, and evicts (TTL first, then LRU overflow) as needed.
        """
        if now > self._clock:
            self._clock = now
        entry = self._entries.get(digest)
        if entry is None:
            entry = [now, SubscriberProgress()]
            self._entries[digest] = entry
        else:
            entry[0] = max(int(entry[0]), now)  # type: ignore[call-overload]
            self._entries.move_to_end(digest)
        self.expire(self._clock)
        while len(self._entries) > self.max_subscribers:
            evicted, _ = self._entries.popitem(last=False)
            if self.pressure_reduced:
                self.evicted_pressure += 1
                self.pressure_evicted.append(evicted)
            else:
                self.evicted_lru += 1
        return entry[1]  # type: ignore[return-value]

    def expire(self, watermark: int) -> int:
        """Evict subscribers idle past the TTL at ``watermark``."""
        if self.ttl_seconds is None:
            return 0
        horizon = watermark - self.ttl_seconds
        evicted = 0
        # Entries are in last-active order, oldest first; stop at the
        # first survivor.
        while self._entries:
            digest, entry = next(iter(self._entries.items()))
            if int(entry[0]) >= horizon:  # type: ignore[call-overload]
                break
            del self._entries[digest]
            evicted += 1
        self.evicted_ttl += evicted
        return evicted

    def shrink(self, new_max: int) -> List[str]:
        """Reduce the table bound (memory pressure), never growing it.

        Least-recently-active entries beyond the new bound are evicted
        immediately; the evicted digests are returned so the caller
        can account exactly *whose* evidence was shed.  Shrinking is
        part of the table's state, so a checkpoint taken afterwards
        restores the reduced bound on resume.
        """
        if new_max < 1:
            raise ValueError("new_max must be >= 1")
        if new_max < self.max_subscribers:
            self.max_subscribers = new_max
            self.pressure_reduced = True
        evicted: List[str] = []
        while len(self._entries) > self.max_subscribers:
            digest, _entry = self._entries.popitem(last=False)
            evicted.append(digest)
        self.evicted_pressure += len(evicted)
        return evicted

    def progress_of(self, digest: str) -> Optional[SubscriberProgress]:
        """The subscriber's progress without touching LRU order."""
        entry = self._entries.get(digest)
        return entry[1] if entry is not None else None  # type: ignore[return-value]

    def progress_items(self):
        """Iterate ``(digest, progress)`` without touching LRU order.

        The rule-swap migration pass (:func:`repro.pipeline.swap.
        migrate_tables`) walks every entry through this; mutating the
        yielded progress objects is allowed, inserting or evicting
        while iterating is not.
        """
        for digest, entry in self._entries.items():
            yield digest, entry[1]

    def absorb(self, state: Dict[str, object]) -> int:
        """Merge a peer table's checkpointed entries into this one.

        The fleet rebalance path: when a worker is quarantined its last
        checkpoint's evidence migrates into the ring successor's live
        table.  Ring assignment keys every subscriber to exactly one
        worker, so the incoming digests are disjoint from the resident
        ones; a collision (possible only after an eviction re-keyed
        history) keeps the resident entry — the successor's view is
        newer.  Entries arrive in the peer's LRU order and are appended
        *before* re-sorting recency: absorbed evidence is older than
        anything the successor folded since the peer checkpointed, so
        it must sit on the eviction-first side of the order.  The TTL
        clock advances to the peer's so expiry never moves backwards.
        Returns the entries absorbed.
        """
        absorbed = 0
        resident = self._entries
        merged: "OrderedDict[str, List[object]]" = OrderedDict()
        for digest, last_active, progress in state["entries"]:  # type: ignore[union-attr]
            digest = str(digest)
            if digest in resident:
                continue
            merged[digest] = [
                int(last_active),
                SubscriberProgress.from_state(progress),
            ]
            absorbed += 1
        merged.update(resident)
        self._entries = merged
        self._clock = max(self._clock, int(state["clock"]))  # type: ignore[arg-type]
        return absorbed

    # -- checkpoint support -------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-serialisable snapshot preserving LRU order."""
        return {
            "max_subscribers": self.max_subscribers,
            "ttl_seconds": self.ttl_seconds,
            "clock": self._clock,
            "evicted_lru": self.evicted_lru,
            "evicted_ttl": self.evicted_ttl,
            "evicted_pressure": self.evicted_pressure,
            "pressure_reduced": self.pressure_reduced,
            "entries": [
                [digest, int(entry[0]), entry[1].to_state()]  # type: ignore[union-attr]
                for digest, entry in self._entries.items()
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "EvidenceStateTable":
        table = cls(
            max_subscribers=int(state["max_subscribers"]),  # type: ignore[arg-type]
            ttl_seconds=(
                int(state["ttl_seconds"])  # type: ignore[arg-type]
                if state["ttl_seconds"] is not None
                else None
            ),
        )
        table._clock = int(state["clock"])  # type: ignore[arg-type]
        table.evicted_lru = int(state["evicted_lru"])  # type: ignore[arg-type]
        table.evicted_ttl = int(state["evicted_ttl"])  # type: ignore[arg-type]
        table.evicted_pressure = int(state.get("evicted_pressure", 0))  # type: ignore[arg-type]
        table.pressure_reduced = bool(state.get("pressure_reduced", False))
        for digest, last_active, progress in state["entries"]:  # type: ignore[union-attr]
            table._entries[str(digest)] = [
                int(last_active),
                SubscriberProgress.from_state(progress),
            ]
        return table
