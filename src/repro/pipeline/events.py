"""Detection events and the sinks that persist them — the Sink stage.

A :class:`DetectionEvent` is emitted the moment a key's evidence
completes a rule chain.  The event log is the flow pipeline's *output
contract*: the stream path's kill/resume guarantee is stated over its
bytes, so the line format is canonical (compact JSON, sorted keys) and
sinks support truncation back to a checkpointed position — on resume
the engine truncates the log to the last checkpoint and re-emits,
byte-identical.  Every assembly (batch replay, stream, IXP tap) emits
through the same sinks, so downstream consumers read one format.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

__all__ = [
    "DetectionEvent",
    "MemoryEventSink",
    "JsonlEventSink",
    "read_event_log",
]


@dataclass(frozen=True)
class DetectionEvent:
    """One online detection: a rule chain completed for a subscriber."""

    subscriber: str  # anonymised line digest (never a raw identifier)
    class_name: str
    detected_at: int  # epoch seconds the chain first held
    record_index: int  # stream position of the completing record
    matched_domains: Tuple[str, ...] = ()

    def to_line(self) -> str:
        """Canonical one-line serialisation (stable across runs)."""
        return json.dumps(
            {
                "subscriber": self.subscriber,
                "class": self.class_name,
                "detected_at": self.detected_at,
                "record_index": self.record_index,
                "matched_domains": list(self.matched_domains),
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_line(cls, line: str) -> "DetectionEvent":
        data = json.loads(line)
        return cls(
            subscriber=data["subscriber"],
            class_name=data["class"],
            detected_at=int(data["detected_at"]),
            record_index=int(data["record_index"]),
            matched_domains=tuple(data["matched_domains"]),
        )


class MemoryEventSink:
    """In-process sink (tests, library use): events kept in a list."""

    def __init__(self) -> None:
        self.events: List[DetectionEvent] = []

    def append(self, event: DetectionEvent) -> None:
        self.events.append(event)

    def position(self) -> int:
        """Opaque resume position — here the event count."""
        return len(self.events)

    def truncate_to(self, position: int) -> None:
        del self.events[position:]

    def flush(self, sync: bool = False) -> None:
        pass  # interface parity with JsonlEventSink

    def close(self) -> None:
        pass


class JsonlEventSink:
    """Append-only JSONL event log with checkpoint-aligned truncation.

    Positions are byte offsets (the file is opened in binary mode so
    they are exact).  ``truncate_to`` discards any suffix written after
    a checkpoint — including a partial line from a crash mid-write —
    which is what makes resumed output byte-identical.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        resume: bool = False,
    ) -> None:
        """Open the log; ``resume=True`` preserves existing content.

        A resuming engine truncates the preserved log back to the
        checkpointed position itself (:meth:`truncate_to`) — the sink
        must not guess where that is.
        """
        self.path = pathlib.Path(path)
        resuming = resume and self.path.exists()
        self._fh = open(self.path, "r+b" if resuming else "wb")
        if resuming:
            self._fh.seek(0, os.SEEK_END)

    def append(self, event: DetectionEvent) -> None:
        self._fh.write(event.to_line().encode("utf-8") + b"\n")

    def position(self) -> int:
        """Byte offset after everything appended so far (flushed)."""
        self._fh.flush()
        return self._fh.tell()

    def truncate_to(self, position: int) -> None:
        self._fh.flush()
        self._fh.truncate(position)
        self._fh.seek(position)

    def flush(self, sync: bool = False) -> None:
        self._fh.flush()
        if sync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.flush()
        self._fh.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_event_log(path: Union[str, pathlib.Path]) -> List[DetectionEvent]:
    """Parse a JSONL event log back into events (analysis helper)."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(DetectionEvent.from_line(line))
    return events
