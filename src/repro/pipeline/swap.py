"""Hot-swap coordination: versioned rule generations and evidence
migration.

A running assembly detects against one *rule generation* — a
``(version, RuleSet, Hitlist)`` triple plus, for the columnar path, a
prebuilt :class:`~repro.pipeline.columnar.EndpointDayIndex`.  The rule
lifecycle (:mod:`repro.rules.lifecycle`) publishes new generations
while the pipeline runs; this module owns the mechanics of taking one
live without stopping ingest or corrupting evidence:

* **Staging** — :class:`PendingSwap` binds a prepared generation to an
  *event-time* activation boundary (:func:`next_activation`, the next
  hour after the staging watermark).  The Detect stage applies the
  swap at the first record whose timestamp reaches the boundary — in
  arrival order, so activation is a pure function of the record stream
  and the staged ``activate_at``, never of guard strides, chunk sizes,
  resume points, or wall-clock.  A kill/resume across a staged swap
  therefore replays bit-identically, and the per-record and columnar
  paths activate on exactly the same record.
* **Migration** — evidence accumulated under version ``k`` is folded
  into ``k+1`` by :func:`migrate_tables`: first-seen domain windows
  for domains still monitored survive untouched, windows for dropped
  domains are expired, and per-class satisfaction/emission state for
  classes dropped from the rule set is expired — each with its own
  counter, so nothing is silently mixed across generations.  When
  ``k+1`` equals ``k`` nothing is touched at all, which is what makes
  an identity swap provably bit-identical to a no-swap run.

Rebuilding the heavy structures (the columnar day index) belongs to
the refresher thread via :meth:`RuleGeneration.prepare`; the ingest
thread's apply is reference flips plus one bounded migration pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.detector import SubscriberProgress
    from repro.pipeline.state import EvidenceStateTable

__all__ = [
    "SECONDS_PER_HOUR",
    "RuleGeneration",
    "PendingSwap",
    "MigrationReport",
    "next_activation",
    "migrate_progress",
    "migrate_tables",
]

SECONDS_PER_HOUR = 3600


def next_activation(watermark: int) -> int:
    """The next hour boundary strictly after ``watermark``.

    Swaps activate at hour boundaries of *event time* so the boundary
    is stable across kills, resumes, and per-record/columnar path
    choice — everything that varies between runs over the same stream.
    """
    return (watermark // SECONDS_PER_HOUR + 1) * SECONDS_PER_HOUR


@dataclass(frozen=True)
class RuleGeneration:
    """One immutable, swappable rule version.

    ``index`` is the columnar path's prebuilt
    :class:`~repro.pipeline.columnar.EndpointDayIndex`; ``None`` means
    the columnar pipeline compiles lazily after the flip (correct, but
    the first chunk per day pays the compile).
    """

    version: int
    rules: RuleSet
    hitlist: Hitlist
    index: Optional[object] = field(default=None, compare=False)

    @classmethod
    def prepare(
        cls,
        version: int,
        rules: RuleSet,
        hitlist: Hitlist,
        build_index: bool = False,
    ) -> "RuleGeneration":
        """Assemble a generation, optionally precompiling the day index.

        Precompiling happens on the *caller's* thread (the refresher),
        so the ingest thread's swap is a reference flip.
        """
        index = None
        if build_index:
            # Imported lazily: repro.pipeline.columnar imports
            # repro.pipeline.flow, which imports this module.
            from repro.pipeline.columnar import EndpointDayIndex

            index = EndpointDayIndex(hitlist.daily_endpoints)
            for day in tuple(index.days()):
                index.day(day)
        return cls(version, rules, hitlist, index)


@dataclass(frozen=True)
class PendingSwap:
    """A staged generation waiting for its activation boundary."""

    generation: RuleGeneration
    #: first record with ``when >= activate_at`` triggers the swap
    activate_at: int


@dataclass
class MigrationReport:
    """What one evidence-migration pass kept and expired."""

    #: first-seen domain windows that survived into the new generation
    domains_kept: int = 0
    #: first-seen windows expired because the domain is gone from the
    #: new generation's monitored set
    domains_expired: int = 0
    #: per-class satisfaction/emission state expired because the class
    #: was dropped from the new rule set
    classes_expired: int = 0


def migrate_progress(
    progress: "SubscriberProgress",
    monitored: Iterable[str],
    rules: RuleSet,
    report: MigrationReport,
) -> None:
    """Migrate one subscriber's evidence to a new rule generation.

    Mutates ``progress`` in place: domains still monitored keep their
    first-seen windows verbatim (so surviving rules detect exactly as
    a fresh run with this evidence preloaded would); dropped domains
    and dropped classes are expired with counted reasons.  When the
    new generation equals the old, this touches nothing — the
    identity-swap bit-identity guarantee rests on that.
    """
    dropped_domains = [
        fqdn for fqdn in progress.first_seen if fqdn not in monitored
    ]
    for fqdn in dropped_domains:
        del progress.first_seen[fqdn]
    report.domains_expired += len(dropped_domains)
    report.domains_kept += len(progress.first_seen)
    dropped_classes = [
        name for name in progress.satisfied_at if name not in rules
    ]
    for name in dropped_classes:
        del progress.satisfied_at[name]
        progress.emitted.discard(name)
    report.classes_expired += len(dropped_classes)


def migrate_tables(
    tables: Iterable["EvidenceStateTable"], rules: RuleSet
) -> MigrationReport:
    """Migrate every table's evidence to ``rules``; the tally.

    LRU order, TTL clocks, and eviction counters are untouched —
    migration changes *what* each subscriber's evidence says, never
    the table bookkeeping around it.
    """
    monitored = rules.monitored_domains()
    report = MigrationReport()
    for table in tables:
        for _digest, progress in table.progress_items():
            migrate_progress(progress, monitored, rules, report)
    return report
