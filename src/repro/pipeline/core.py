"""Staged-run machinery shared by every entry point.

Before this layer existed the batch engine, the stream engine, and the
IXP fabric path each re-wired the same three runtime concerns — stop
tokens, memory governance, wall-clock deadlines — into their own loops.
:class:`GuardSet` bundles them behind one poll, and :class:`StagedRun`
gives a multi-stage batch run (plan → simulate → aggregate) timed
stages plus guarded task admission, so the accounting every metrics
document carries (``stop_reason``, ``partial``, per-stage seconds) is
produced by one implementation.

The polling contract is shared with the flow hot loop
(:mod:`repro.pipeline.flow`): guards are checked every
:data:`GUARD_STRIDE` records, cheap enough to leave the per-record cost
at one integer decrement while a SIGTERM still drains within a
fraction of a millisecond of stream time.  The columnar loop
(:mod:`repro.pipeline.columnar`) polls the same guards once per decoded
chunk instead — coarser by ``chunk_size`` records, same attribution.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, List, Optional, TypeVar

from repro.runtime.deadline import DeadlineBudget
from repro.runtime.memory import MemoryGovernor
from repro.runtime.overload import OverloadMetrics
from repro.runtime.shutdown import StopToken, current_token

__all__ = ["GUARD_STRIDE", "GuardSet", "StagedRun"]

#: Records between runtime-guard polls (stop token, deadline, memory
#: governor) on every pipeline hot loop.
GUARD_STRIDE = 64

_Task = TypeVar("_Task")


class GuardSet:
    """StopToken + MemoryGovernor + DeadlineBudget polled as one.

    ``check(records)`` is the single guard poll every pipeline loop
    uses: it ticks the memory governor (invoking ``on_pressure`` when a
    shed is due), then returns the stop reason — ``"deadline"``, a
    signal reason — once ingest must end, recording it in the shared
    :class:`~repro.runtime.overload.OverloadMetrics` so a stopped run
    is always attributable.  ``None`` means keep going.

    ``on_pressure`` defaults to a plain garbage-collection pass; an
    assembly that owns sheddable state (the stream engine's table
    ladder) replaces it with its own shed ladder.
    """

    def __init__(
        self,
        stop_token: Optional[StopToken] = None,
        governor: Optional[MemoryGovernor] = None,
        deadline: Optional[DeadlineBudget] = None,
        overload: Optional[OverloadMetrics] = None,
        on_pressure: Optional[Callable[[MemoryGovernor], None]] = None,
    ) -> None:
        self._stop_token = stop_token
        self.governor = governor
        self.deadline = deadline
        self.overload = (
            overload if overload is not None else OverloadMetrics()
        )
        self.on_pressure = on_pressure
        if governor is not None:
            self.overload = governor.metrics
        if deadline is not None:
            self.overload.deadline_seconds = deadline.seconds

    @classmethod
    def build(
        cls,
        memory_budget: Optional[int] = None,
        deadline: Optional[float] = None,
        stop_token: Optional[StopToken] = None,
        overload: Optional[OverloadMetrics] = None,
        on_pressure: Optional[Callable[[MemoryGovernor], None]] = None,
    ) -> "GuardSet":
        """Construct governor/deadline guards from plain config values."""
        governor = (
            MemoryGovernor(memory_budget, metrics=overload)
            if memory_budget is not None
            else None
        )
        budget = (
            DeadlineBudget(deadline) if deadline is not None else None
        )
        return cls(
            stop_token=stop_token,
            governor=governor,
            deadline=budget,
            overload=overload,
            on_pressure=on_pressure,
        )

    @property
    def stop_token(self) -> Optional[StopToken]:
        """The explicit token, else the active coordinator's."""
        if self._stop_token is not None:
            return self._stop_token
        return current_token()

    @property
    def stopped(self) -> bool:
        """A guard (signal or deadline) has ended ingest."""
        return self.overload.stop_reason is not None

    def note_stop(self, reason: str) -> None:
        """Record the first stop reason (later ones don't overwrite)."""
        if self.overload.stop_reason is None:
            self.overload.stop_reason = reason

    def check(self, records: int = GUARD_STRIDE) -> Optional[str]:
        """Poll all guards; the stop reason when ingest must end."""
        governor = self.governor
        if governor is not None and governor.tick(records):
            if self.on_pressure is not None:
                self.on_pressure(governor)
            else:
                governor.collect_garbage()
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            self.note_stop(deadline.reason)
            return deadline.reason
        token = self.stop_token
        if token is not None and token.stop_requested():
            reason = token.reason or "stop"
            self.note_stop(reason)
            return reason
        return None


class StagedRun:
    """Timed stages and guarded task admission for a batch run.

    A batch entry point brackets each conceptual stage with
    :meth:`stage` (wall time lands in :attr:`seconds`) and feeds its
    work items through :meth:`admit`, which stops yielding the moment a
    guard fires: the remaining items are counted in
    :attr:`surrendered`, the run is marked ``partial`` in the overload
    section, and every completed item keeps its result — the drain
    semantics all entry points share.
    """

    def __init__(self, guards: Optional[GuardSet] = None) -> None:
        self.guards = guards if guards is not None else GuardSet()
        self.seconds: Dict[str, float] = {}
        #: tasks never started because a guard stopped admission
        self.surrendered = 0

    @contextmanager
    def stage(self, title: str) -> Iterator[None]:
        """Time one named stage (additive across re-entries)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[title] = self.seconds.get(title, 0.0) + (
                time.perf_counter() - started
            )

    def admit(self, tasks: Iterable[_Task]) -> Iterator[_Task]:
        """Yield tasks until a guard stops admission.

        The governor is sampled once per admitted task (a batch task is
        coarse next to a flow record), so pressure acts between tasks
        rather than mid-shard.
        """
        guards = self.guards
        governor = guards.governor
        pending: List[_Task] = list(tasks)
        for position, task in enumerate(pending):
            stride = (
                governor.sample_every if governor is not None
                else GUARD_STRIDE
            )
            if guards.check(stride) is not None:
                self.surrendered += len(pending) - position
                guards.overload.partial = True
                return
            yield task
