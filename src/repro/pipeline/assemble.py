"""Ready-made pipeline assemblies.

An *assembly* is a :class:`~repro.pipeline.flow.FlowPipeline` wired
with a concrete keying, Detect stage, sink, and guard set.  The heavy
entry points own their assemblies — the stream engine adds
checkpoint/resume around a streaming assembly, the IXP path
(:mod:`repro.ixp.detect`) keys by address — while this module provides
the two generic ones library code and the CLI use directly:

* :func:`streaming_assembly` — online detection into an event sink,
  bounded state, no checkpointing;
* :func:`batch_assembly` / :func:`run_flow_detection` — offline
  detection over a flow file or record iterable, reproducing the
  batch :class:`~repro.core.detector.FlowDetector` result through the
  shared stage graph.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import IO, Iterable, List, Optional, Union

from repro.core.detector import Detection
from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet
from repro.netflow.parse import ColumnarDecodeStage, chunks_from_records
from repro.netflow.records import FlowRecord
from repro.netflow.replay import iter_flow_tuples
from repro.pipeline.columnar import ColumnarFlowPipeline
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import GuardSet
from repro.pipeline.flow import (
    BatchDetectStage,
    FlowPipeline,
    StreamingDetectStage,
    SubscriberKeying,
)
from repro.pipeline.metrics import StreamMetrics
from repro.pipeline.state import EvidenceStateTable
from repro.resilience.quarantine import QuarantineSink

__all__ = [
    "streaming_assembly",
    "batch_assembly",
    "run_flow_detection",
    "FlowDetectionResult",
]


def _metrics_for(config: PipelineConfig) -> StreamMetrics:
    return StreamMetrics(
        workers=config.state.shards,
        max_subscribers=config.state.max_keys,
        ttl_seconds=config.state.ttl_seconds,
        checkpoint_every=config.checkpoint.every,
        threshold=config.detection.threshold,
    )


def streaming_assembly(
    rules: RuleSet,
    hitlist: Hitlist,
    config: Optional[PipelineConfig] = None,
    sink=None,
    guards: Optional[GuardSet] = None,
    keying=None,
) -> FlowPipeline:
    """An online pipeline: bounded state, events into ``sink``.

    The Detect stage holds one
    :class:`~repro.pipeline.state.EvidenceStateTable` per keying shard;
    ``keying`` defaults to salted subscriber digests.  Checkpointing is
    the stream engine's concern (it wraps this shape with persistence);
    here ``checkpoint.every`` only sizes the metrics document.
    """
    config = config or PipelineConfig()
    if keying is None:
        keying = SubscriberKeying(
            salt=config.detection.salt, shards=config.state.shards
        )
    tables = [
        EvidenceStateTable(
            config.state.per_shard, config.state.ttl_seconds
        )
        for _ in range(keying.shards)
    ]
    stage = StreamingDetectStage(
        rules,
        hitlist,
        keying,
        tables,
        threshold=config.detection.threshold,
        require_established=config.detection.require_established,
        metrics=_metrics_for(config),
    )
    if guards is None:
        guards = config.build_guards(on_pressure=lambda _: keying.forget())
    return FlowPipeline(stage, sink=sink, guards=guards)


def batch_assembly(
    rules: RuleSet,
    hitlist: Hitlist,
    config: Optional[PipelineConfig] = None,
    guards: Optional[GuardSet] = None,
    keying=None,
) -> FlowPipeline:
    """An offline pipeline: unbounded evidence, replayed on demand.

    The stage accumulates and :meth:`~repro.pipeline.flow.
    BatchDetectStage.detections` replays — batch semantics identical to
    :class:`~repro.core.detector.FlowDetector` for the same flows.
    """
    config = config or PipelineConfig()
    if keying is None:
        keying = SubscriberKeying(
            salt=config.detection.salt, shards=config.state.shards
        )
    stage = BatchDetectStage(
        rules,
        hitlist,
        keying,
        threshold=config.detection.threshold,
        require_established=config.detection.require_established,
        metrics=_metrics_for(config),
    )
    if guards is None:
        guards = config.build_guards(on_pressure=lambda _: keying.forget())
    return FlowPipeline(stage, guards=guards)


@dataclass
class FlowDetectionResult:
    """Outcome of one offline :func:`run_flow_detection` run."""

    detections: List[Detection]
    metrics: StreamMetrics

    @property
    def flows_seen(self) -> int:
        return self.metrics.records_processed

    @property
    def flows_matched(self) -> int:
        return self.metrics.flows_matched

    @property
    def flows_rejected_spoof(self) -> int:
        return self.metrics.flows_rejected_spoof


def run_flow_detection(
    rules: RuleSet,
    hitlist: Hitlist,
    source: Union[str, pathlib.Path, IO[str], Iterable[FlowRecord]],
    config: Optional[PipelineConfig] = None,
    guards: Optional[GuardSet] = None,
    keying=None,
) -> FlowDetectionResult:
    """Offline detection over a flow file or record iterable.

    A path (or text stream) takes the tuple fast path —
    :func:`~repro.netflow.replay.iter_flow_tuples`, no record
    construction; any other iterable is folded record by record.
    With ``config.columnar.enabled`` both source shapes run the
    vectorized :class:`~repro.pipeline.columnar.ColumnarFlowPipeline`
    instead — identical detections, metrics, and quarantine output.
    Subscriber identity is the source address, matching the CLI
    ``detect`` command and the batch detector convention.
    """
    config = config or PipelineConfig()
    pipeline = batch_assembly(
        rules, hitlist, config, guards=guards, keying=keying
    )
    quarantine = (
        QuarantineSink(config.quarantine.directory)
        if config.quarantine.directory is not None
        else None
    )
    is_file = isinstance(source, (str, pathlib.Path)) or hasattr(
        source, "read"
    )
    if config.columnar.enabled:
        columnar = ColumnarFlowPipeline(
            pipeline.stage, sink=pipeline.sink, guards=pipeline.guards
        )
        if is_file:
            decode = ColumnarDecodeStage(
                config.columnar.chunk_size, quarantine=quarantine
            )
            columnar.run_chunks(decode.iter_chunks(source))
        else:
            columnar.run_chunks(
                chunks_from_records(source, config.columnar.chunk_size)
            )
    elif is_file:
        pipeline.run_tuples(
            iter_flow_tuples(source, quarantine=quarantine)
        )
    else:
        pipeline.run_records(enumerate(source))
    stage = pipeline.stage
    metrics = stage.metrics
    if quarantine is not None:
        metrics.records_quarantined = quarantine.total
        metrics.quarantine_reasons = dict(quarantine.counts)
    return FlowDetectionResult(
        detections=stage.detections(), metrics=metrics
    )
