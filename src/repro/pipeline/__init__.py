"""The staged flow pipeline every detection entry point assembles.

One stage graph — ``Source → Decode → Validate → Detect → Sink`` —
implemented once, assembled three ways:

* the **batch wild-ISP engine** (:mod:`repro.engine`) runs plan →
  simulate → aggregate stages through :class:`StagedRun` with guarded
  shard admission;
* the **stream engine** (:mod:`repro.stream`) wraps a
  :class:`StreamingDetectStage` pipeline with checkpoint/resume;
* the **IXP path** (:mod:`repro.ixp`) keys by address and keeps the
  TCP-established anti-spoofing filter on in the Validate stage.

Each assembly can also run the Decode/Validate/Detect stages
*columnar*: :class:`ColumnarFlowPipeline` folds numpy column chunks
(``FlowChunk``) with vectorized filtering and endpoint lookup, staying
record-for-record equivalent to the per-record path — the equivalence
the ``tests/test_columnar.py`` suite pins.

The layering contract is directional: those three packages import
:mod:`repro.pipeline`, never each other, and this package imports none
of them (``tools/check_layering.py`` enforces it in CI).
"""

from repro.pipeline.assemble import (
    FlowDetectionResult,
    batch_assembly,
    run_flow_detection,
    streaming_assembly,
)
from repro.pipeline.columnar import ColumnarFlowPipeline, EndpointDayIndex
from repro.pipeline.config import (
    CheckpointConfig,
    ColumnarConfig,
    DetectionConfig,
    GuardConfig,
    PipelineConfig,
    QuarantineConfig,
    RulesConfig,
    StateConfig,
)
from repro.pipeline.core import GUARD_STRIDE, GuardSet, StagedRun
from repro.pipeline.events import (
    DetectionEvent,
    JsonlEventSink,
    MemoryEventSink,
    read_event_log,
)
from repro.pipeline.flow import (
    AddressKeying,
    BatchDetectStage,
    FlowDetectStage,
    FlowPipeline,
    StreamingDetectStage,
    SubscriberKeying,
)
from repro.pipeline.metrics import (
    METRICS_SCHEMA,
    EngineMetrics,
    ShardMetrics,
    StreamMetrics,
)
from repro.pipeline.state import EvidenceStateTable
from repro.pipeline.swap import (
    MigrationReport,
    PendingSwap,
    RuleGeneration,
    migrate_progress,
    migrate_tables,
    next_activation,
)

__all__ = [
    # core machinery
    "GUARD_STRIDE",
    "GuardSet",
    "StagedRun",
    # configuration
    "PipelineConfig",
    "DetectionConfig",
    "StateConfig",
    "CheckpointConfig",
    "QuarantineConfig",
    "GuardConfig",
    "ColumnarConfig",
    "RulesConfig",
    # live rule swap
    "RuleGeneration",
    "PendingSwap",
    "MigrationReport",
    "migrate_progress",
    "migrate_tables",
    "next_activation",
    # stages and driver
    "FlowPipeline",
    "FlowDetectStage",
    "StreamingDetectStage",
    "BatchDetectStage",
    "SubscriberKeying",
    "AddressKeying",
    "ColumnarFlowPipeline",
    "EndpointDayIndex",
    # state / events
    "EvidenceStateTable",
    "DetectionEvent",
    "MemoryEventSink",
    "JsonlEventSink",
    "read_event_log",
    # assemblies
    "streaming_assembly",
    "batch_assembly",
    "run_flow_detection",
    "FlowDetectionResult",
    # metrics
    "METRICS_SCHEMA",
    "EngineMetrics",
    "ShardMetrics",
    "StreamMetrics",
]
