"""Detection-level determination — Section 4.3.1.

Given the surviving per-class domain sets, derive the granularity at
which each class is distinguishable and validate the properties the
paper relies on to avoid false positives:

* sibling classes (no ancestor relation) must have *differing* domain
  sets — the paper: "we also try to avoid false positives by ensuring
  that the domain sets per device differ";
* a child class must monitor strictly more information than its parent
  (a superset, or a disjoint specialised set gated on the parent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.rules import RuleSet
from repro.devices.catalog import DeviceCatalog

__all__ = [
    "LevelConflict",
    "coarser_level",
    "determine_levels",
    "infer_levels",
    "validate_distinguishability",
]


@dataclass(frozen=True)
class LevelConflict:
    """A pair of classes whose rules cannot be told apart."""

    first: str
    second: str
    reason: str


def determine_levels(
    catalog: DeviceCatalog, rules: RuleSet
) -> Dict[str, str]:
    """Detection level per surviving class (from the class structure)."""
    return {
        rule.class_name: catalog.detection_class(rule.class_name).level
        for rule in rules
    }


def infer_levels(catalog: DeviceCatalog, rules: RuleSet) -> Dict[str, str]:
    """Infer the *finest supportable* detection level per class (§4.3.1).

    The paper's decision procedure, mechanised: a rule whose member
    products span several manufacturers — or whose backend is an open
    IoT platform — can at best identify the shared *platform*; one
    covering several products of a single manufacturer at best the
    *manufacturer*; one covering a single product can go down to the
    *product*.  A class may legitimately be declared *coarser* than
    this bound (the paper keeps single-product vendors at manufacturer
    level when it lacks side information about product-specific
    domains), but never finer — see :func:`validate_levels`.
    """
    from repro.devices.catalog import (
        LEVEL_MANUFACTURER,
        LEVEL_PLATFORM,
        LEVEL_PRODUCT,
    )

    inferred: Dict[str, str] = {}
    for rule in rules:
        spec = catalog.detection_class(rule.class_name)
        manufacturers = {
            catalog.product(member).manufacturer
            for member in spec.member_products
        }
        if len(manufacturers) > 1 or spec.platform is not None:
            inferred[rule.class_name] = LEVEL_PLATFORM
        elif len(spec.member_products) > 1:
            inferred[rule.class_name] = LEVEL_MANUFACTURER
        else:
            inferred[rule.class_name] = LEVEL_PRODUCT
    return inferred


#: Granularity order: lower rank = coarser claim.
_LEVEL_RANK = {"Platform": 0, "Manufacturer": 1, "Product": 2}

_RANK_LEVEL = {rank: level for level, rank in _LEVEL_RANK.items()}


def coarser_level(level: str) -> str:
    """The next-coarser granularity claim (Product → Manufacturer →
    Platform; Platform is already the coarsest and stays put).

    Used by graceful degradation: a rule whose dedicated-infrastructure
    evidence could not be verified (passive-DNS outage) must not claim
    a finer identification than its remaining evidence supports.
    """
    rank = _LEVEL_RANK.get(level)
    if rank is None:
        raise ValueError(f"unknown level {level!r}")
    return _RANK_LEVEL[max(0, rank - 1)]


def validate_levels(
    catalog: DeviceCatalog, rules: RuleSet
) -> List[str]:
    """Classes whose declared level is *finer* than structure supports.

    Claiming a finer level than the backend structure allows would be a
    misattribution (e.g. calling an open-platform rule a product rule);
    claiming a coarser one is merely conservative.
    """
    finest = infer_levels(catalog, rules)
    declared = determine_levels(catalog, rules)
    return [
        class_name
        for class_name in declared
        if _LEVEL_RANK[declared[class_name]]
        > _LEVEL_RANK[finest[class_name]]
    ]


def _related(rules: RuleSet, first: str, second: str) -> bool:
    return (
        first in rules.ancestors(second)
        or second in rules.ancestors(first)
    )


def validate_distinguishability(rules: RuleSet) -> List[LevelConflict]:
    """Return every pair of unrelated classes with identical or fully
    contained rule-domain sets (candidates for misclassification)."""
    conflicts: List[LevelConflict] = []
    names = sorted(rules.class_names())
    domain_sets: Dict[str, Set[str]] = {
        name: set(rules.rule(name).domains) for name in names
    }
    for index, first in enumerate(names):
        for second in names[index + 1 :]:
            if _related(rules, first, second):
                continue
            first_set, second_set = domain_sets[first], domain_sets[second]
            if first_set == second_set:
                conflicts.append(
                    LevelConflict(first, second, "identical domain sets")
                )
            elif first_set <= second_set or second_set <= first_set:
                conflicts.append(
                    LevelConflict(
                        first, second,
                        "one rule's domains contain the other's",
                    )
                )
    return conflicts
