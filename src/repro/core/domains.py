"""Domain classification — Section 4.1.

The paper sorts every domain observed in the ground-truth traffic into:

* **Primary** — registered to an IoT device manufacturer or IoT service
  operator;
* **Support** — registered to third parties but offering complementary
  services for IoT devices (the ``samsung-*.whisk.com`` example);
* **Generic** — generic service providers heavily used by non-IoT
  clients (NTP pools, video CDNs, trackers); discarded.

The paper did this with pattern matching plus manual inspection of
registrant websites.  We mechanise the same decision procedure over the
simulated whois registry and the ground-truth contact sets: a domain is
Support when a third party registers it but only IoT devices contact it
(or its label carries a vendor tag), Primary when the registrant is an
IoT vendor/platform, Generic otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Set

from repro.dns.names import normalize, second_level_domain
from repro.scenario import WhoisRegistry

__all__ = [
    "ROLE_PRIMARY",
    "ROLE_SUPPORT",
    "ROLE_GENERIC",
    "DomainClassification",
    "classify_domain",
    "classify_domains",
]

ROLE_PRIMARY = "primary"
ROLE_SUPPORT = "support"
ROLE_GENERIC = "generic"

#: Whois registrant kinds that immediately mark a domain Generic.
_GENERIC_KINDS = frozenset({"generic", "cdn", "cloud"})
_PRIMARY_KINDS = frozenset({"iot_vendor", "iot_platform"})


@dataclass(frozen=True)
class DomainClassification:
    """The classification verdict for one observed domain."""

    fqdn: str
    role: str
    registrant: Optional[str]
    reason: str


def _vendor_tagged(fqdn: str, vendor_slugs: Set[str]) -> bool:
    """True if any label of ``fqdn`` below the SLD carries a vendor tag
    (the ``samsung-*.whisk.com`` pattern)."""
    sld = second_level_domain(fqdn)
    prefix = fqdn[: -len(sld)].rstrip(".")
    if not prefix:
        return False
    for label in prefix.split("."):
        for slug in vendor_slugs:
            if label == slug or label.startswith(f"{slug}-"):
                return True
    return False


def classify_domain(
    fqdn: str,
    whois: WhoisRegistry,
    vendor_slugs: Set[str],
    contacted_only_by_iot: bool,
) -> DomainClassification:
    """Classify one domain.

    ``vendor_slugs`` are lowercase manufacturer tags derived from the
    testbed inventory; ``contacted_only_by_iot`` is the ground-truth
    observation that no non-IoT client was seen using the domain.
    """
    fqdn = normalize(fqdn)
    entry = whois.lookup(fqdn)
    if entry is None:
        # Unknown registrant: fall back to traffic evidence.
        if contacted_only_by_iot:
            return DomainClassification(
                fqdn, ROLE_SUPPORT, None,
                "unknown registrant, IoT-only traffic",
            )
        return DomainClassification(
            fqdn, ROLE_GENERIC, None, "unknown registrant"
        )
    registrant, kind = entry
    if kind in _PRIMARY_KINDS:
        return DomainClassification(
            fqdn, ROLE_PRIMARY, registrant,
            f"registered to IoT operator {registrant!r}",
        )
    if kind in _GENERIC_KINDS:
        return DomainClassification(
            fqdn, ROLE_GENERIC, registrant,
            f"generic service provider {registrant!r}",
        )
    # Third-party registrant: Support only with vendor tagging or
    # exclusive IoT usage.
    if _vendor_tagged(fqdn, vendor_slugs):
        return DomainClassification(
            fqdn, ROLE_SUPPORT, registrant,
            "third party with vendor-tagged label",
        )
    if contacted_only_by_iot:
        return DomainClassification(
            fqdn, ROLE_SUPPORT, registrant,
            "third party contacted only by IoT devices",
        )
    return DomainClassification(
        fqdn, ROLE_GENERIC, registrant, "third party with mixed clientele"
    )


def classify_domains(
    fqdns: Iterable[str],
    whois: WhoisRegistry,
    vendor_names: Iterable[str],
    iot_only_domains: Optional[Set[str]] = None,
) -> Dict[str, DomainClassification]:
    """Classify a collection of observed domains.

    ``iot_only_domains`` lists domains for which ground truth showed
    exclusively IoT clients; defaults to treating every input as
    IoT-only (the testbed generates only IoT traffic).
    """
    vendor_slugs = {
        "".join(ch for ch in name.lower() if ch.isalnum())
        for name in vendor_names
    }
    results: Dict[str, DomainClassification] = {}
    for fqdn in fqdns:
        fqdn = normalize(fqdn)
        iot_only = (
            True if iot_only_domains is None else fqdn in iot_only_domains
        )
        results[fqdn] = classify_domain(fqdn, whois, vendor_slugs, iot_only)
    return results
