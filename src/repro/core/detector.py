"""Rule evaluation over sampled flow records.

Two evaluation styles mirror the paper's analyses:

* :class:`FlowDetector` accumulates evidence *cumulatively* per
  subscriber and reports, for each detection class, the earliest moment
  its rule (and every ancestor's) was satisfied — the Section 5
  time-to-detection crosscheck.
* :class:`WindowedDetector` evaluates rules independently within
  aggregation windows (an hour, a day), which is how the in-the-wild
  Figures 11-14 count "subscriber lines with IoT activity per
  hour/day".

Subscriber identifiers are anonymised through :func:`anonymize_subscriber`
before they are stored, matching the paper's ethics setup — raw user
addresses never persist in analysis state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet
from repro.netflow.records import PROTO_TCP, FlowRecord
from repro.timeutil import STUDY_START, day_index

__all__ = [
    "anonymize_subscriber",
    "Detection",
    "SubscriberProgress",
    "FlowDetector",
    "WindowedDetector",
]


def anonymize_subscriber(identifier: int, salt: str = "haystack") -> str:
    """One-way hash of a subscriber identifier (paper Section 2.1)."""
    digest = hashlib.blake2b(
        f"{salt}:{identifier}".encode(), digest_size=8
    ).hexdigest()
    return digest


class _AnonymizerCache:
    """Memoised :func:`anonymize_subscriber` keyed by raw identifier.

    Both detectors hash every observed flow's subscriber id; on the
    wild-ISP flow volumes that made blake2b a per-flow hot spot.  The
    cache is bounded by the subscriber population, never the flow count.
    """

    def __init__(self, salt: str = "haystack") -> None:
        self._salt = salt
        self._digests: Dict[int, str] = {}

    def __call__(self, identifier: int) -> str:
        """The cached digest for ``identifier`` (computed on first use)."""
        digest = self._digests.get(identifier)
        if digest is None:
            digest = anonymize_subscriber(identifier, self._salt)
            self._digests[identifier] = digest
        return digest


@dataclass(frozen=True)
class Detection:
    """A claimed detection of one class at one subscriber."""

    subscriber: str
    class_name: str
    detected_at: int  # epoch seconds when the rule chain first held
    matched_domains: Tuple[str, ...]


class SubscriberProgress:
    """Incremental per-subscriber rule evaluation.

    The shared evaluation core of the batch :class:`FlowDetector` and
    the streaming :mod:`repro.stream` path: evidence is fed one
    observation at a time; each call reports the (class, detected_at)
    pairs that observation completes, where ``detected_at`` is the
    instant the class's own rule *and* every ancestor's rule first
    held — the Section 5 time-to-detection semantics.

    Fed evidence in non-decreasing time order, the emitted events are
    exactly the batch detector's :meth:`FlowDetector.detections` for the
    same subscriber.  Out-of-order arrivals are tolerated: an earlier
    first-seen time is folded into the evidence (min-merge, matching the
    batch store), but satisfaction times already recorded are not
    revised — the streaming path trades retroactive corrections for
    bounded state.
    """

    __slots__ = ("first_seen", "satisfied_at", "emitted")

    def __init__(self) -> None:
        #: fqdn -> earliest observation timestamp
        self.first_seen: Dict[str, int] = {}
        #: class name -> timestamp its own rule first held
        self.satisfied_at: Dict[str, int] = {}
        #: classes whose full ancestor chain has been reported
        self.emitted: Set[str] = set()

    def observe(
        self, rules: RuleSet, threshold: float, fqdn: str, when: int
    ) -> List[Tuple[str, int]]:
        """Fold one evidence observation; return newly detected classes.

        Returns ``[(class_name, detected_at), ...]`` for every class
        whose rule chain is completed by this observation (possibly via
        an ancestor satisfied only now).
        """
        previous = self.first_seen.get(fqdn)
        if previous is not None:
            if when < previous:  # out-of-order arrival: min-merge
                self.first_seen[fqdn] = when
            return []  # evidence *set* unchanged, nothing new to check
        self.first_seen[fqdn] = when
        seen = self.first_seen.keys()
        changed = False
        for rule in rules:
            if rule.class_name in self.satisfied_at:
                continue
            if fqdn not in rule.domains:
                continue
            if rule.satisfied(seen, threshold):
                self.satisfied_at[rule.class_name] = when
                changed = True
        if not changed:
            return []
        return self._completed_chains(rules)

    def _completed_chains(self, rules: RuleSet) -> List[Tuple[str, int]]:
        """Classes whose own rule and every ancestor's now hold."""
        events: List[Tuple[str, int]] = []
        for class_name, own_time in self.satisfied_at.items():
            if class_name in self.emitted:
                continue
            detected_at = own_time
            complete = True
            for ancestor in rules.ancestors(class_name):
                ancestor_time = self.satisfied_at.get(ancestor)
                if ancestor_time is None:
                    complete = False
                    break
                if ancestor_time > detected_at:
                    detected_at = ancestor_time
            if complete:
                self.emitted.add(class_name)
                events.append((class_name, detected_at))
        return events

    # -- checkpoint support -------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-serialisable snapshot (see :mod:`repro.stream`)."""
        return {
            "first_seen": dict(self.first_seen),
            "satisfied_at": dict(self.satisfied_at),
            "emitted": sorted(self.emitted),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "SubscriberProgress":
        progress = cls()
        progress.first_seen = {
            str(fqdn): int(when)
            for fqdn, when in state["first_seen"].items()  # type: ignore[union-attr]
        }
        progress.satisfied_at = {
            str(name): int(when)
            for name, when in state["satisfied_at"].items()  # type: ignore[union-attr]
        }
        progress.emitted = set(state["emitted"])  # type: ignore[arg-type]
        return progress


class _EvidenceStore:
    """Per-subscriber first-seen timestamps of hitlist domains."""

    def __init__(self) -> None:
        self._first_seen: Dict[str, Dict[str, int]] = {}

    def add(self, subscriber: str, fqdn: str, when: int) -> None:
        domains = self._first_seen.setdefault(subscriber, {})
        previous = domains.get(fqdn)
        if previous is None or when < previous:
            domains[fqdn] = when

    def subscribers(self) -> List[str]:
        return list(self._first_seen)

    def evidence(self, subscriber: str) -> Dict[str, int]:
        return self._first_seen.get(subscriber, {})


class FlowDetector:
    """Cumulative-evidence detector over sampled flow records.

    ``require_established`` enables the IXP anti-spoofing filter: TCP
    flows must show evidence of an established connection before they
    count; non-TCP flows are accepted (the paper's filter targets TCP
    SYN floods).
    """

    def __init__(
        self,
        rules: RuleSet,
        hitlist: Hitlist,
        threshold: float = 0.4,
        require_established: bool = False,
    ) -> None:
        self.rules = rules
        self.hitlist = hitlist
        self.threshold = threshold
        self.require_established = require_established
        self._store = _EvidenceStore()
        self._anonymize = _AnonymizerCache()
        self.flows_seen = 0
        self.flows_matched = 0
        self.flows_rejected_spoof = 0

    def observe_flow(self, subscriber: int, flow: FlowRecord) -> Optional[str]:
        """Fold one exported flow into the evidence store.

        Returns the matched hitlist domain, if any.  ``subscriber`` is
        the raw line identifier; it is anonymised before storage.
        """
        self.flows_seen += 1
        if (
            self.require_established
            and flow.protocol == PROTO_TCP
            and not flow.has_established_evidence()
        ):
            self.flows_rejected_spoof += 1
            return None
        when = flow.first_switched
        fqdn = self.hitlist.lookup(
            day_index(when), flow.dst_ip, flow.dst_port
        )
        if fqdn is None:
            return None
        self.flows_matched += 1
        self._store.add(self._anonymize(subscriber), fqdn, when)
        return fqdn

    def observe_evidence(
        self, subscriber: int, fqdn: str, when: int
    ) -> None:
        """Directly record domain evidence (pre-attributed flows)."""
        self._store.add(self._anonymize(subscriber), fqdn, when)

    def detections(
        self, threshold: Optional[float] = None
    ) -> List[Detection]:
        """Earliest detection per (subscriber, class).

        Evidence is replayed in time order; a class is detected at the
        first instant its own rule and every ancestor's rule hold.
        """
        threshold = self.threshold if threshold is None else threshold
        results: List[Detection] = []
        for subscriber in self._store.subscribers():
            evidence = self._store.evidence(subscriber)
            results.extend(
                self._detections_for(subscriber, evidence, threshold)
            )
        results.sort(
            key=lambda item: (
                item.detected_at,
                item.class_name,
                item.subscriber,
            )
        )
        return results

    def _detections_for(
        self,
        subscriber: str,
        evidence: Dict[str, int],
        threshold: float,
    ) -> List[Detection]:
        ordered = sorted(
            evidence.items(), key=lambda item: (item[1], item[0])
        )
        progress = SubscriberProgress()
        emitted: List[Tuple[str, int]] = []
        for fqdn, when in ordered:
            emitted.extend(
                progress.observe(self.rules, threshold, fqdn, when)
            )
        seen = set(evidence)
        return [
            Detection(
                subscriber=subscriber,
                class_name=class_name,
                detected_at=detected_at,
                matched_domains=self.rules.rule(
                    class_name
                ).matched_domains(seen),
            )
            for class_name, detected_at in emitted
        ]


class WindowedDetector:
    """Window-scoped rule evaluation (hour/day aggregation).

    Evidence is bucketed by ``window_seconds``; each window is evaluated
    independently, so a class needing many domains may be detectable in
    a daily window but not in any hourly one — the effect behind the
    paper's Figure 11(a) vs 11(b) gap.
    """

    def __init__(
        self,
        rules: RuleSet,
        hitlist: Hitlist,
        window_seconds: int,
        threshold: float = 0.4,
        origin: int = STUDY_START,
        require_established: bool = False,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.rules = rules
        self.hitlist = hitlist
        self.window_seconds = window_seconds
        self.threshold = threshold
        self.origin = origin
        self.require_established = require_established
        #: window index -> subscriber -> set of seen domains
        self._windows: Dict[int, Dict[str, Set[str]]] = {}
        self._anonymize = _AnonymizerCache()
        self.flows_seen = 0
        self.flows_matched = 0
        self.flows_rejected_spoof = 0

    def window_of(self, when: int) -> int:
        """Window index containing epoch second ``when``."""
        return (when - self.origin) // self.window_seconds

    def observe_flow(self, subscriber: int, flow: FlowRecord) -> Optional[str]:
        """Fold one exported flow into its aggregation window.

        Returns the matched hitlist domain, if any, and keeps the same
        ``flows_seen``/``flows_matched``/``flows_rejected_spoof``
        counters as :class:`FlowDetector`.
        """
        self.flows_seen += 1
        if (
            self.require_established
            and flow.protocol == PROTO_TCP
            and not flow.has_established_evidence()
        ):
            self.flows_rejected_spoof += 1
            return None
        when = flow.first_switched
        fqdn = self.hitlist.lookup(
            day_index(when), flow.dst_ip, flow.dst_port
        )
        if fqdn is None:
            return None
        self.flows_matched += 1
        self.observe_evidence(subscriber, fqdn, when)
        return fqdn

    def observe_evidence(
        self, subscriber: int, fqdn: str, when: int
    ) -> None:
        """Directly record domain evidence (pre-attributed flows)."""
        window = self._windows.setdefault(self.window_of(when), {})
        window.setdefault(self._anonymize(subscriber), set()).add(fqdn)

    def detections_in_window(
        self, window_index: int, threshold: Optional[float] = None
    ) -> Dict[str, Set[str]]:
        """class name -> set of subscribers detected in the window."""
        threshold = self.threshold if threshold is None else threshold
        by_class: Dict[str, Set[str]] = {}
        for subscriber, seen in self._windows.get(window_index, {}).items():
            for class_name in self.rules.detected_classes(seen, threshold):
                by_class.setdefault(class_name, set()).add(subscriber)
        return by_class

    def windows(self) -> List[int]:
        return sorted(self._windows)

    def counts_per_window(
        self, threshold: Optional[float] = None
    ) -> Dict[int, Dict[str, int]]:
        """window -> class -> number of detected subscribers."""
        return {
            window: {
                class_name: len(subscribers)
                for class_name, subscribers in self.detections_in_window(
                    window, threshold
                ).items()
            }
            for window in self.windows()
        }
