"""Certificate/banner fallback — Section 4.2.2.

For domains that passive DNS never recorded, the paper falls back to
Censys: if the device spoke HTTPS to the domain, find the certificate
its hosts present, require that the certificate's Name matches the
domain at the second level or deeper **and carries no other Subject
Alternative Name**, then query for every host presenting the same
certificate *and* HTTPS banner checksum.  Those hosts become the
domain's service addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.dns.names import (
    is_subdomain,
    matches_pattern,
    normalize,
    second_level_domain,
)
from repro.tls.certificates import Certificate
from repro.tls.scanner import ScanDataset

__all__ = ["CensysRecovery", "certificate_is_specific", "recover_via_certificates"]


@dataclass(frozen=True)
class CensysRecovery:
    """Successful recovery of a no-record domain's service addresses."""

    fqdn: str
    fingerprint: str
    banner_checksum: str
    addresses: Tuple[int, ...]


def certificate_is_specific(certificate: Certificate, fqdn: str) -> bool:
    """The paper's matching criterion: every certificate name matches
    ``fqdn`` at the SLD or deeper (exact name or a wildcard within the
    same SLD), with no foreign Subject Alternative Names."""
    fqdn = normalize(fqdn)
    sld = second_level_domain(fqdn)
    if not certificate.covers(fqdn):
        return False
    for name in certificate.names:
        bare = name[2:] if name.startswith("*.") else name
        if not is_subdomain(bare, sld):
            return False
        if "*" in name:
            if not matches_pattern(fqdn, name):
                return False
        elif name != fqdn:
            return False
    return True


def recover_via_certificates(
    fqdn: str,
    scans: ScanDataset,
    uses_https: bool,
) -> Optional[CensysRecovery]:
    """Attempt to recover service addresses for a no-record domain.

    ``uses_https`` is the ground-truth observation of whether the device
    talked to the domain on port 443 — the precondition the paper
    states.  Returns ``None`` when recovery is impossible.
    """
    fqdn = normalize(fqdn)
    if not uses_https:
        return None
    for certificate in scans.certificates_for_domain(fqdn):
        if not certificate_is_specific(certificate, fqdn):
            continue
        hosts = scans.hosts_with_certificate(certificate.fingerprint)
        if not hosts:
            continue
        # Require a consistent banner across the deployment, then take
        # every host matching certificate + banner.
        banner = hosts[0].banner_checksum
        matching = scans.hosts_matching(certificate.fingerprint, banner)
        if not matching:
            continue
        return CensysRecovery(
            fqdn=fqdn,
            fingerprint=certificate.fingerprint,
            banner_checksum=banner,
            addresses=tuple(
                sorted({host.address for host in matching})
            ),
        )
    return None
