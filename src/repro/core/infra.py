"""Dedicated- vs shared-infrastructure classification — Section 4.2.1.

For every IoT-specific domain the methodology asks the passive-DNS
database two questions: which service addresses did the domain map to in
the window, and — inversely — which *query names* were observed mapping
to each of those addresses.  An address is *exclusively used* when the
query names behind it all share one second-level domain (CNAME chains
through cloud-provider compute names do not break exclusivity: the
tenant's querying SLD is what counts).  A domain is classified
*dedicated* only when every address it used was exclusive to its SLD on
every day of the window; one shared address on one day demotes it to
*shared*.  Domains DNSDB never saw are *no-record* and handed to the
certificate fallback (Section 4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.dns.dnsdb import PassiveDnsDatabase
from repro.dns.names import normalize, second_level_domain
from repro.timeutil import SECONDS_PER_DAY

__all__ = [
    "INFRA_DEDICATED",
    "INFRA_SHARED",
    "INFRA_NO_RECORD",
    "INFRA_UNKNOWN",
    "InfraVerdict",
    "classify_infrastructure",
    "address_is_exclusive",
]

INFRA_DEDICATED = "dedicated"
INFRA_SHARED = "shared"
INFRA_NO_RECORD = "no_record"
#: Passive DNS was *unavailable* (outage after retries), as opposed to
#: answering "never saw it" — the degradation paths treat the two very
#: differently (see :func:`repro.core.hitlist.build_hitlist`).
INFRA_UNKNOWN = "unknown"


@dataclass(frozen=True)
class InfraVerdict:
    """Outcome of infrastructure classification for one domain."""

    fqdn: str
    status: str  # INFRA_*
    addresses: Tuple[int, ...]  # every address observed in the window
    daily_addresses: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    shared_addresses: Tuple[int, ...] = ()  # evidence for INFRA_SHARED

    @property
    def dedicated(self) -> bool:
        return self.status == INFRA_DEDICATED


def address_is_exclusive(
    dnsdb: PassiveDnsDatabase,
    address: int,
    sld: str,
    start: int,
    end: int,
) -> bool:
    """Whether ``address`` served only query names under ``sld`` in the
    window."""
    slds = dnsdb.slds_for_address(address, start, end)
    return slds <= {sld} and bool(slds)


def classify_infrastructure(
    fqdn: str,
    dnsdb: PassiveDnsDatabase,
    start: int,
    end: int,
) -> InfraVerdict:
    """Classify one domain over ``[start, end)`` (aligned to days)."""
    fqdn = normalize(fqdn)
    sld = second_level_domain(fqdn)
    all_addresses: Set[int] = set()
    shared_addresses: Set[int] = set()
    daily: List[Tuple[int, Tuple[int, ...]]] = []
    saw_any = dnsdb.has_records(fqdn)
    if saw_any:
        day = start
        while day < end:
            day_end = min(day + SECONDS_PER_DAY, end)
            addresses = dnsdb.addresses_for_domain(fqdn, day, day_end)
            daily.append((day, tuple(sorted(addresses))))
            for address in addresses:
                all_addresses.add(address)
                if not address_is_exclusive(
                    dnsdb, address, sld, day, day_end
                ):
                    shared_addresses.add(address)
            day = day_end
    if not all_addresses:
        return InfraVerdict(fqdn, INFRA_NO_RECORD, ())
    status = INFRA_SHARED if shared_addresses else INFRA_DEDICATED
    return InfraVerdict(
        fqdn,
        status,
        tuple(sorted(all_addresses)),
        tuple(daily),
        tuple(sorted(shared_addresses)),
    )


def classify_all(
    fqdns,
    dnsdb: PassiveDnsDatabase,
    start: int,
    end: int,
) -> Dict[str, InfraVerdict]:
    """Classify a collection of domains; convenience wrapper."""
    return {
        normalize(fqdn): classify_infrastructure(fqdn, dnsdb, start, end)
        for fqdn in fqdns
    }
