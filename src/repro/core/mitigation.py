"""Mitigation policies — the Section 7.2 "potential security benefits".

Once a device class is identified as misbehaving (botnet membership,
known vulnerability, abandoned by its manufacturer), the paper suggests
an ISP/IXP can *block* access to the class's backend endpoints or
*redirect* its traffic to a benign server (privacy notices, patched
firmware).  The hitlist already contains everything needed: the daily
(address, port) endpoints of every monitored domain.

:class:`MitigationPlanner` turns a detection class into concrete
per-day policies; :class:`FlowFilter` applies them to a flow stream the
way a border-router ACL or policy-based-routing rule would.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet
from repro.netflow.records import FlowRecord
from repro.timeutil import day_index

__all__ = [
    "ACTION_BLOCK",
    "ACTION_FORWARD",
    "ACTION_REDIRECT",
    "MitigationPolicy",
    "MitigationPlanner",
    "FlowFilter",
]

ACTION_FORWARD = "forward"
ACTION_BLOCK = "block"
ACTION_REDIRECT = "redirect"


@dataclass(frozen=True)
class MitigationPolicy:
    """One day's policy for one detection class."""

    class_name: str
    day: int
    action: str  # ACTION_BLOCK or ACTION_REDIRECT
    endpoints: Tuple[Tuple[int, int], ...]  # (address, port)
    domains: Tuple[str, ...]
    redirect_target: Optional[int] = None  # required for redirects

    def __post_init__(self) -> None:
        if self.action not in (ACTION_BLOCK, ACTION_REDIRECT):
            raise ValueError(f"unknown mitigation action {self.action!r}")
        if self.action == ACTION_REDIRECT and self.redirect_target is None:
            raise ValueError("redirect policy needs a target address")

    @property
    def endpoint_count(self) -> int:
        return len(self.endpoints)


class MitigationPlanner:
    """Derives per-day mitigation policies from the hitlist."""

    def __init__(self, rules: RuleSet, hitlist: Hitlist) -> None:
        self.rules = rules
        self.hitlist = hitlist

    def _class_endpoints(
        self, class_name: str, day: int, include_descendants: bool
    ) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[str, ...]]:
        if class_name not in self.rules:
            raise KeyError(f"no rule for class {class_name!r}")
        targets = {class_name}
        if include_descendants:
            targets |= {
                rule.class_name
                for rule in self.rules
                if class_name in self.rules.ancestors(rule.class_name)
            }
        domains: Set[str] = set()
        for name in targets:
            domains.update(self.rules.rule(name).domains)
        endpoints = tuple(
            sorted(
                (endpoint, fqdn)
                for endpoint, fqdn in self.hitlist.endpoints_for_day(
                    day
                ).items()
                if fqdn in domains
            )
        )
        return (
            tuple(endpoint for endpoint, _ in endpoints),
            tuple(sorted(domains)),
        )

    def block(
        self,
        class_name: str,
        day: int,
        include_descendants: bool = True,
    ) -> MitigationPolicy:
        """A block policy for every endpoint of the class on ``day``."""
        endpoints, domains = self._class_endpoints(
            class_name, day, include_descendants
        )
        return MitigationPolicy(
            class_name=class_name,
            day=day,
            action=ACTION_BLOCK,
            endpoints=endpoints,
            domains=domains,
        )

    def redirect(
        self,
        class_name: str,
        day: int,
        target: int,
        include_descendants: bool = True,
    ) -> MitigationPolicy:
        """A redirect policy sending the class's traffic to ``target``
        (e.g. a notification/patching server)."""
        endpoints, domains = self._class_endpoints(
            class_name, day, include_descendants
        )
        return MitigationPolicy(
            class_name=class_name,
            day=day,
            action=ACTION_REDIRECT,
            endpoints=endpoints,
            domains=domains,
            redirect_target=target,
        )

    def campaign(
        self,
        class_name: str,
        days: Iterable[int],
        action: str = ACTION_BLOCK,
        target: Optional[int] = None,
    ) -> List[MitigationPolicy]:
        """Policies for a multi-day campaign (hitlists are daily)."""
        policies = []
        for day in days:
            if action == ACTION_BLOCK:
                policies.append(self.block(class_name, day))
            else:
                if target is None:
                    raise ValueError("redirect campaign needs a target")
                policies.append(self.redirect(class_name, day, target))
        return policies


class FlowFilter:
    """Applies mitigation policies to a flow stream (router ACL)."""

    def __init__(self, policies: Iterable[MitigationPolicy]) -> None:
        self._by_day: Dict[int, Dict[Tuple[int, int], MitigationPolicy]] = {}
        for policy in policies:
            day_map = self._by_day.setdefault(policy.day, {})
            for endpoint in policy.endpoints:
                day_map[endpoint] = policy
        self.forwarded = 0
        self.blocked = 0
        self.redirected = 0

    def decide(self, flow: FlowRecord) -> str:
        """The action for one flow."""
        day = day_index(flow.first_switched)
        policy = self._by_day.get(day, {}).get(
            (flow.dst_ip, flow.dst_port)
        )
        if policy is None:
            return ACTION_FORWARD
        return policy.action

    def apply(self, flow: FlowRecord) -> Optional[FlowRecord]:
        """Apply the policy: pass through, drop, or rewrite the flow.

        Returns the (possibly rewritten) flow, or ``None`` if blocked.
        """
        day = day_index(flow.first_switched)
        policy = self._by_day.get(day, {}).get(
            (flow.dst_ip, flow.dst_port)
        )
        if policy is None:
            self.forwarded += 1
            return flow
        if policy.action == ACTION_BLOCK:
            self.blocked += 1
            return None
        self.redirected += 1
        return replace(
            flow,
            key=replace(flow.key, dst_ip=policy.redirect_target),
        )

    def filter(
        self, flows: Iterable[FlowRecord]
    ) -> Iterable[FlowRecord]:
        """Apply policies to a stream, yielding surviving flows."""
        for flow in flows:
            result = self.apply(flow)
            if result is not None:
                yield result
