"""Active-vs-idle usage detection — Section 7.1.

Two signals distinguish a device *in active use* from one merely
plugged in:

1. **Active-marker domains** — domains only ever contacted during
   active experiments (derived by differencing the ground-truth idle and
   active domain sets).  One sampled flow towards a marker domain inside
   an hour marks the subscriber's device active for that hour.
2. **Traffic volume** — the paper observes that an actively used Alexa
   device pushes the per-hour *sampled* packet count past 10 at the
   ISP vantage point, a level idle devices never reach; a per-hour
   packet-count threshold over the class's hitlist domains captures
   this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet
from repro.netflow.records import FlowRecord
from repro.timeutil import SECONDS_PER_HOUR, STUDY_START, day_index

__all__ = ["UsageDetector", "derive_active_markers"]


def derive_active_markers(
    idle_domains: Set[str], active_domains: Set[str]
) -> Set[str]:
    """Domains seen in active experiments but never while idle."""
    return set(active_domains) - set(idle_domains)


@dataclass
class _HourUsage:
    packets: int = 0
    marker_seen: bool = False


class UsageDetector:
    """Classifies (subscriber, hour) pairs as active or idle use.

    ``packet_threshold`` is the paper's sampled-packets-per-hour cut
    (10 for Alexa Enabled devices at the ISP's sampling rate).
    """

    def __init__(
        self,
        rules: RuleSet,
        hitlist: Hitlist,
        class_name: str,
        packet_threshold: int = 10,
        active_markers: Optional[Set[str]] = None,
        origin: int = STUDY_START,
    ) -> None:
        self.rules = rules
        self.hitlist = hitlist
        self.class_name = class_name
        self.packet_threshold = packet_threshold
        self.active_markers = set(active_markers or ())
        self.origin = origin
        self._class_domains = set(rules.rule(class_name).domains)
        #: (subscriber, hour index) -> usage accumulator
        self._hours: Dict[Tuple[int, int], _HourUsage] = {}

    def hour_of(self, when: int) -> int:
        return (when - self.origin) // SECONDS_PER_HOUR

    def observe_flow(self, subscriber: int, flow: FlowRecord) -> None:
        """Fold one sampled flow into the per-hour usage accumulators."""
        when = flow.first_switched
        fqdn = self.hitlist.lookup(
            day_index(when), flow.dst_ip, flow.dst_port
        )
        if fqdn is None:
            return
        relevant = fqdn in self._class_domains or fqdn in self.active_markers
        if not relevant:
            return
        usage = self._hours.setdefault(
            (subscriber, self.hour_of(when)), _HourUsage()
        )
        usage.packets += flow.packets
        if fqdn in self.active_markers:
            usage.marker_seen = True

    def observe_packets(
        self, subscriber: int, when: int, packets: int,
        marker: bool = False,
    ) -> None:
        """Directly record pre-attributed sampled packets (used by the
        vectorised wild-scale simulation)."""
        usage = self._hours.setdefault(
            (subscriber, self.hour_of(when)), _HourUsage()
        )
        usage.packets += packets
        if marker:
            usage.marker_seen = True

    def is_active(self, subscriber: int, hour_index: int) -> bool:
        usage = self._hours.get((subscriber, hour_index))
        if usage is None:
            return False
        return usage.marker_seen or usage.packets >= self.packet_threshold

    def active_hours(self) -> Dict[int, Set[int]]:
        """hour index -> subscribers classified as actively using the
        device during that hour."""
        result: Dict[int, Set[int]] = {}
        for (subscriber, hour), usage in self._hours.items():
            if usage.marker_seen or usage.packets >= self.packet_threshold:
                result.setdefault(hour, set()).add(subscriber)
        return result

    def observed_hours(self) -> Dict[int, Set[int]]:
        """hour index -> subscribers with *any* sampled class traffic."""
        result: Dict[int, Set[int]] = {}
        for (subscriber, hour), _usage in self._hours.items():
            result.setdefault(hour, set()).add(subscriber)
        return result
