"""JSON persistence for hitlists and rule sets.

The paper's pipeline produces a *daily* hitlist that detection
infrastructure consumes; operationally that artefact has to move
between systems (the analysis box builds it, border collectors load
it).  These helpers serialise the detection-relevant parts of a
:class:`~repro.core.hitlist.Hitlist` and a
:class:`~repro.core.rules.RuleSet` to plain JSON and back.

Provenance data (classifications, passive-DNS verdicts) stays behind in
the analysis system — the exported hitlist carries only what detection
needs, which also keeps the artefact privacy-clean.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

from repro.core.hitlist import Hitlist, PipelineReport
from repro.core.rules import DetectionRule, RuleSet

__all__ = [
    "hitlist_to_json",
    "hitlist_from_json",
    "rules_to_json",
    "rules_from_json",
]

_FORMAT = "haystack-hitlist/1"
_RULES_FORMAT = "haystack-rules/1"


def hitlist_to_json(hitlist: Hitlist) -> str:
    """Serialise the detection-relevant hitlist parts to JSON."""
    payload = {
        "format": _FORMAT,
        "window": [hitlist.window_start, hitlist.window_end],
        "class_domains": {
            name: list(domains)
            for name, domains in hitlist.class_domains.items()
        },
        "class_critical": {
            name: list(domains)
            for name, domains in hitlist.class_critical.items()
        },
        "domain_ports": {
            fqdn: list(ports)
            for fqdn, ports in hitlist.domain_ports.items()
        },
        "daily_endpoints": {
            str(day): [
                [address, port, fqdn]
                for (address, port), fqdn in sorted(endpoints.items())
            ]
            for day, endpoints in hitlist.daily_endpoints.items()
        },
        "degraded_classes": list(hitlist.degraded_classes),
    }
    return json.dumps(payload, sort_keys=True)


def hitlist_from_json(text: str) -> Hitlist:
    """Load a hitlist exported by :func:`hitlist_to_json`.

    Provenance fields (classifications, verdicts, recoveries, report)
    are empty in the loaded object — only detection state is restored.
    """
    payload = json.loads(text)
    if payload.get("format") != _FORMAT:
        raise ValueError(
            f"not a {_FORMAT} document: {payload.get('format')!r}"
        )
    daily_endpoints: Dict[int, Dict[Tuple[int, int], str]] = {
        int(day): {
            (int(address), int(port)): fqdn
            for address, port, fqdn in entries
        }
        for day, entries in payload["daily_endpoints"].items()
    }
    class_domains = {
        name: tuple(domains)
        for name, domains in payload["class_domains"].items()
    }
    domain_classes: Dict[str, Tuple[str, ...]] = {}
    for class_name, domains in class_domains.items():
        for fqdn in domains:
            domain_classes[fqdn] = domain_classes.get(fqdn, ()) + (
                class_name,
            )
    empty_report = PipelineReport(
        observed_domains=0,
        primary_domains=0,
        support_domains=0,
        generic_domains=0,
        iot_specific_domains=0,
        dedicated_domains=0,
        shared_domains=0,
        no_record_domains=0,
        censys_recovered_domains=0,
        censys_recovered_products=0,
        excluded_products=(),
        surviving_classes=tuple(class_domains),
        dropped_classes=(),
    )
    degraded_classes = tuple(payload.get("degraded_classes", ()))
    return Hitlist(
        window_start=int(payload["window"][0]),
        window_end=int(payload["window"][1]),
        class_domains=class_domains,
        class_critical={
            name: tuple(domains)
            for name, domains in payload["class_critical"].items()
        },
        domain_ports={
            fqdn: tuple(int(port) for port in ports)
            for fqdn, ports in payload["domain_ports"].items()
        },
        daily_endpoints=daily_endpoints,
        domain_classes=domain_classes,
        classifications={},
        verdicts={},
        recoveries={},
        report=empty_report,
        degraded_classes=degraded_classes,
    )


def rules_to_json(rules: RuleSet) -> str:
    """Serialise a rule set to JSON."""
    payload = {
        "format": _RULES_FORMAT,
        "rules": [
            {
                "class_name": rule.class_name,
                "level": rule.level,
                "domains": list(rule.domains),
                "critical": list(rule.critical),
                "parent": rule.parent,
            }
            for rule in rules
        ],
    }
    return json.dumps(payload, sort_keys=True)


def rules_from_json(text: str) -> RuleSet:
    """Load a rule set exported by :func:`rules_to_json`."""
    payload = json.loads(text)
    if payload.get("format") != _RULES_FORMAT:
        raise ValueError(
            f"not a {_RULES_FORMAT} document: {payload.get('format')!r}"
        )
    return RuleSet(
        DetectionRule(
            class_name=entry["class_name"],
            level=entry["level"],
            domains=tuple(entry["domains"]),
            critical=tuple(entry["critical"]),
            parent=entry["parent"],
        )
        for entry in payload["rules"]
    )
