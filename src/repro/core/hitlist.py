"""Daily hitlist construction — Sections 4.1-4.2 / Figure 7.

Input: the ground-truth observations (which products contacted which
domains, on which ports, with how much traffic).  The pipeline

1. classifies every observed domain (Primary / Support / Generic) and
   discards Generic ones,
2. classifies each IoT-specific domain's backend as dedicated / shared /
   no-record via passive DNS,
3. recovers no-record HTTPS domains through the certificate/banner
   fallback,
4. excludes products whose surviving dedicated domains carry less than
   ``dedicated_traffic_threshold`` of their primary-domain traffic (the
   Section 4.2.3 removal of shared-infrastructure devices: Google Home,
   Apple TV, …), and
5. assembles the daily hitlist: per study day, every (address, port)
   combination attributable to a surviving rule domain.

The output :class:`Hitlist` is what detection rules are generated from;
the :class:`PipelineReport` carries the Section 4 headline counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.certmatch import CensysRecovery, recover_via_certificates
from repro.core.domains import (
    ROLE_GENERIC,
    ROLE_PRIMARY,
    ROLE_SUPPORT,
    DomainClassification,
    classify_domains,
)
from repro.core.infra import (
    INFRA_DEDICATED,
    INFRA_NO_RECORD,
    INFRA_SHARED,
    INFRA_UNKNOWN,
    InfraVerdict,
    classify_infrastructure,
)
from repro.dns.names import normalize
from repro.resilience.retry import LookupUnavailable
from repro.scenario import Scenario
from repro.timeutil import (
    SECONDS_PER_DAY,
    STUDY_END,
    STUDY_START,
    day_index,
)

__all__ = [
    "DomainObservation",
    "GroundTruthObservations",
    "Hitlist",
    "PipelineReport",
    "build_hitlist",
]


@dataclass
class DomainObservation:
    """Aggregate ground-truth sighting of one domain."""

    fqdn: str
    products: Set[str] = field(default_factory=set)
    ports: Set[int] = field(default_factory=set)
    packets_by_product: Dict[str, float] = field(default_factory=dict)

    @property
    def total_packets(self) -> float:
        return sum(self.packets_by_product.values())

    @property
    def uses_https(self) -> bool:
        return 443 in self.ports


class GroundTruthObservations:
    """What the testbed capture revealed: product ↔ domain contacts."""

    def __init__(self) -> None:
        self._by_fqdn: Dict[str, DomainObservation] = {}

    def record(
        self, product: str, fqdn: str, port: int, packets: float
    ) -> None:
        fqdn = normalize(fqdn)
        observation = self._by_fqdn.setdefault(
            fqdn, DomainObservation(fqdn)
        )
        observation.products.add(product)
        observation.ports.add(port)
        observation.packets_by_product[product] = (
            observation.packets_by_product.get(product, 0.0) + packets
        )

    def domains(self) -> List[str]:
        return sorted(self._by_fqdn)

    def observation(self, fqdn: str) -> DomainObservation:
        return self._by_fqdn[normalize(fqdn)]

    def __contains__(self, fqdn: str) -> bool:
        return normalize(fqdn) in self._by_fqdn

    def __len__(self) -> int:
        return len(self._by_fqdn)

    def products_seen(self) -> Set[str]:
        products: Set[str] = set()
        for observation in self._by_fqdn.values():
            products |= observation.products
        return products

    @classmethod
    def from_library(cls, library) -> "GroundTruthObservations":
        """Idealised observations straight from the profile library
        (every profiled contact observed, weighted by idle+active rates).
        Matches what a long, lossless Home-VP capture converges to."""
        observations = cls()
        for profile in library.profiles.values():
            for usage in profile.usages:
                spec = library.domain(usage.fqdn)
                weight = max(usage.idle_pph, 0.0) + 0.1 * usage.active_pph
                for port in spec.ports:
                    observations.record(
                        profile.product.name, usage.fqdn, port, weight
                    )
        return observations

    @classmethod
    def from_traffic(
        cls, events: Iterable[Tuple[str, str, int, float]]
    ) -> "GroundTruthObservations":
        """Build observations from (product, fqdn, port, packets) events
        — e.g. the Home-VP capture of a ground-truth run."""
        observations = cls()
        for product, fqdn, port, packets in events:
            observations.record(product, fqdn, port, packets)
        return observations


@dataclass
class PipelineReport:
    """Headline counts of one pipeline run (the Section 4 numbers)."""

    observed_domains: int
    primary_domains: int
    support_domains: int
    generic_domains: int
    iot_specific_domains: int
    dedicated_domains: int
    shared_domains: int
    no_record_domains: int
    censys_recovered_domains: int
    censys_recovered_products: int
    excluded_products: Tuple[str, ...]
    surviving_classes: Tuple[str, ...]
    dropped_classes: Tuple[str, ...]
    #: domains whose passive-DNS classification was unavailable (outage)
    unknown_domains: Tuple[str, ...] = ()
    #: unknown domains kept alive through the certificate fallback
    degraded_domains: Tuple[str, ...] = ()
    #: classes whose rules lean on degraded evidence (demoted a level)
    degraded_classes: Tuple[str, ...] = ()


@dataclass
class Hitlist:
    """The daily IoT dictionary: addresses/ports per surviving domain."""

    window_start: int
    window_end: int
    class_domains: Dict[str, Tuple[str, ...]]
    class_critical: Dict[str, Tuple[str, ...]]
    domain_ports: Dict[str, Tuple[int, ...]]
    #: day index -> (address, port) -> fqdn
    daily_endpoints: Dict[int, Dict[Tuple[int, int], str]]
    #: fqdn -> classes whose rule monitors it
    domain_classes: Dict[str, Tuple[str, ...]]
    classifications: Dict[str, DomainClassification]
    verdicts: Dict[str, InfraVerdict]
    recoveries: Dict[str, CensysRecovery]
    report: PipelineReport
    #: classes whose evidence is degraded (rule generation demotes
    #: their level one step — see repro.core.rules.generate_rules)
    degraded_classes: Tuple[str, ...] = ()

    def endpoints_for_day(self, day: int) -> Dict[Tuple[int, int], str]:
        """The (address, port) → domain map for study-day ``day``."""
        return self.daily_endpoints.get(day, {})

    def lookup(self, day: int, address: int, port: int) -> Optional[str]:
        """Attribute one observed endpoint to a hitlist domain."""
        return self.daily_endpoints.get(day, {}).get((address, port))

    def all_addresses(self) -> Set[int]:
        return {
            address
            for endpoints in self.daily_endpoints.values()
            for (address, _port) in endpoints
        }

    @property
    def classes(self) -> Tuple[str, ...]:
        return tuple(self.class_domains)


def build_hitlist(
    scenario: Scenario,
    observations: Optional[GroundTruthObservations] = None,
    start: int = STUDY_START,
    end: int = STUDY_END,
    dedicated_traffic_threshold: float = 0.30,
    dnsdb=None,
    scans=None,
) -> Hitlist:
    """Run the full Figure-7 pipeline and assemble the daily hitlist.

    ``dnsdb``/``scans`` override the scenario's backends — pass a
    :class:`~repro.resilience.lookups.ResilientPassiveDns` /
    :class:`~repro.resilience.lookups.ResilientScanDataset` adapter to
    run the pipeline against fallible backends.  The pipeline then
    degrades instead of dying: a domain whose passive-DNS evidence is
    unavailable after retries
    (:class:`~repro.resilience.retry.LookupUnavailable`) is marked
    :data:`~repro.core.infra.INFRA_UNKNOWN` and routed through the
    certificate fallback; if that recovers it, the domain survives but
    every class leaning on it is flagged degraded
    (:attr:`Hitlist.degraded_classes`) so rule generation demotes its
    level claim one step instead of emitting over-confident rules.
    """
    if observations is None:
        observations = GroundTruthObservations.from_library(
            scenario.library
        )
    if dnsdb is None:
        dnsdb = scenario.dnsdb
    if scans is None:
        scans = scenario.scans

    # ---- step 1: domain classification (Section 4.1) --------------------
    classifications = classify_domains(
        observations.domains(),
        scenario.whois,
        scenario.catalog.manufacturers,
    )
    iot_specific = [
        fqdn
        for fqdn, verdict in classifications.items()
        if verdict.role != ROLE_GENERIC
    ]

    # ---- step 2: dedicated vs shared via passive DNS (Section 4.2.1) ----
    verdicts: Dict[str, InfraVerdict] = {}
    for fqdn in iot_specific:
        try:
            verdicts[fqdn] = classify_infrastructure(
                fqdn, dnsdb, start, end
            )
        except LookupUnavailable:
            # Outage, not "no records": the backend could not answer
            # after retries.  Route through the certificate fallback
            # and degrade rather than silently claim dedicated.
            verdicts[fqdn] = InfraVerdict(
                normalize(fqdn), INFRA_UNKNOWN, ()
            )
    unknown_domains = tuple(
        sorted(
            fqdn
            for fqdn, verdict in verdicts.items()
            if verdict.status == INFRA_UNKNOWN
        )
    )

    # ---- step 3: Censys fallback for no-record domains (Section 4.2.2) --
    recoveries: Dict[str, CensysRecovery] = {}
    for fqdn, verdict in verdicts.items():
        if verdict.status not in (INFRA_NO_RECORD, INFRA_UNKNOWN):
            continue
        try:
            recovery = recover_via_certificates(
                fqdn,
                scans,
                uses_https=observations.observation(fqdn).uses_https,
            )
        except LookupUnavailable:
            recovery = None  # both backends down: the domain drops
        if recovery is not None:
            recoveries[fqdn] = recovery

    surviving_domains = {
        fqdn
        for fqdn, verdict in verdicts.items()
        if verdict.status == INFRA_DEDICATED or fqdn in recoveries
    }
    degraded_domains = tuple(
        sorted(fqdn for fqdn in unknown_domains if fqdn in recoveries)
    )

    # ---- step 4: product exclusion (Section 4.2.3) -----------------------
    excluded_products: List[str] = []
    surviving_products: List[str] = []
    for product in sorted(observations.products_seen()):
        primary_total = 0.0
        primary_surviving = 0.0
        for fqdn in observations.domains():
            observation = observations.observation(fqdn)
            if product not in observation.products:
                continue
            if classifications[fqdn].role != ROLE_PRIMARY:
                continue
            packets = observation.packets_by_product.get(product, 0.0)
            primary_total += packets
            if fqdn in surviving_domains:
                primary_surviving += packets
        if primary_total <= 0:
            excluded_products.append(product)
            continue
        if primary_surviving / primary_total < dedicated_traffic_threshold:
            excluded_products.append(product)
        else:
            surviving_products.append(product)
    excluded_set = set(excluded_products)

    # ---- step 5: per-class surviving rule domains -------------------------
    class_domains: Dict[str, Tuple[str, ...]] = {}
    class_critical: Dict[str, Tuple[str, ...]] = {}
    dropped_classes: List[str] = []
    for spec in scenario.catalog.detection_classes:
        members_alive = [
            member
            for member in spec.member_products
            if member not in excluded_set
        ]
        rule = [
            fqdn
            for fqdn in scenario.library.rule_domains[spec.name]
            if fqdn in surviving_domains and fqdn in observations
        ]
        if not members_alive or not rule:
            dropped_classes.append(spec.name)
            continue
        class_domains[spec.name] = tuple(rule)
        class_critical[spec.name] = tuple(
            fqdn
            for fqdn in scenario.library.critical_domains[spec.name]
            if fqdn in rule
        )

    domain_classes: Dict[str, Tuple[str, ...]] = {}
    for class_name, fqdns in class_domains.items():
        for fqdn in fqdns:
            domain_classes.setdefault(fqdn, ())
            domain_classes[fqdn] = domain_classes[fqdn] + (class_name,)

    degraded_set = set(degraded_domains)
    degraded_classes = tuple(
        sorted(
            class_name
            for class_name, fqdns in class_domains.items()
            if any(fqdn in degraded_set for fqdn in fqdns)
        )
    )

    # ---- daily endpoint maps ------------------------------------------------
    domain_ports = {
        fqdn: tuple(sorted(observations.observation(fqdn).ports))
        for fqdn in domain_classes
    }
    daily_endpoints: Dict[int, Dict[Tuple[int, int], str]] = {}
    day = start
    while day < end:
        index = day_index(day)
        endpoints: Dict[Tuple[int, int], str] = {}
        for fqdn in domain_classes:
            verdict = verdicts[fqdn]
            addresses: Set[int] = set()
            for window_day, day_addresses in verdict.daily_addresses:
                if window_day == day:
                    addresses.update(day_addresses)
            if fqdn in recoveries:
                addresses.update(recoveries[fqdn].addresses)
            for address in addresses:
                for port in domain_ports[fqdn]:
                    endpoints[(address, port)] = fqdn
        daily_endpoints[index] = endpoints
        day += SECONDS_PER_DAY

    report = PipelineReport(
        observed_domains=len(observations),
        primary_domains=sum(
            1
            for verdict in classifications.values()
            if verdict.role == ROLE_PRIMARY
        ),
        support_domains=sum(
            1
            for verdict in classifications.values()
            if verdict.role == ROLE_SUPPORT
        ),
        generic_domains=sum(
            1
            for verdict in classifications.values()
            if verdict.role == ROLE_GENERIC
        ),
        iot_specific_domains=len(iot_specific),
        dedicated_domains=sum(
            1
            for verdict in verdicts.values()
            if verdict.status == INFRA_DEDICATED
        ),
        shared_domains=sum(
            1
            for verdict in verdicts.values()
            if verdict.status == INFRA_SHARED
        ),
        no_record_domains=sum(
            1
            for verdict in verdicts.values()
            if verdict.status == INFRA_NO_RECORD
        ),
        censys_recovered_domains=len(recoveries),
        censys_recovered_products=len(
            {
                product
                for fqdn in recoveries
                for product in observations.observation(fqdn).products
            }
        ),
        excluded_products=tuple(excluded_products),
        surviving_classes=tuple(class_domains),
        dropped_classes=tuple(dropped_classes),
        unknown_domains=unknown_domains,
        degraded_domains=degraded_domains,
        degraded_classes=degraded_classes,
    )
    return Hitlist(
        window_start=start,
        window_end=end,
        class_domains=class_domains,
        class_critical=class_critical,
        domain_ports=domain_ports,
        daily_endpoints=daily_endpoints,
        domain_classes=domain_classes,
        classifications=classifications,
        verdicts=verdicts,
        recoveries=recoveries,
        report=report,
        degraded_classes=degraded_classes,
    )
