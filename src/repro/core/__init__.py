"""The paper's primary contribution: the IoT detection methodology.

Pipeline (Figure 7):  classify observed domains (:mod:`domains`) →
map IoT-specific domains to service IPs and split dedicated vs shared
infrastructure via passive DNS (:mod:`infra`) → recover unmapped domains
via TLS certificates/banners (:mod:`certmatch`) → assemble the daily
hitlist and drop shared-infrastructure devices (:mod:`hitlist`) →
generate detection rules per class (:mod:`rules`) → evaluate rules over
sampled flows (:mod:`detector`) and infer active usage (:mod:`usage`).
"""

from repro.core.domains import DomainClassification, classify_domains
from repro.core.infra import (
    INFRA_DEDICATED,
    INFRA_NO_RECORD,
    INFRA_SHARED,
    InfraVerdict,
    classify_infrastructure,
)
from repro.core.certmatch import CensysRecovery, recover_via_certificates
from repro.core.hitlist import (
    GroundTruthObservations,
    Hitlist,
    PipelineReport,
    build_hitlist,
)
from repro.core.rules import DetectionRule, RuleSet, generate_rules
from repro.core.detector import Detection, FlowDetector, WindowedDetector
from repro.core.usage import UsageDetector
from repro.core.mitigation import (
    FlowFilter,
    MitigationPlanner,
    MitigationPolicy,
)
from repro.core.serialization import (
    hitlist_from_json,
    hitlist_to_json,
    rules_from_json,
    rules_to_json,
)

__all__ = [
    "DomainClassification",
    "classify_domains",
    "INFRA_DEDICATED",
    "INFRA_NO_RECORD",
    "INFRA_SHARED",
    "InfraVerdict",
    "classify_infrastructure",
    "CensysRecovery",
    "recover_via_certificates",
    "GroundTruthObservations",
    "Hitlist",
    "PipelineReport",
    "build_hitlist",
    "DetectionRule",
    "RuleSet",
    "generate_rules",
    "Detection",
    "FlowDetector",
    "WindowedDetector",
    "UsageDetector",
    "FlowFilter",
    "MitigationPlanner",
    "MitigationPolicy",
    "hitlist_from_json",
    "hitlist_to_json",
    "rules_from_json",
    "rules_to_json",
]
