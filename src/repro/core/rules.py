"""Detection-rule generation — Section 4.3.2.

A rule monitors the N surviving Primary domains of a detection class.
Detection at threshold ``D`` requires observing traffic towards
IP/port combinations covering at least ``max(1, floor(D * N))`` distinct
monitored domains, with two refinements from the paper:

* *critical domains* (the AVS endpoint, Samsung's firmware-update
  domain) must always be among the evidence, whatever the threshold;
* *hierarchy*: a child class (Fire TV ⊂ Amazon Product ⊂ Alexa
  Enabled; Samsung TV ⊂ Samsung IoT) may only be claimed once its
  parent's rule is satisfied on the same subscriber/window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.hitlist import Hitlist
from repro.devices.catalog import DeviceCatalog

__all__ = ["DetectionRule", "RuleSet", "generate_rules"]


@dataclass(frozen=True)
class DetectionRule:
    """One class's detection rule."""

    class_name: str
    level: str
    domains: Tuple[str, ...]
    critical: Tuple[str, ...] = ()
    parent: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.domains:
            raise ValueError(
                f"rule for {self.class_name!r} has no domains"
            )
        missing = set(self.critical) - set(self.domains)
        if missing:
            raise ValueError(
                f"critical domains {sorted(missing)} of "
                f"{self.class_name!r} not among rule domains"
            )

    @property
    def domain_count(self) -> int:
        return len(self.domains)

    def required_domains(self, threshold: float) -> int:
        """``max(1, floor(D * N))`` — the paper's evidence requirement."""
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1]: {threshold}")
        return max(1, math.floor(threshold * self.domain_count))

    def satisfied(self, seen: Set[str], threshold: float) -> bool:
        """Whether the evidence set satisfies this rule (ignoring
        hierarchy — see :meth:`RuleSet.detected_classes`)."""
        if any(fqdn not in seen for fqdn in self.critical):
            return False
        matched = sum(1 for fqdn in self.domains if fqdn in seen)
        return matched >= self.required_domains(threshold)

    def matched_domains(self, seen: Set[str]) -> Tuple[str, ...]:
        return tuple(fqdn for fqdn in self.domains if fqdn in seen)


class RuleSet:
    """All generated rules plus hierarchy-aware evaluation."""

    def __init__(self, rules: Iterable[DetectionRule]) -> None:
        self._rules: Dict[str, DetectionRule] = {}
        for rule in rules:
            if rule.class_name in self._rules:
                raise ValueError(f"duplicate rule {rule.class_name!r}")
            self._rules[rule.class_name] = rule
        for rule in self._rules.values():
            if rule.parent is not None and rule.parent not in self._rules:
                raise ValueError(
                    f"rule {rule.class_name!r} references missing parent "
                    f"{rule.parent!r}"
                )

    def __iter__(self):
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._rules

    def rule(self, class_name: str) -> DetectionRule:
        return self._rules[class_name]

    def class_names(self) -> Tuple[str, ...]:
        return tuple(self._rules)

    def ancestors(self, class_name: str) -> List[str]:
        """Parent chain from immediate parent to root."""
        chain: List[str] = []
        parent = self._rules[class_name].parent
        while parent is not None:
            chain.append(parent)
            parent = self._rules[parent].parent
        return chain

    def monitored_domains(self) -> FrozenSet[str]:
        return frozenset(
            fqdn for rule in self._rules.values() for fqdn in rule.domains
        )

    def detected_classes(
        self, seen: Set[str], threshold: float
    ) -> Set[str]:
        """Every class whose rule *and* all ancestors' rules are
        satisfied by the evidence set."""
        satisfied = {
            name
            for name, rule in self._rules.items()
            if rule.satisfied(seen, threshold)
        }
        return {
            name
            for name in satisfied
            if all(parent in satisfied for parent in self.ancestors(name))
        }


def generate_rules(
    catalog: DeviceCatalog, hitlist: Hitlist
) -> RuleSet:
    """Generate rules for every class that survived the hitlist
    pipeline.  A surviving child whose parent was dropped is attached to
    its nearest surviving ancestor (or becomes a root).

    Classes flagged degraded by the hitlist (their rule leans on a
    domain whose dedicated-infrastructure evidence could not be
    verified during a passive-DNS outage) are demoted one granularity
    level — Product → Manufacturer → Platform — so the emitted rule
    never claims a finer identification than its evidence supports.
    """
    # Imported lazily: repro.core.levels imports RuleSet from here.
    from repro.core.levels import coarser_level

    surviving = set(hitlist.class_domains)
    degraded = set(getattr(hitlist, "degraded_classes", ()))
    rules: List[DetectionRule] = []
    for class_name, domains in hitlist.class_domains.items():
        spec = catalog.detection_class(class_name)
        parent = spec.parent
        while parent is not None and parent not in surviving:
            parent = catalog.detection_class(parent).parent
        level = spec.level
        if class_name in degraded:
            level = coarser_level(level)
        rules.append(
            DetectionRule(
                class_name=class_name,
                level=level,
                domains=domains,
                critical=hitlist.class_critical.get(class_name, ()),
                parent=parent,
            )
        )
    return RuleSet(rules)
