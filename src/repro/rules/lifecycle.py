"""Versioned rule artifacts, candidate validation, background refresh.

The detection rules of Section 5 are derived from a *daily* hitlist:
the DNS↔IP mappings behind IoT backends churn, so a long-running
detector must pick up recomputed rules without a restart (a restart
would lose every subscriber's evidence window).  This module owns the
artifact half of the live-refresh story:

* :class:`RulesArtifact` / :func:`write_artifact` /
  :func:`read_artifact` — one rule generation (rules + hitlist +
  version) as a crash-safe on-disk document.  Publishes go through
  write-to-temp → fsync → atomic rename → directory fsync, and every
  artifact carries a SHA-256 integrity header (the same discipline as
  stream checkpoints), so a reader never observes a half-written or
  silently truncated generation.
* :func:`validate_candidate` — the gate a recomputed candidate must
  pass before it may be published: non-empty, schema-complete,
  version strictly newer than the incumbent, endpoint coverage within
  configured delta bounds of the incumbent.
* :class:`VersionedRuleStore` — a directory of versioned artifacts
  with monotonically increasing versions, last-good fallback on
  corrupt newest generations, and pruning.
* :class:`HitlistRefresher` — recomputes candidates through the
  resilient backend adapters (:mod:`repro.resilience.lookups`),
  validates, publishes; failures (backend outage, validation reject)
  leave the store untouched — consumers keep detecting on the
  last-good generation — and the background loop retries under the
  jittered capped backoff of :class:`~repro.resilience.retry.
  RetryPolicy`.

The pipeline half — staging a loaded generation, event-time activation
at the next hour boundary, evidence migration — lives in
:mod:`repro.pipeline.swap`; the stream assembly wires the two together.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pathlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.core.hitlist import Hitlist, build_hitlist
from repro.core.rules import RuleSet, generate_rules
from repro.core.serialization import (
    hitlist_from_json,
    hitlist_to_json,
    rules_from_json,
    rules_to_json,
)
from repro.resilience.lookups import (
    ResilientPassiveDns,
    ResilientScanDataset,
)
from repro.resilience.retry import LookupUnavailable, RetryPolicy

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "CandidateRejected",
    "HitlistRefresher",
    "LoadedArtifact",
    "RefreshStats",
    "RulesArtifact",
    "VersionedRuleStore",
    "artifact_path",
    "list_artifacts",
    "load_latest_artifact",
    "read_artifact",
    "scenario_recompute",
    "validate_candidate",
    "write_artifact",
]

logger = logging.getLogger(__name__)

#: First token of every artifact header line.
ARTIFACT_MAGIC = "repro-rules-artifact"
#: On-disk format revision.
ARTIFACT_VERSION = "v1"

_PathLike = Union[str, pathlib.Path]
_PREFIX = "rules-v"
_SUFFIX = ".json"


class ArtifactError(RuntimeError):
    """An artifact file is unreadable: bad header, hash, or schema."""


class CandidateRejected(ValueError):
    """A recomputed candidate failed validation and was not published."""


@dataclass(frozen=True)
class RulesArtifact:
    """One publishable rule generation: rules + hitlist + version."""

    version: int
    rules: RuleSet
    hitlist: Hitlist

    def to_payload(self) -> bytes:
        """The canonical JSON body (without the integrity header)."""
        document = {
            "format": f"haystack-rules-artifact/{ARTIFACT_VERSION[1:]}",
            "version": self.version,
            "rules": json.loads(rules_to_json(self.rules)),
            "hitlist": json.loads(hitlist_to_json(self.hitlist)),
        }
        return json.dumps(
            document, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "RulesArtifact":
        try:
            document = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactError(f"artifact body is not JSON: {exc}")
        expected = f"haystack-rules-artifact/{ARTIFACT_VERSION[1:]}"
        if document.get("format") != expected:
            raise ArtifactError(
                f"not a {expected} document: {document.get('format')!r}"
            )
        for key in ("version", "rules", "hitlist"):
            if key not in document:
                raise ArtifactError(f"artifact missing {key!r} section")
        try:
            rules = rules_from_json(json.dumps(document["rules"]))
            hitlist = hitlist_from_json(json.dumps(document["hitlist"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise ArtifactError(f"artifact sections malformed: {exc}")
        return cls(
            version=int(document["version"]), rules=rules, hitlist=hitlist
        )


@dataclass(frozen=True)
class LoadedArtifact:
    """A successfully read artifact plus how it was found."""

    artifact: RulesArtifact
    path: pathlib.Path
    #: newer-but-corrupt generations skipped to reach this one
    fallbacks: int = 0


def artifact_path(directory: _PathLike, version: int) -> pathlib.Path:
    """Where generation ``version`` lives inside ``directory``."""
    return pathlib.Path(directory) / f"{_PREFIX}{version:010d}{_SUFFIX}"


def _version_of(path: pathlib.Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
        return None
    digits = name[len(_PREFIX) : -len(_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_artifacts(
    directory: _PathLike,
) -> List[Tuple[int, pathlib.Path]]:
    """All ``(version, path)`` pairs in ``directory``, oldest first."""
    root = pathlib.Path(directory)
    if not root.is_dir():
        return []
    found = []
    for path in root.iterdir():
        version = _version_of(path)
        if version is not None:
            found.append((version, path))
    found.sort()
    return found


def write_artifact(path: _PathLike, artifact: RulesArtifact) -> None:
    """Atomically publish ``artifact`` at ``path``.

    Same crash-safety contract as checkpoint writes: the document is
    written to a temp file in the same directory, fsynced, renamed
    over the target, and the directory entry fsynced — a crash at any
    point leaves either the old file or the complete new one, never a
    torn artifact.  (Reimplemented here rather than imported from
    :mod:`repro.stream.checkpoint`: the layering contract forbids
    ``repro.rules`` → ``repro.stream``.)
    """
    target = pathlib.Path(path)
    payload = artifact.to_payload()
    digest = hashlib.sha256(payload).hexdigest()
    header = (
        f"{ARTIFACT_MAGIC} {ARTIFACT_VERSION} "
        f"sha256={digest} length={len(payload)}\n"
    ).encode("ascii")
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(header)
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    directory_fd = os.open(str(target.parent), os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)


def read_artifact(path: _PathLike) -> RulesArtifact:
    """Read and integrity-check one artifact file.

    Raises :class:`ArtifactError` on any damage: missing file, bad
    magic, truncated body, hash mismatch, or malformed sections.
    """
    target = pathlib.Path(path)
    try:
        raw = target.read_bytes()
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {target}: {exc}")
    newline = raw.find(b"\n")
    if newline < 0:
        raise ArtifactError(f"artifact {target} has no header line")
    try:
        header = raw[:newline].decode("ascii")
    except UnicodeDecodeError:
        raise ArtifactError(f"artifact {target} header is not ASCII")
    fields = header.split()
    if (
        len(fields) != 4
        or fields[0] != ARTIFACT_MAGIC
        or fields[1] != ARTIFACT_VERSION
        or not fields[2].startswith("sha256=")
        or not fields[3].startswith("length=")
    ):
        raise ArtifactError(f"artifact {target} header malformed: {header!r}")
    expected_digest = fields[2][len("sha256=") :]
    try:
        expected_length = int(fields[3][len("length=") :])
    except ValueError:
        raise ArtifactError(f"artifact {target} length field malformed")
    payload = raw[newline + 1 :]
    if len(payload) != expected_length:
        raise ArtifactError(
            f"artifact {target} truncated: "
            f"{len(payload)} of {expected_length} bytes"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != expected_digest:
        raise ArtifactError(f"artifact {target} hash mismatch")
    artifact = RulesArtifact.from_payload(payload)
    file_version = _version_of(target)
    if file_version is not None and file_version != artifact.version:
        raise ArtifactError(
            f"artifact {target} claims version {artifact.version}, "
            f"filename says {file_version}"
        )
    return artifact


def load_latest_artifact(
    directory: _PathLike,
) -> Optional[LoadedArtifact]:
    """The newest readable generation, falling back past damage.

    Tries generations newest-first; a corrupt or torn newest artifact
    is logged and skipped (the *last-good* generation wins), counting
    each skip in :attr:`LoadedArtifact.fallbacks`.  Returns ``None``
    when no generation is readable.
    """
    fallbacks = 0
    for version, path in reversed(list_artifacts(directory)):
        try:
            artifact = read_artifact(path)
        except ArtifactError as exc:
            logger.warning(
                "rules artifact v%d unreadable, falling back: %s",
                version,
                exc,
            )
            fallbacks += 1
            continue
        return LoadedArtifact(
            artifact=artifact, path=path, fallbacks=fallbacks
        )
    return None


def _coverage(hitlist: Hitlist) -> int:
    """Total (day, address, port) endpoints the hitlist monitors."""
    return sum(
        len(endpoints) for endpoints in hitlist.daily_endpoints.values()
    )


def validate_candidate(
    candidate: RulesArtifact,
    current: Optional[RulesArtifact] = None,
    max_coverage_drop: float = 0.5,
    max_coverage_growth: float = 20.0,
) -> None:
    """The publish gate: raise :class:`CandidateRejected` unless sane.

    Checks, in order:

    1. *non-empty* — at least one rule, one monitored domain, and one
       daily endpoint (an empty candidate would silently blind the
       detector);
    2. *monotonic version* — strictly newer than the incumbent, so a
       stale recompute can never roll the fleet backwards;
    3. *coverage delta bounds* — the endpoint count may not collapse
       below ``(1 - max_coverage_drop)`` of the incumbent's nor explode
       past ``max_coverage_growth`` times it; both are symptoms of a
       broken upstream (empty passive-DNS answers, a runaway join)
       rather than genuine churn.
    """
    if not candidate.rules.class_names():
        raise CandidateRejected("candidate has no rules")
    if not candidate.rules.monitored_domains():
        raise CandidateRejected("candidate monitors no domains")
    if _coverage(candidate.hitlist) == 0:
        raise CandidateRejected("candidate hitlist has no endpoints")
    if candidate.version < 1:
        raise CandidateRejected(
            f"candidate version must be >= 1, got {candidate.version}"
        )
    if current is not None:
        if candidate.version <= current.version:
            raise CandidateRejected(
                f"candidate version {candidate.version} is not newer "
                f"than active version {current.version}"
            )
        old = _coverage(current.hitlist)
        new = _coverage(candidate.hitlist)
        if old > 0:
            if new < old * (1.0 - max_coverage_drop):
                raise CandidateRejected(
                    f"endpoint coverage collapsed {old} -> {new} "
                    f"(more than {max_coverage_drop:.0%} drop)"
                )
            if new > old * max_coverage_growth:
                raise CandidateRejected(
                    f"endpoint coverage exploded {old} -> {new} "
                    f"(more than {max_coverage_growth:g}x growth)"
                )


class VersionedRuleStore:
    """A directory of versioned rule artifacts with last-good reads.

    Publishes are validated, monotonically versioned, and atomic;
    reads fall back past damaged newest generations.  The store keeps
    the newest ``keep`` generations plus whatever a reader might still
    be resuming from — pruning only removes artifacts strictly older
    than the newest ``keep``.
    """

    def __init__(self, directory: _PathLike, keep: int = 5) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = pathlib.Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    def latest_version(self) -> int:
        """Newest on-disk version (0 when the store is empty).

        Counts damaged artifacts too: versions are allocated above any
        file present, so a torn v5 never lets a later publish reuse 5.
        """
        artifacts = list_artifacts(self.directory)
        return artifacts[-1][0] if artifacts else 0

    def load_latest(self) -> Optional[LoadedArtifact]:
        """Newest *readable* generation (last-good fallback)."""
        return load_latest_artifact(self.directory)

    def load_version(self, version: int) -> RulesArtifact:
        """A specific generation; :class:`ArtifactError` if unreadable.

        Resume paths use this: a checkpoint taken under version *k*
        must restart under version *k*'s rules, not whatever is newest.
        """
        return read_artifact(artifact_path(self.directory, version))

    def publish(
        self,
        rules: RuleSet,
        hitlist: Hitlist,
        validate: bool = True,
        max_coverage_drop: float = 0.5,
        max_coverage_growth: float = 20.0,
    ) -> RulesArtifact:
        """Validate and atomically publish the next generation.

        The version is allocated as ``latest_version() + 1``; with
        ``validate`` (the default) the candidate must pass
        :func:`validate_candidate` against the current last-good
        generation or :class:`CandidateRejected` propagates and the
        store is left untouched.
        """
        current = self.load_latest()
        version = self.latest_version() + 1
        candidate = RulesArtifact(
            version=version, rules=rules, hitlist=hitlist
        )
        if validate:
            validate_candidate(
                candidate,
                current=current.artifact if current else None,
                max_coverage_drop=max_coverage_drop,
                max_coverage_growth=max_coverage_growth,
            )
        write_artifact(artifact_path(self.directory, version), candidate)
        self._prune()
        return candidate

    def _prune(self) -> None:
        artifacts = list_artifacts(self.directory)
        for _version, path in artifacts[: -self.keep]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing reader/cleaner
                pass


@dataclass
class RefreshStats:
    """What the refresher did, surfaced into the ``"rules"`` metrics."""

    attempts: int = 0
    published: int = 0
    #: failed refreshes by cause — backend outage, validation reject, …
    failures: int = 0
    failure_reasons: List[str] = field(default_factory=list)
    consecutive_failures: int = 0
    last_published_version: int = 0

    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "published": self.published,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "last_published_version": self.last_published_version,
        }


class HitlistRefresher:
    """Recompute → validate → publish, with last-good degradation.

    ``recompute`` is a zero-argument callable returning ``(rules,
    hitlist)`` — typically :func:`scenario_recompute`, which routes
    the Figure-7 pipeline through the resilient passive-DNS and scan
    adapters.  A refresh that fails — the backends stayed unavailable
    past the retry budget (:class:`~repro.resilience.retry.
    LookupUnavailable`), the candidate flunked validation
    (:class:`CandidateRejected`), or the publish itself errored —
    leaves the store untouched, so every consumer keeps detecting on
    the last-good generation.

    :meth:`run` is the background loop: refresh every ``interval``
    seconds, and after failures wait out a capped backoff drawn from
    ``policy`` (full jitter when the policy enables it, seeded for
    deterministic tests) before trying again.  Tests drive
    :meth:`refresh_once` directly — the loop adds only scheduling.
    """

    def __init__(
        self,
        store: VersionedRuleStore,
        recompute: Callable[[], Tuple[RuleSet, Hitlist]],
        policy: Optional[RetryPolicy] = None,
        max_coverage_drop: float = 0.5,
        max_coverage_growth: float = 20.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.store = store
        self.recompute = recompute
        self.policy = policy or RetryPolicy(
            backoff_base=1.0, backoff_cap=60.0, jitter=True, seed=None
        )
        self.max_coverage_drop = max_coverage_drop
        self.max_coverage_growth = max_coverage_growth
        self.stats = RefreshStats()
        self._sleep = sleep
        self._rng = random.Random(self.policy.seed)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def refresh_once(self) -> Optional[RulesArtifact]:
        """One refresh attempt; ``None`` (and counters) on failure."""
        self.stats.attempts += 1
        try:
            rules, hitlist = self.recompute()
            artifact = self.store.publish(
                rules,
                hitlist,
                max_coverage_drop=self.max_coverage_drop,
                max_coverage_growth=self.max_coverage_growth,
            )
        except (LookupUnavailable, CandidateRejected, ArtifactError) as exc:
            self.stats.failures += 1
            self.stats.consecutive_failures += 1
            self.stats.failure_reasons.append(
                f"{type(exc).__name__}: {exc}"
            )
            logger.warning(
                "rule refresh failed (staying on last-good v%d): %s",
                self.store.latest_version(),
                exc,
            )
            return None
        self.stats.published += 1
        self.stats.consecutive_failures = 0
        self.stats.last_published_version = artifact.version
        logger.info("published rules generation v%d", artifact.version)
        return artifact

    def run(self, interval: float, max_refreshes: Optional[int] = None):
        """The refresh loop (blocking; :meth:`start` wraps in a thread).

        After each failed attempt the wait grows by the policy's capped
        backoff (keyed by the consecutive-failure count); a success
        resets to ``interval``.
        """
        refreshes = 0
        while not self._stop.is_set():
            if self._stop.wait(self._next_delay(interval)):
                break
            self.refresh_once()
            refreshes += 1
            if max_refreshes is not None and refreshes >= max_refreshes:
                break

    def _next_delay(self, interval: float) -> float:
        if self.stats.consecutive_failures == 0:
            return interval
        backoff = self.policy.delay(
            self.stats.consecutive_failures - 1, rng=self._rng
        )
        return interval + backoff

    def start(self, interval: float) -> None:
        """Run the refresh loop on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("refresher already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run,
            args=(interval,),
            name="hitlist-refresher",
            daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Signal the loop to exit and join the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None


def scenario_recompute(
    scenario,
    observations=None,
    start: Optional[int] = None,
    end: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
    dnsdb=None,
    scans=None,
) -> Callable[[], Tuple[RuleSet, Hitlist]]:
    """A ``recompute`` callable running Figure 7 over resilient adapters.

    Rebuilds the hitlist from the scenario's passive-DNS and scan
    backends (or explicit ``dnsdb``/``scans`` overrides, e.g. a
    :class:`repro.faults.FlakyProxy`-wrapped backend under test),
    wrapped in :class:`~repro.resilience.lookups.ResilientPassiveDns` /
    :class:`~repro.resilience.lookups.ResilientScanDataset`, then
    derives rules from the scenario's catalog.
    """
    from repro.timeutil import STUDY_END, STUDY_START

    window_start = STUDY_START if start is None else start
    window_end = STUDY_END if end is None else end

    def recompute() -> Tuple[RuleSet, Hitlist]:
        resilient_dns = ResilientPassiveDns(
            dnsdb if dnsdb is not None else scenario.dnsdb,
            policy=policy,
            sleep=sleep,
        )
        resilient_scans = ResilientScanDataset(
            scans if scans is not None else scenario.scans,
            policy=policy,
            sleep=sleep,
        )
        hitlist = build_hitlist(
            scenario,
            observations=observations,
            start=window_start,
            end=window_end,
            dnsdb=resilient_dns,
            scans=resilient_scans,
        )
        rules = generate_rules(scenario.catalog, hitlist)
        return rules, hitlist

    return recompute
