"""Versioned rule lifecycle: publish, validate, refresh, hot-swap.

The paper re-derives the hitlist per time window because DNS↔IP
mappings churn daily; a long-running detector therefore needs rule
updates *without* a restart (the restart would lose evidence state).
:mod:`repro.rules.lifecycle` owns the artifact side of that story —
a versioned on-disk store with crash-safe publishes and last-good
fallback, candidate validation, and a background refresher that
recomputes rules through the resilient lookup adapters.  The pipeline
side (staging, event-time activation, evidence migration) lives in
:mod:`repro.pipeline.swap`.

Layering: this package sits on core/resilience/pipeline and must never
import the assemblies (``repro.engine``/``repro.stream``/``repro.ixp``)
— enforced by ``tools/check_layering.py``.
"""

from repro.rules.lifecycle import (
    ARTIFACT_MAGIC,
    ARTIFACT_VERSION,
    ArtifactError,
    CandidateRejected,
    HitlistRefresher,
    LoadedArtifact,
    RefreshStats,
    RulesArtifact,
    VersionedRuleStore,
    artifact_path,
    list_artifacts,
    load_latest_artifact,
    read_artifact,
    scenario_recompute,
    validate_candidate,
    write_artifact,
)

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "CandidateRejected",
    "HitlistRefresher",
    "LoadedArtifact",
    "RefreshStats",
    "RulesArtifact",
    "VersionedRuleStore",
    "artifact_path",
    "list_artifacts",
    "load_latest_artifact",
    "read_artifact",
    "scenario_recompute",
    "validate_candidate",
    "write_artifact",
]
