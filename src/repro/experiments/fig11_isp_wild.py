"""Figure 11 — ISP subscriber lines with IoT activity per hour and per
day (Alexa Enabled, Samsung IoT, and the other 32 device types)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.reporting import render_series, render_table
from repro.experiments.context import ExperimentContext

__all__ = ["Fig11Result", "run", "render"]


@dataclass
class Fig11Result:
    hourly: Dict[str, np.ndarray]
    daily: Dict[str, np.ndarray]
    subscribers: int
    alexa_daily_penetration: float
    any_daily_penetration: float
    alexa_daily_to_hourly: float
    samsung_daily_to_hourly: float
    #: hour-of-day profile of Alexa detections (diurnal check)
    alexa_hour_of_day: np.ndarray


def run(context: ExperimentContext) -> Fig11Result:
    wild = context.wild
    hourly = {
        "Alexa Enabled": wild.hourly_counts["Alexa Enabled"],
        "Samsung IoT": wild.hourly_counts["Samsung IoT"],
        "Other 32 IoT Device types": wild.other_hourly,
    }
    daily = {
        "Alexa Enabled": wild.daily_counts["Alexa Enabled"],
        "Samsung IoT": wild.daily_counts["Samsung IoT"],
        "Other 32 IoT Device types": wild.other_daily,
    }
    alexa_hourly = hourly["Alexa Enabled"]
    profile = alexa_hourly.reshape(-1, 24).mean(axis=0)
    subscribers = wild.config.subscribers
    return Fig11Result(
        hourly=hourly,
        daily=daily,
        subscribers=subscribers,
        alexa_daily_penetration=float(
            daily["Alexa Enabled"].mean() / subscribers
        ),
        any_daily_penetration=float(wild.any_daily.mean() / subscribers),
        alexa_daily_to_hourly=float(
            daily["Alexa Enabled"].mean()
            / max(1.0, alexa_hourly.mean())
        ),
        samsung_daily_to_hourly=float(
            daily["Samsung IoT"].mean()
            / max(1.0, hourly["Samsung IoT"].mean())
        ),
        alexa_hour_of_day=profile,
    )


def render(result: Fig11Result) -> str:
    lines = [
        f"Figure 11: subscriber lines with IoT activity "
        f"(population {result.subscribers:,})"
    ]
    for name, series in result.hourly.items():
        lines.append(
            render_series(
                f"11(a) {name} per hour", list(enumerate(series))
            )
        )
    for name, series in result.daily.items():
        lines.append(
            render_series(
                f"11(b) {name} per day", list(enumerate(series))
            )
        )
    lines.append(
        render_series(
            "Alexa hour-of-day mean (diurnal shape)",
            list(enumerate(np.round(result.alexa_hour_of_day, 1))),
            max_points=24,
        )
    )
    lines.append(
        render_table(
            ("metric", "measured", "paper"),
            [
                (
                    "daily Alexa penetration",
                    f"{result.alexa_daily_penetration:.1%}",
                    "~14%",
                ),
                (
                    "daily any-IoT penetration",
                    f"{result.any_daily_penetration:.1%}",
                    "~20%",
                ),
                (
                    "Alexa daily/hourly ratio",
                    f"{result.alexa_daily_to_hourly:.1f}x",
                    "~2x",
                ),
                (
                    "Samsung daily/hourly ratio",
                    f"{result.samsung_daily_to_hourly:.1f}x",
                    "~6x",
                ),
            ],
            title="Section 6.2 headline statistics",
        )
    )
    return "\n".join(lines)
