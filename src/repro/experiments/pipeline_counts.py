"""Section 4 pipeline counts: domain classification, dedicated/shared
split, Censys recovery, and shared-infrastructure device removal."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.reporting import render_table
from repro.core.hitlist import PipelineReport
from repro.experiments.context import ExperimentContext

__all__ = ["run", "render"]


def run(context: ExperimentContext) -> PipelineReport:
    return context.hitlist.report


def render(report: PipelineReport) -> str:
    rows = [
        ("observed domains", report.observed_domains, "524"),
        ("primary domains", report.primary_domains, "415"),
        ("support domains", report.support_domains, "19"),
        ("generic domains (dropped)", report.generic_domains, "90"),
        ("IoT-specific domains", report.iot_specific_domains, "434"),
        ("dedicated infrastructure", report.dedicated_domains, "217"),
        ("shared infrastructure", report.shared_domains, "202"),
        ("no DNSDB record", report.no_record_domains, "15"),
        (
            "recovered via Censys",
            report.censys_recovered_domains,
            "8",
        ),
        (
            "devices covered by recovery",
            report.censys_recovered_products,
            "5",
        ),
        (
            "excluded products",
            len(report.excluded_products),
            "7 (Google Home/Mini, Apple TV, Lefun, LG TV, WeMo, Wink)",
        ),
    ]
    table = render_table(
        ("pipeline stage", "measured", "paper"), rows,
        title="Section 4: hitlist pipeline counts",
    )
    excluded = ", ".join(report.excluded_products)
    return f"{table}\nexcluded: {excluded}"
