"""Figure 9 — ECDF of average packets/hour per (device, domain) pair,
for idle and active experiments, over all IoT-specific domains."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.ecdf import Ecdf
from repro.analysis.reporting import render_series
from repro.core.domains import ROLE_GENERIC
from repro.experiments.context import ExperimentContext
from repro.timeutil import ACTIVE_END, ACTIVE_START, IDLE_END, IDLE_START

__all__ = ["Fig9Result", "run", "render"]


@dataclass
class Fig9Result:
    idle: Ecdf
    active: Ecdf
    idle_pairs: int
    active_pairs: int


def run(context: ExperimentContext) -> Fig9Result:
    capture = context.capture
    library = context.scenario.library
    windows = {
        "active": (ACTIVE_START, ACTIVE_END),
        "idle": (IDLE_START, IDLE_END),
    }
    rates: Dict[str, Dict[Tuple[int, str], int]] = {
        mode: defaultdict(int) for mode in windows
    }
    for event in capture.home_events:
        start, end = windows[event.mode]
        if not start <= event.timestamp < end:
            continue
        spec = library.domain(event.fqdn)
        if spec.role_hint == ROLE_GENERIC:
            continue  # the figure covers IoT-specific domains only
        rates[event.mode][(event.device_id, event.fqdn)] += event.packets
    results = {}
    for mode, (start, end) in windows.items():
        hours = (end - start) // 3600
        values = [
            count / hours for count in rates[mode].values() if count > 0
        ]
        results[mode] = Ecdf(values)
    return Fig9Result(
        idle=results["idle"],
        active=results["active"],
        idle_pairs=len(results["idle"]),
        active_pairs=len(results["active"]),
    )


def render(result: Fig9Result) -> str:
    lines = [
        "Figure 9: ECDF of avg packets/hour per (device, IoT-specific "
        "domain)"
    ]
    lines.append(
        render_series("idle ECDF (pph, F)", result.idle.sampled_points(20))
    )
    lines.append(
        render_series(
            "active ECDF (pph, F)", result.active.sampled_points(20)
        )
    )
    lines.append(
        f"pairs: idle={result.idle_pairs} active={result.active_pairs}; "
        f"idle median={result.idle.median:.1f} pph, "
        f"active median={result.active.median:.1f} pph, "
        f"active p99={result.active.quantile(0.99):.0f} pph "
        "(paper: some active domains exceed 10k pph)"
    )
    return "\n".join(lines)
