"""Section 5 false-positive crosscheck.

"We crosscheck possible false positives by running another experiment
where we only enable a small subset of IoT devices. We then apply our
detection methodology to these traces and do not identify any devices
that are not explicitly part of the experiment."

We replay the ground-truth capture with only a chosen subset of devices
powered on and assert that every detected class is one legitimately
reachable from the enabled products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.analysis.reporting import render_table
from repro.core.detector import FlowDetector
from repro.experiments.context import ExperimentContext

__all__ = ["FalsePositiveResult", "run", "render", "DEFAULT_SUBSET"]

DEFAULT_SUBSET: Tuple[str, ...] = (
    "Echo Dot",
    "Yi Cam",
    "TP-Link Plug",
    "Netatmo Weather",
    "Smarter iKettle",
)


@dataclass
class FalsePositiveResult:
    enabled_products: Tuple[str, ...]
    expected_classes: Set[str]
    detected_classes: Set[str]
    false_positives: Set[str]
    missed: Set[str]


def run(
    context: ExperimentContext,
    subset: Sequence[str] = DEFAULT_SUBSET,
    threshold: float = 0.4,
) -> FalsePositiveResult:
    catalog = context.scenario.catalog
    subset = tuple(subset)
    enabled_ids = {
        instance.device_id
        for instance in context.schedule.all_instances()
        if instance.product_name in subset
    }
    expected: Set[str] = set()
    for product in subset:
        for class_name in catalog.product(product).detection_classes:
            if class_name in context.rules:
                expected.add(class_name)
    detector = FlowDetector(
        context.rules, context.hitlist, threshold=threshold
    )
    for event in context.capture.isp_events:
        if event.device_id in enabled_ids:
            detector.observe_evidence(0, event.fqdn, event.timestamp)
    detected = {
        detection.class_name for detection in detector.detections()
    }
    return FalsePositiveResult(
        enabled_products=subset,
        expected_classes=expected,
        detected_classes=detected,
        false_positives=detected - expected,
        missed=expected - detected,
    )


def render(result: FalsePositiveResult) -> str:
    rows = [
        ("enabled products", ", ".join(result.enabled_products)),
        ("expected classes", ", ".join(sorted(result.expected_classes))),
        ("detected classes", ", ".join(sorted(result.detected_classes))),
        (
            "false positives",
            ", ".join(sorted(result.false_positives)) or "none",
        ),
        ("missed", ", ".join(sorted(result.missed)) or "none"),
    ]
    return render_table(
        ("item", "value"), rows,
        title="Section 5 false-positive crosscheck (subset experiment)",
    )
