"""Figure 12 — drill-down of the Amazon and Samsung hierarchies:
Alexa Enabled ⊃ Amazon Product ⊃ Fire TV and Samsung IoT ⊃ Samsung TV,
per day, at the conservative threshold D=0.4."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.reporting import render_series, render_table
from repro.experiments.context import ExperimentContext

__all__ = ["Fig12Result", "run", "render", "DRILLDOWN_CLASSES"]

DRILLDOWN_CLASSES = (
    "Alexa Enabled",
    "Amazon Product",
    "Fire TV",
    "Samsung IoT",
    "Samsung TV",
)


@dataclass
class Fig12Result:
    daily: Dict[str, np.ndarray]
    subscribers: int

    def fraction(self, child: str, parent: str) -> float:
        child_mean = float(self.daily[child].mean())
        parent_mean = float(self.daily[parent].mean())
        if parent_mean == 0:
            return 0.0
        return child_mean / parent_mean


def run(context: ExperimentContext) -> Fig12Result:
    wild = context.wild
    return Fig12Result(
        daily={
            name: wild.daily_counts[name] for name in DRILLDOWN_CLASSES
        },
        subscribers=wild.config.subscribers,
    )


def render(result: Fig12Result) -> str:
    lines = ["Figure 12: Amazon/Samsung drill-down per day (D=0.4)"]
    for name in DRILLDOWN_CLASSES:
        lines.append(
            render_series(name, list(enumerate(result.daily[name])))
        )
    lines.append(
        render_table(
            ("relation", "measured", "paper expectation"),
            [
                (
                    "Amazon Product / Alexa Enabled",
                    f"{result.fraction('Amazon Product', 'Alexa Enabled'):.0%}",
                    "a fraction (<100%)",
                ),
                (
                    "Fire TV / Amazon Product",
                    f"{result.fraction('Fire TV', 'Amazon Product'):.0%}",
                    "a smaller fraction",
                ),
                (
                    "Samsung TV / Samsung IoT",
                    f"{result.fraction('Samsung TV', 'Samsung IoT'):.0%}",
                    "a fraction (<100%)",
                ),
            ],
            title="hierarchy consistency",
        )
    )
    return "\n".join(lines)
