"""Figure 15 — unique IPs with detected IoT activity per day at the
IXP (Alexa Enabled, Samsung IoT, other 32 device types)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.reporting import render_series, render_table
from repro.experiments.context import ExperimentContext

__all__ = ["Fig15Result", "run", "render"]


@dataclass
class Fig15Result:
    daily: Dict[str, np.ndarray]
    spoofed_suppressed: int
    sampling_interval: int


def run(context: ExperimentContext) -> Fig15Result:
    ixp = context.ixp
    return Fig15Result(
        daily=ixp.daily_ip_counts,
        spoofed_suppressed=ixp.spoofed_suppressed,
        sampling_interval=ixp.config.sampling_interval,
    )


def render(result: Fig15Result) -> str:
    lines = [
        "Figure 15: unique IPs with detected IoT activity per day at "
        f"the IXP (sampling 1/{result.sampling_interval})"
    ]
    for name, series in result.daily.items():
        lines.append(render_series(name, list(enumerate(series))))
    rows = []
    for name, series in result.daily.items():
        rows.append((name, int(series.mean())))
    lines.append(
        render_table(
            ("group", "mean unique IPs/day"),
            rows,
            title=(
                "paper: ~200k Alexa Enabled, ~90k Samsung, >100k other "
                "(absolute values scale with the population)"
            ),
        )
    )
    lines.append(
        f"spoofed-SYN candidate sources suppressed by the established "
        f"filter: {result.spoofed_suppressed:,}"
    )
    return "\n".join(lines)
