"""Table 1 — the device inventory under test."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reporting import render_table
from repro.devices.catalog import CATEGORIES, DeviceCatalog

__all__ = ["Table1Result", "run", "render"]


@dataclass
class Table1Result:
    rows: List[Tuple[str, str]]  # (category, device names)
    product_count: int
    device_count: int
    manufacturer_count: int
    idle_only: Tuple[str, ...]


def run(catalog: DeviceCatalog) -> Table1Result:
    rows = []
    for category in CATEGORIES:
        names = ", ".join(
            product.name + (" (idle)" if product.idle_only else "")
            for product in catalog.products_in_category(category)
        )
        rows.append((category, names))
    return Table1Result(
        rows=rows,
        product_count=catalog.product_count,
        device_count=catalog.device_count,
        manufacturer_count=len(catalog.manufacturers),
        idle_only=tuple(
            product.name
            for product in catalog.products
            if product.idle_only
        ),
    )


def render(result: Table1Result) -> str:
    table = render_table(
        ("Category", "Device Name"),
        result.rows,
        title="Table 1: IoT devices under test",
    )
    summary = (
        f"\nunique products: {result.product_count} (paper: 56)"
        f"\nphysical devices: {result.device_count} (paper: 96)"
        f"\nmanufacturers: {result.manufacturer_count} (paper: 40)"
        f"\nidle-only products: {', '.join(result.idle_only)}"
    )
    return table + summary
