"""Figure 13 — cumulative unique subscriber-line identifiers and /24s
with daily IoT activity across the two study weeks (address churn)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.reporting import render_series, render_table
from repro.experiments.context import ExperimentContext

__all__ = ["Fig13Result", "run", "render"]


@dataclass
class Fig13Result:
    cumulative_lines: Dict[str, np.ndarray]
    cumulative_slash24: Dict[str, np.ndarray]
    daily: Dict[str, np.ndarray]

    def line_inflation(self, class_name: str) -> float:
        """Final cumulative line count over the mean daily count — the
        double-counting factor churn introduces."""
        mean_daily = float(self.daily[class_name].mean())
        if mean_daily == 0:
            return 0.0
        return float(self.cumulative_lines[class_name][-1]) / mean_daily

    def slash24_flatness(self, class_name: str) -> float:
        """Relative growth of the /24 curve over its second week — a
        stabilised curve stays near 0."""
        series = self.cumulative_slash24[class_name]
        midpoint = len(series) // 2
        if series[midpoint] == 0:
            return 0.0
        return float(series[-1] - series[midpoint]) / float(
            series[midpoint]
        )


def run(context: ExperimentContext) -> Fig13Result:
    wild = context.wild
    return Fig13Result(
        cumulative_lines=wild.cumulative_lines,
        cumulative_slash24=wild.cumulative_slash24,
        daily={
            name: wild.daily_counts[name]
            for name in wild.cumulative_lines
        },
    )


def render(result: Fig13Result) -> str:
    lines = [
        "Figure 13: cumulative subscriber lines (upper) and /24s "
        "(lower) with daily IoT activity"
    ]
    for name, series in result.cumulative_lines.items():
        lines.append(
            render_series(f"lines {name}", list(enumerate(series)))
        )
    for name, series in result.cumulative_slash24.items():
        lines.append(
            render_series(f"/24s {name}", list(enumerate(series)))
        )
    rows = []
    for name in result.cumulative_lines:
        rows.append(
            (
                name,
                f"{result.line_inflation(name):.2f}x",
                f"{result.slash24_flatness(name):.1%}",
            )
        )
    lines.append(
        render_table(
            (
                "class",
                "cumulative-line inflation",
                "/24 growth in week 2",
            ),
            rows,
            title=(
                "churn effects (paper: line counts keep inflating, "
                "/24 curves stabilise smoothly)"
            ),
        )
    )
    return "\n".join(lines)
