"""Figure 8 — average packets/hour per domain for 13 devices, split into
laconic devices and two gossiping examples (Echo Dot, Apple TV)."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reporting import render_histogram_row
from repro.experiments.context import ExperimentContext
from repro.timeutil import IDLE_END, IDLE_START

__all__ = ["DomainTrafficResult", "run", "render", "FIG8_DEVICES"]

#: The paper's 13 devices: 11 laconic plus two gossiping examples.
FIG8_DEVICES: Tuple[str, ...] = (
    "Apple TV",
    "Blink Hub",
    "Echo Dot",
    "Meross Door Opener",
    "Netatmo Weather",
    "Philips Hue",
    "Smarter Brewer",
    "Smartlife Bulb",
    "Smartthings",
    "Anova Sousvide",
    "TP-Link Bulb",
    "Xiaomi Home",
    "Yi Cam",
)

_GOSSIP_THRESHOLD = 10  # domains; more than this means "gossiping"


@dataclass
class DomainTrafficResult:
    #: device -> {domain: avg packets/hour during idle}
    per_domain: Dict[str, Dict[str, float]]
    gossiping: List[str]
    laconic: List[str]


def run(context: ExperimentContext) -> DomainTrafficResult:
    capture = context.capture
    library = context.scenario.library
    idle_hours = (IDLE_END - IDLE_START) // 3600
    packets: Dict[str, Dict[str, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    for event in capture.home_events:
        if event.mode != "idle" or event.timestamp < IDLE_START:
            continue
        if event.product not in FIG8_DEVICES:
            continue
        # The figure plots IoT-specific domains; shared generic
        # services (NTP, trackers) are not device signatures.
        if library.domain(event.fqdn).role_hint == "generic":
            continue
        packets[event.product][event.fqdn] += event.packets
    per_domain = {
        device: {
            fqdn: count / idle_hours for fqdn, count in domains.items()
        }
        for device, domains in packets.items()
    }
    gossiping = sorted(
        device
        for device, domains in per_domain.items()
        if len(domains) > _GOSSIP_THRESHOLD
    )
    laconic = sorted(set(per_domain) - set(gossiping))
    return DomainTrafficResult(per_domain, gossiping, laconic)


def render(result: DomainTrafficResult) -> str:
    lines = [
        "Figure 8: avg packets/hour per domain (idle), laconic vs "
        "gossiping devices"
    ]
    for group_name, devices in (
        ("gossiping", result.gossiping),
        ("laconic", result.laconic),
    ):
        lines.append(f"-- {group_name} devices --")
        for device in devices:
            domains = result.per_domain[device]
            maximum = max(domains.values(), default=0.0)
            lines.append(f"{device} ({len(domains)} domains):")
            top = sorted(
                domains.items(), key=lambda item: -item[1]
            )[:8]
            for fqdn, rate in top:
                lines.append(
                    "  " + render_histogram_row(fqdn, rate, maximum)
                )
    return "\n".join(lines)
