"""Shared experiment context.

Building the world, running the ground-truth capture, and running the
wild-scale studies are the expensive steps every experiment shares.
:func:`get_context` memoises one fully-initialised bundle per
(seed, scale) so the benchmark suite pays the cost once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.hitlist import Hitlist, build_hitlist
from repro.core.rules import RuleSet, generate_rules
from repro.devices.testbed import ExperimentSchedule
from repro.isp.simulation import (
    GroundTruthCapture,
    WildConfig,
    WildIspResult,
    run_ground_truth,
    run_wild_isp,
)
from repro.ixp.fabric import IxpConfig, IxpResult, run_wild_ixp
from repro.ixp.members import build_members
from repro.scenario import Scenario, build_default_scenario

__all__ = ["ExperimentContext", "get_context"]


@dataclass
class ExperimentContext:
    """Everything the per-figure experiments need, built lazily."""

    seed: int = 7
    wild_subscribers: int = 100_000
    wild_days: int = 14
    #: wild-run worker processes (1 = historical serial path; other
    #: values route through :mod:`repro.engine`, 0 = one per CPU)
    wild_workers: int = 1
    #: owners per engine shard when ``wild_workers != 1``
    wild_shard_size: int = 8192
    #: shard-supervision knobs (see repro.resilience.supervisor)
    wild_max_retries: int = 2
    wild_shard_timeout: Optional[float] = None
    wild_quarantine_dir: Optional[str] = None
    #: runtime-guard budgets (see repro.runtime): RSS bytes / seconds
    wild_memory_budget: Optional[int] = None
    wild_deadline: Optional[float] = None
    scenario: Scenario = field(init=False)
    schedule: ExperimentSchedule = field(init=False)
    hitlist: Hitlist = field(init=False)
    rules: RuleSet = field(init=False)
    _capture: Optional[GroundTruthCapture] = field(
        default=None, init=False, repr=False
    )
    _wild: Optional[WildIspResult] = field(
        default=None, init=False, repr=False
    )
    _ixp: Optional[IxpResult] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.scenario = build_default_scenario(seed=self.seed)
        self.schedule = ExperimentSchedule(
            self.scenario.catalog, self.scenario.library
        )
        self.hitlist = build_hitlist(self.scenario)
        self.rules = generate_rules(self.scenario.catalog, self.hitlist)

    @property
    def capture(self) -> GroundTruthCapture:
        """The ground-truth run (computed on first use)."""
        if self._capture is None:
            self._capture = run_ground_truth(
                self.scenario, schedule=self.schedule
            )
        return self._capture

    @property
    def wild(self) -> WildIspResult:
        """The wild ISP run (computed on first use)."""
        if self._wild is None:
            self._wild = run_wild_isp(
                self.scenario,
                self.rules,
                self.hitlist,
                WildConfig(
                    subscribers=self.wild_subscribers,
                    days=self.wild_days,
                    workers=self.wild_workers,
                    shard_size=self.wild_shard_size,
                    max_retries=self.wild_max_retries,
                    shard_timeout=self.wild_shard_timeout,
                    quarantine_dir=self.wild_quarantine_dir,
                    memory_budget=self.wild_memory_budget,
                    deadline=self.wild_deadline,
                ),
            )
        return self._wild

    @property
    def ixp(self) -> IxpResult:
        """The wild IXP run (computed on first use)."""
        if self._ixp is None:
            members = build_members(
                self.scenario.allocator, self.scenario.registry
            )
            self._ixp = run_wild_ixp(
                self.scenario,
                self.rules,
                self.hitlist,
                members,
                IxpConfig(days=self.wild_days),
            )
        return self._ixp


_CONTEXTS: Dict[Tuple, ExperimentContext] = {}


def get_context(
    seed: int = 7,
    wild_subscribers: int = 100_000,
    wild_days: int = 14,
    wild_workers: int = 1,
    wild_shard_size: int = 8192,
    wild_max_retries: int = 2,
    wild_shard_timeout: Optional[float] = None,
    wild_quarantine_dir: Optional[str] = None,
    wild_memory_budget: Optional[int] = None,
    wild_deadline: Optional[float] = None,
) -> ExperimentContext:
    """Memoised context per (seed, scale, engine/supervision config)."""
    key = (
        seed,
        wild_subscribers,
        wild_days,
        wild_workers,
        wild_shard_size,
        wild_max_retries,
        wild_shard_timeout,
        wild_quarantine_dir,
        wild_memory_budget,
        wild_deadline,
    )
    if key not in _CONTEXTS:
        _CONTEXTS[key] = ExperimentContext(
            seed=seed,
            wild_subscribers=wild_subscribers,
            wild_days=wild_days,
            wild_workers=wild_workers,
            wild_shard_size=wild_shard_size,
            wild_max_retries=wild_max_retries,
            wild_shard_timeout=wild_shard_timeout,
            wild_quarantine_dir=wild_quarantine_dir,
            wild_memory_budget=wild_memory_budget,
            wild_deadline=wild_deadline,
        )
    return _CONTEXTS[key]
