"""Figure 10 — time to detect each class on the sampled ground truth,
for detection thresholds 0.1 … 1.0, in active and idle modes (§5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import render_table
from repro.core.detector import FlowDetector
from repro.experiments.context import ExperimentContext
from repro.timeutil import ACTIVE_START, IDLE_START

__all__ = ["CrosscheckResult", "run", "render", "detection_rates"]

THRESHOLDS: Tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)


@dataclass
class CrosscheckResult:
    #: mode -> threshold -> class -> hours to detect (absent = never)
    times: Dict[str, Dict[float, Dict[str, float]]]
    class_count: int


def _detector_for(
    context: ExperimentContext, mode: str
) -> FlowDetector:
    detector = FlowDetector(
        context.rules, context.hitlist, threshold=0.4
    )
    for event in context.capture.isp_events:
        if mode == "active" and event.mode != "active":
            continue
        if mode == "idle" and (
            event.mode != "idle" or event.timestamp < IDLE_START
        ):
            continue
        detector.observe_evidence(0, event.fqdn, event.timestamp)
    return detector


def run(
    context: ExperimentContext,
    thresholds: Tuple[float, ...] = THRESHOLDS,
) -> CrosscheckResult:
    times: Dict[str, Dict[float, Dict[str, float]]] = {}
    for mode, origin in (("active", ACTIVE_START), ("idle", IDLE_START)):
        detector = _detector_for(context, mode)
        times[mode] = {}
        for threshold in thresholds:
            per_class: Dict[str, float] = {}
            for detection in detector.detections(threshold=threshold):
                hours = (detection.detected_at - origin) / 3600
                per_class[detection.class_name] = hours
            times[mode][threshold] = per_class
    return CrosscheckResult(times=times, class_count=len(context.rules))


def detection_rates(
    result: CrosscheckResult,
    mode: str,
    threshold: float,
    horizons: Tuple[int, ...] = (1, 24, 72),
) -> Dict[int, float]:
    """Fraction of classes detected within each horizon (hours)."""
    per_class = result.times[mode][threshold]
    return {
        horizon: sum(
            1 for hours in per_class.values() if hours <= horizon
        )
        / result.class_count
        for horizon in horizons
    }


def render(result: CrosscheckResult) -> str:
    lines = ["Figure 10: time-to-detect per class per threshold (hours)"]
    classes = sorted(
        {
            class_name
            for by_threshold in result.times.values()
            for per_class in by_threshold.values()
            for class_name in per_class
        }
    )
    for mode in ("active", "idle"):
        thresholds = sorted(result.times[mode])
        rows = []
        for class_name in classes:
            cells: List[object] = [class_name]
            for threshold in thresholds:
                hours = result.times[mode][threshold].get(class_name)
                cells.append("ND" if hours is None else f"{hours:.1f}")
            rows.append(tuple(cells))
        lines.append(
            render_table(
                ("class",) + tuple(f"D={t:.1f}" for t in thresholds),
                rows,
                title=f"{mode} experiments",
            )
        )
    for mode, paper in (
        ("active", "72/93/96% within 1/24/72h at D=0.4"),
        ("idle", "40/73/76% within 1/24/72h at D=0.4"),
    ):
        rates = detection_rates(result, mode, 0.4)
        lines.append(
            f"{mode} @D=0.4: "
            + " ".join(
                f"{horizon}h={rate:.0%}" for horizon, rate in rates.items()
            )
            + f"  (paper: {paper})"
        )
    return "\n".join(lines)
