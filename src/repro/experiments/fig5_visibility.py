"""Figure 5 + the Section 3 headline visibility statistics.

Four panels, all Home-VP vs ISP-VP over the ground-truth capture:
(a) unique service IPs per hour, (b) unique domains per hour,
(c) cumulative service IPs per port class (web / NTP / other),
(d) unique devices per hour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.reporting import render_series, render_table
from repro.experiments.context import ExperimentContext
from repro.netflow.records import classify_port
from repro.timeutil import SECONDS_PER_HOUR, STUDY_START

__all__ = ["VisibilityResult", "run", "render"]

_ACTIVE_HOURS = 96  # Nov 15-18


@dataclass
class VisibilityResult:
    home_ips_per_hour: Dict[int, int]
    isp_ips_per_hour: Dict[int, int]
    home_domains_per_hour: Dict[int, int]
    isp_domains_per_hour: Dict[int, int]
    home_devices_per_hour: Dict[int, int]
    isp_devices_per_hour: Dict[int, int]
    cumulative_by_port: Dict[Tuple[str, str], List[Tuple[int, int]]]
    ip_visibility_active: float
    ip_visibility_idle: float
    device_visibility_active: float
    device_visibility_idle: float
    whole_period_ip_visibility_active: float
    whole_period_ip_visibility_idle: float


def _per_hour_sets(events, attribute: str) -> Dict[int, Set]:
    buckets: Dict[int, Set] = defaultdict(set)
    for event in events:
        bucket = (event.timestamp - STUDY_START) // SECONDS_PER_HOUR
        buckets[bucket].add(getattr(event, attribute))
    return buckets


def _counts(buckets: Dict[int, Set]) -> Dict[int, int]:
    return {bucket: len(values) for bucket, values in buckets.items()}


def _mean_ratio(
    home: Dict[int, Set], isp: Dict[int, Set], hours
) -> float:
    ratios = [
        len(isp.get(hour, set())) / len(home[hour])
        for hour in hours
        if home.get(hour)
    ]
    if not ratios:
        return 0.0
    return sum(ratios) / len(ratios)


def run(context: ExperimentContext) -> VisibilityResult:
    capture = context.capture
    home_ips = _per_hour_sets(capture.home_events, "dst_ip")
    isp_ips = _per_hour_sets(capture.isp_events, "dst_ip")
    home_domains = _per_hour_sets(capture.home_events, "fqdn")
    isp_domains = _per_hour_sets(capture.isp_events, "fqdn")
    home_devices = _per_hour_sets(capture.home_events, "device_id")
    isp_devices = _per_hour_sets(capture.isp_events, "device_id")

    hours = sorted(home_ips)
    active_hours = [hour for hour in hours if hour < _ACTIVE_HOURS]
    idle_hours = [hour for hour in hours if hour >= _ACTIVE_HOURS]

    # Figure 5(c): cumulative service IPs per port class at both VPs.
    cumulative: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
    for vantage, events in (
        ("Home-VP", capture.home_events),
        ("ISP-VP", capture.isp_events),
    ):
        by_class: Dict[str, Set[int]] = defaultdict(set)
        series: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
        for_hour: Dict[int, List] = defaultdict(list)
        for event in events:
            bucket = (event.timestamp - STUDY_START) // SECONDS_PER_HOUR
            for_hour[bucket].append(event)
        for hour in sorted(for_hour):
            for event in for_hour[hour]:
                by_class[classify_port(event.dst_port)].add(event.dst_ip)
            for port_class in ("web", "ntp", "other"):
                series[port_class].append(
                    (hour, len(by_class[port_class]))
                )
        for port_class, points in series.items():
            cumulative[(vantage, port_class)] = points

    def whole_period(mode_filter: str) -> float:
        home_all = {
            event.dst_ip
            for event in capture.home_events
            if event.mode == mode_filter
        }
        isp_all = {
            event.dst_ip
            for event in capture.isp_events
            if event.mode == mode_filter
        }
        if not home_all:
            return 0.0
        return len(isp_all & home_all) / len(home_all)

    return VisibilityResult(
        home_ips_per_hour=_counts(home_ips),
        isp_ips_per_hour=_counts(isp_ips),
        home_domains_per_hour=_counts(home_domains),
        isp_domains_per_hour=_counts(isp_domains),
        home_devices_per_hour=_counts(home_devices),
        isp_devices_per_hour=_counts(isp_devices),
        cumulative_by_port=cumulative,
        ip_visibility_active=_mean_ratio(home_ips, isp_ips, active_hours),
        ip_visibility_idle=_mean_ratio(home_ips, isp_ips, idle_hours),
        device_visibility_active=_mean_ratio(
            home_devices, isp_devices, active_hours
        ),
        device_visibility_idle=_mean_ratio(
            home_devices, isp_devices, idle_hours
        ),
        whole_period_ip_visibility_active=whole_period("active"),
        whole_period_ip_visibility_idle=whole_period("idle"),
    )


def render(result: VisibilityResult) -> str:
    lines = ["Figure 5: Home-VP vs ISP-VP visibility"]
    lines.append(
        render_series(
            "5(a) Home-VP unique service IPs/hour",
            sorted(result.home_ips_per_hour.items()),
        )
    )
    lines.append(
        render_series(
            "5(a) ISP-VP unique service IPs/hour",
            sorted(result.isp_ips_per_hour.items()),
        )
    )
    lines.append(
        render_series(
            "5(b) Home-VP unique domains/hour",
            sorted(result.home_domains_per_hour.items()),
        )
    )
    lines.append(
        render_series(
            "5(b) ISP-VP unique domains/hour",
            sorted(result.isp_domains_per_hour.items()),
        )
    )
    for (vantage, port_class), points in sorted(
        result.cumulative_by_port.items()
    ):
        lines.append(
            render_series(
                f"5(c) {vantage} cumulative {port_class} IPs", points
            )
        )
    lines.append(
        render_series(
            "5(d) Home-VP unique devices/hour",
            sorted(result.home_devices_per_hour.items()),
        )
    )
    lines.append(
        render_series(
            "5(d) ISP-VP unique devices/hour",
            sorted(result.isp_devices_per_hour.items()),
        )
    )
    lines.append(
        render_table(
            ("metric", "measured", "paper"),
            [
                (
                    "hourly service-IP visibility (active)",
                    f"{result.ip_visibility_active:.1%}",
                    "16%",
                ),
                (
                    "hourly service-IP visibility (idle)",
                    f"{result.ip_visibility_idle:.1%}",
                    "16.5%",
                ),
                (
                    "whole-period IP visibility (active)",
                    f"{result.whole_period_ip_visibility_active:.1%}",
                    "28%",
                ),
                (
                    "whole-period IP visibility (idle)",
                    f"{result.whole_period_ip_visibility_idle:.1%}",
                    "34%",
                ),
                (
                    "device visibility/hour (active)",
                    f"{result.device_visibility_active:.0%}",
                    "67%",
                ),
                (
                    "device visibility/hour (idle)",
                    f"{result.device_visibility_idle:.0%}",
                    "64%",
                ),
            ],
            title="Section 3 headline statistics",
        )
    )
    return "\n".join(lines)
