"""Figure 18 — subscriber lines with *actively used* Alexa Enabled
devices per hour in the wild, against the hourly and daily detection
counts (§7.1, sampled-packet threshold of 10 per hour)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import render_series, render_table
from repro.experiments.context import ExperimentContext

__all__ = ["Fig18Result", "run", "render"]


@dataclass
class Fig18Result:
    hourly_detected: np.ndarray
    daily_detected: np.ndarray
    active_hourly: np.ndarray
    subscribers: int
    packet_threshold: int

    @property
    def peak_active(self) -> int:
        return int(self.active_hourly.max())

    @property
    def peak_active_share(self) -> float:
        daily = float(self.daily_detected.mean())
        if daily == 0:
            return 0.0
        return self.peak_active / daily


def run(context: ExperimentContext) -> Fig18Result:
    wild = context.wild
    return Fig18Result(
        hourly_detected=wild.hourly_counts["Alexa Enabled"],
        daily_detected=wild.daily_counts["Alexa Enabled"],
        active_hourly=wild.alexa_active_hourly,
        subscribers=wild.config.subscribers,
        packet_threshold=wild.config.usage_packet_threshold,
    )


def render(result: Fig18Result) -> str:
    lines = [
        "Figure 18: subscribers with active Alexa Enabled devices per "
        f"hour (threshold {result.packet_threshold} sampled packets)"
    ]
    lines.append(
        render_series(
            "Hourly: Active and Idle",
            list(enumerate(result.hourly_detected)),
        )
    )
    lines.append(
        render_series(
            "Daily: Active and Idle",
            list(enumerate(result.daily_detected)),
        )
    )
    lines.append(
        render_series(
            "Hourly: Active", list(enumerate(result.active_hourly))
        )
    )
    lines.append(
        render_table(
            ("metric", "measured", "paper"),
            [
                (
                    "peak actively-used lines/hour",
                    result.peak_active,
                    "~27k of 15M lines",
                ),
                (
                    "peak active share of detected",
                    f"{result.peak_active_share:.1%}",
                    "~1.2%",
                ),
            ],
            title="usage detection summary",
        )
    )
    return "\n".join(lines)
