"""§7.4 what-if: detection with ISP-resolver DNS visibility.

"Our analysis could be simplified if an ISP/IXP had access to all DNS
queries and responses."  Devices re-resolve their backend domains every
few minutes (TTL-bound), so an ISP observing its own resolver sees a
complete, unsampled record of which hitlist domains each line contacts
— much stronger evidence than 1-in-N sampled flows.

This experiment replays the idle ground truth twice: once with the
sampled flow evidence (the paper's setting) and once with full DNS
evidence (every Home-VP domain contact visible), and compares
time-to-detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.reporting import render_table
from repro.core.detector import FlowDetector
from repro.experiments.context import ExperimentContext
from repro.timeutil import IDLE_START

__all__ = ["DnsVisibilityResult", "run", "render"]


@dataclass
class DnsVisibilityResult:
    #: class -> hours to detect with sampled flow evidence (idle)
    flow_times: Dict[str, float]
    #: class -> hours to detect with full DNS evidence (idle)
    dns_times: Dict[str, float]
    class_count: int

    def detected(self, evidence: str) -> int:
        times = self.flow_times if evidence == "flows" else self.dns_times
        return len(times)

    def median_time(self, evidence: str) -> float:
        times = sorted(
            (self.flow_times if evidence == "flows" else self.dns_times)
            .values()
        )
        if not times:
            return float("nan")
        return times[len(times) // 2]


def run(
    context: ExperimentContext, threshold: float = 0.4
) -> DnsVisibilityResult:
    capture = context.capture
    monitored = context.rules.monitored_domains()

    flow_detector = FlowDetector(
        context.rules, context.hitlist, threshold=threshold
    )
    dns_detector = FlowDetector(
        context.rules, context.hitlist, threshold=threshold
    )
    for event in capture.isp_events:
        if event.mode != "idle" or event.timestamp < IDLE_START:
            continue
        flow_detector.observe_evidence(0, event.fqdn, event.timestamp)
    for event in capture.home_events:
        # Every contact implies DNS resolution activity at the ISP
        # resolver; restrict to monitored domains (the resolver logs
        # everything, but only hitlist domains constitute evidence).
        if event.mode != "idle" or event.timestamp < IDLE_START:
            continue
        if event.fqdn in monitored:
            dns_detector.observe_evidence(0, event.fqdn, event.timestamp)

    def _times(detector: FlowDetector) -> Dict[str, float]:
        return {
            detection.class_name: (detection.detected_at - IDLE_START)
            / 3600
            for detection in detector.detections()
        }

    return DnsVisibilityResult(
        flow_times=_times(flow_detector),
        dns_times=_times(dns_detector),
        class_count=len(context.rules),
    )


def render(result: DnsVisibilityResult) -> str:
    rows = []
    for evidence, label in (
        ("flows", "sampled flows (1/100)"),
        ("dns", "full DNS visibility"),
    ):
        rows.append(
            (
                label,
                f"{result.detected(evidence)}/{result.class_count}",
                f"{result.median_time(evidence):.2f}h",
            )
        )
    table = render_table(
        ("evidence source", "classes detected (idle)", "median time"),
        rows,
        title="§7.4 what-if: DNS visibility vs sampled flows",
    )
    improved = sum(
        1
        for class_name, hours in result.dns_times.items()
        if hours < result.flow_times.get(class_name, float("inf"))
    )
    return (
        f"{table}\nclasses detected faster with DNS evidence: "
        f"{improved} (the privacy trade-off the paper warns about)"
    )
