"""Figure 16 — ECDF of each member AS's share of the detected IoT IPs
at the IXP: a few eyeball ASes dominate, with a long tail."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.ecdf import Ecdf
from repro.analysis.reporting import render_series, render_table
from repro.experiments.context import ExperimentContext

__all__ = ["Fig16Result", "run", "render"]


@dataclass
class Fig16Result:
    #: group -> sorted per-member percentage shares
    shares: Dict[str, List[float]]

    def top_member_share(self, group: str) -> float:
        values = self.shares.get(group, [])
        return values[-1] if values else 0.0

    def skew(self, group: str) -> float:
        """Share of IPs held by the top 5 members."""
        values = self.shares.get(group, [])
        return sum(values[-5:])


def run(context: ExperimentContext) -> Fig16Result:
    ixp = context.ixp
    return Fig16Result(
        shares={
            group: ixp.member_share_ecdf(group)
            for group in ixp.daily_ip_counts
        }
    )


def render(result: Fig16Result) -> str:
    lines = [
        "Figure 16: ECDF of per-member-AS percentage of detected IoT IPs"
    ]
    for group, values in result.shares.items():
        if not values:
            continue
        ecdf = Ecdf(values)
        lines.append(
            render_series(
                f"{group} (share%, F)", ecdf.sampled_points(15)
            )
        )
    rows = [
        (
            group,
            f"{result.top_member_share(group):.1f}%",
            f"{result.skew(group):.0f}%",
        )
        for group in result.shares
    ]
    lines.append(
        render_table(
            ("group", "largest member share", "top-5 member share"),
            rows,
            title=(
                "paper: distributions are skewed — a few eyeball ASes "
                "carry most IoT activity, with a long tail"
            ),
        )
    )
    return "\n".join(lines)
