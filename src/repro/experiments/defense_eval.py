"""Evaluation of counter-detection defenses (future work of §9).

For one device, simulate a day of sampled traffic under each defense
and measure (a) whether its classes remain detectable and (b) how long
detection takes.  The expected ordering — padding useless, throttling a
linear slowdown, CDN fronting a kill switch — is the quantitative
version of the paper's §7.4 hiding discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.detector import FlowDetector
from repro.devices.behavior import DeviceBehavior
from repro.devices.defenses import apply_defense
from repro.devices.profiles import DeviceProfile
from repro.experiments.context import ExperimentContext
from repro.timeutil import SECONDS_PER_HOUR, STUDY_START

__all__ = ["DefenseEvalResult", "run", "render", "DEFENSES"]

DEFENSES: Tuple[str, ...] = ("none", "padding", "throttle", "fronting")


@dataclass
class DefenseEvalResult:
    product: str
    hours: int
    trials: int
    #: defense -> mean hours to first detection (None = never detected)
    detection_hours: Dict[str, Optional[float]]
    #: defense -> mean sampled packets/day (overhead view)
    sampled_packets: Dict[str, float]


def _simulate(
    context: ExperimentContext,
    profile: DeviceProfile,
    hours: int,
    seed: int,
) -> Tuple[Optional[float], int]:
    """One trial: sampled evidence for ``hours``; returns (hours to
    first detection of any of the product's classes, sampled packets)."""
    rng = np.random.default_rng(seed)
    behavior = DeviceBehavior(profile)
    detector = FlowDetector(context.rules, context.hitlist, threshold=0.4)
    sampled_total = 0
    target_classes = set(profile.product.detection_classes)
    for hour in range(hours):
        when = STUDY_START + hour * SECONDS_PER_HOUR
        traffic = behavior.hour_traffic(rng, active=False)
        for fqdn, packets in traffic.packets.items():
            sampled = int(rng.binomial(packets, 1.0 / 100))
            if sampled == 0:
                continue
            sampled_total += sampled
            detector.observe_evidence(0, fqdn, when + 30)
    first: Optional[float] = None
    for detection in detector.detections():
        if detection.class_name in target_classes:
            hours_to = (detection.detected_at - STUDY_START) / 3600
            if first is None or hours_to < first:
                first = hours_to
    return first, sampled_total


def run(
    context: ExperimentContext,
    product: str = "Yi Cam",
    hours: int = 48,
    trials: int = 5,
) -> DefenseEvalResult:
    library = context.scenario.library
    base = library.profile(product)
    detection_hours: Dict[str, Optional[float]] = {}
    sampled_packets: Dict[str, float] = {}
    for defense in DEFENSES:
        if defense == "none":
            profile = base
        else:
            profile = apply_defense(defense, base, library)
        times: List[float] = []
        packets: List[int] = []
        detected_all = True
        for trial in range(trials):
            first, sampled = _simulate(
                context, profile, hours, seed=1000 + trial
            )
            packets.append(sampled)
            if first is None:
                detected_all = False
            else:
                times.append(first)
        detection_hours[defense] = (
            float(np.mean(times)) if detected_all and times else None
        )
        sampled_packets[defense] = float(np.mean(packets))
    return DefenseEvalResult(
        product=product,
        hours=hours,
        trials=trials,
        detection_hours=detection_hours,
        sampled_packets=sampled_packets,
    )


def render(result: DefenseEvalResult) -> str:
    rows = []
    for defense in DEFENSES:
        hours = result.detection_hours[defense]
        rows.append(
            (
                defense,
                "never" if hours is None else f"{hours:.1f}h",
                int(result.sampled_packets[defense]),
            )
        )
    table = render_table(
        ("defense", "mean time to detection", "sampled packets"),
        rows,
        title=(
            f"Defense evaluation: {result.product}, {result.hours}h idle"
            f" x {result.trials} trials (1/100 sampling)"
        ),
    )
    return (
        table
        + "\n(expected: padding changes nothing, throttling delays, "
        "CDN fronting defeats detection — §7.4)"
    )
