"""Figure 17 — per-hour packet counts of a single Alexa Enabled device
at the Home-VP and the ISP-VP, in active and idle modes (§7.1)."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.reporting import render_series, render_table
from repro.experiments.context import ExperimentContext
from repro.timeutil import SECONDS_PER_HOUR, STUDY_START

__all__ = ["Fig17Result", "run", "render"]

_ACTIVE_HOURS = 96


@dataclass
class Fig17Result:
    device: str
    home_per_hour: Dict[int, int]
    isp_per_hour: Dict[int, int]

    def _peak(self, counts: Dict[int, int], active: bool) -> int:
        values = [
            count
            for hour, count in counts.items()
            if (hour < _ACTIVE_HOURS) == active
        ]
        return max(values, default=0)

    @property
    def home_active_peak(self) -> int:
        return self._peak(self.home_per_hour, True)

    @property
    def home_idle_peak(self) -> int:
        return self._peak(self.home_per_hour, False)

    @property
    def isp_active_peak(self) -> int:
        return self._peak(self.isp_per_hour, True)

    @property
    def isp_idle_peak(self) -> int:
        return self._peak(self.isp_per_hour, False)


def run(
    context: ExperimentContext, product: str = "Echo Dot"
) -> Fig17Result:
    capture = context.capture
    # One physical device: the first instance of the product.
    device_id: Optional[int] = None
    for instance in context.schedule.all_instances():
        if instance.product_name == product:
            device_id = instance.device_id
            break
    if device_id is None:
        raise ValueError(f"no instance of {product!r} in the testbeds")
    home: Dict[int, int] = defaultdict(int)
    isp: Dict[int, int] = defaultdict(int)
    for event in capture.home_events:
        if event.device_id == device_id:
            hour = (event.timestamp - STUDY_START) // SECONDS_PER_HOUR
            home[hour] += event.packets
    for event in capture.isp_events:
        if event.device_id == device_id:
            hour = (event.timestamp - STUDY_START) // SECONDS_PER_HOUR
            isp[hour] += event.packets
    return Fig17Result(
        device=product, home_per_hour=dict(home), isp_per_hour=dict(isp)
    )


def render(result: Fig17Result) -> str:
    lines = [
        f"Figure 17: packet counts per hour for one {result.device} "
        "(Home-VP vs ISP-VP)"
    ]
    lines.append(
        render_series(
            "Home-VP packets/hour", sorted(result.home_per_hour.items())
        )
    )
    lines.append(
        render_series(
            "ISP-VP sampled packets/hour",
            sorted(result.isp_per_hour.items()),
        )
    )
    lines.append(
        render_table(
            ("metric", "measured", "paper"),
            [
                (
                    "Home-VP active peak",
                    result.home_active_peak,
                    ">1k packets/hour on activity",
                ),
                (
                    "Home-VP idle peak",
                    result.home_idle_peak,
                    "never reaches the active range",
                ),
                (
                    "ISP-VP active peak",
                    result.isp_active_peak,
                    ">10 sampled packets/hour",
                ),
                (
                    "ISP-VP idle peak",
                    result.isp_idle_peak,
                    "stays at/below ~10",
                ),
            ],
            title="activity separability",
        )
    )
    return "\n".join(lines)
