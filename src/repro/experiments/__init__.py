"""One module per paper artefact (table/figure), plus a shared cached
:class:`~repro.experiments.context.ExperimentContext` so the scenario,
ground-truth capture, and wild runs are computed once per process and
reused by every benchmark."""

from repro.experiments.context import ExperimentContext, get_context

__all__ = ["ExperimentContext", "get_context"]
