"""Figure 6 — visibility of byte-count heavy hitters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.heavyhitters import heavy_hitter_visibility
from repro.analysis.reporting import render_series, render_table
from repro.experiments.context import ExperimentContext

__all__ = ["HeavyHitterResult", "run", "render"]

_ACTIVE_HOURS = 96


@dataclass
class HeavyHitterResult:
    #: fraction -> {hour: visible share}
    per_hour: Dict[float, Dict[int, float]]
    #: fraction -> mean visible share over active / idle hours
    mean_active: Dict[float, float]
    mean_idle: Dict[float, float]


def run(context: ExperimentContext) -> HeavyHitterResult:
    capture = context.capture
    per_hour = heavy_hitter_visibility(
        capture.home_events, capture.isp_events
    )
    mean_active = {}
    mean_idle = {}
    for fraction, by_hour in per_hour.items():
        active = [
            share
            for hour, share in by_hour.items()
            if hour < _ACTIVE_HOURS
        ]
        idle = [
            share
            for hour, share in by_hour.items()
            if hour >= _ACTIVE_HOURS
        ]
        mean_active[fraction] = (
            sum(active) / len(active) if active else 0.0
        )
        mean_idle[fraction] = sum(idle) / len(idle) if idle else 0.0
    return HeavyHitterResult(per_hour, mean_active, mean_idle)


def render(result: HeavyHitterResult) -> str:
    lines = [
        "Figure 6: fraction of top byte-count service IPs visible at "
        "the ISP-VP"
    ]
    for fraction in sorted(result.per_hour):
        lines.append(
            render_series(
                f"top {fraction:.0%} visibility per hour",
                sorted(result.per_hour[fraction].items()),
            )
        )
    lines.append(
        render_table(
            ("top fraction", "active mean", "idle mean", "paper"),
            [
                (
                    f"{fraction:.0%}",
                    f"{result.mean_active[fraction]:.1%}",
                    f"{result.mean_idle[fraction]:.1%}",
                    paper,
                )
                for fraction, paper in (
                    (0.1, ">75% (up to 90%)"),
                    (0.2, "~70%"),
                    (0.3, "~60%"),
                )
            ],
            title="heavy-hitter visibility summary",
        )
    )
    return "\n".join(lines)
