"""Figure 14 — daily detected subscriber lines for the 32 device types
that are neither Alexa Enabled nor Samsung IoT, ordered by their market
popularity band."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.reporting import render_table
from repro.devices.catalog import POPULARITY_BANDS
from repro.experiments.context import ExperimentContext

__all__ = ["Fig14Result", "run", "render", "OTHER_32"]

_EXCLUDED = {
    "Alexa Enabled",
    "Amazon Product",
    "Fire TV",
    "Samsung IoT",
    "Samsung TV",
}


def OTHER_32(context: ExperimentContext) -> List[str]:
    """The 32 non-hierarchy classes, in popularity-band order."""
    catalog = context.scenario.catalog
    band_rank = {band: index for index, band in enumerate(POPULARITY_BANDS)}
    names = [
        spec.name
        for spec in catalog.detection_classes
        if spec.name not in _EXCLUDED
    ]
    return sorted(
        names,
        key=lambda name: (
            band_rank[catalog.detection_class(name).popularity_band],
            name,
        ),
    )


@dataclass
class Fig14Result:
    #: class -> per-day detected line counts
    rows: Dict[str, np.ndarray]
    #: class -> popularity band
    bands: Dict[str, str]
    labels: Dict[str, str]
    order: List[str]


def run(context: ExperimentContext) -> Fig14Result:
    wild = context.wild
    catalog = context.scenario.catalog
    order = OTHER_32(context)
    return Fig14Result(
        rows={name: wild.daily_counts[name] for name in order},
        bands={
            name: catalog.detection_class(name).popularity_band
            for name in order
        },
        labels={
            name: catalog.detection_class(name).label for name in order
        },
        order=order,
    )


def render(result: Fig14Result) -> str:
    rows: List[Tuple[object, ...]] = []
    for name in result.order:
        series = result.rows[name]
        rows.append(
            (
                result.bands[name],
                result.labels[name],
                int(series.mean()),
                int(series.min()),
                int(series.max()),
            )
        )
    table = render_table(
        ("popularity", "class", "mean lines/day", "min", "max"),
        rows,
        title=(
            "Figure 14: daily subscriber lines per device type "
            "(32 classes, popularity-ordered)"
        ),
    )
    return (
        table
        + "\n(paper: counts are stable across days; popular devices are "
        "orders of magnitude more prominent, but even no-market devices "
        "show some deployments)"
    )
