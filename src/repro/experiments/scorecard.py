"""Reproduction scorecard: every headline metric vs its paper target.

Runs the key quantitative checks across the ground-truth and wild
studies and grades each against the paper's reported value with an
explicit tolerance band:

* ``REPRODUCED`` — measured value inside the band;
* ``NEAR`` — outside the band but within 2x of it;
* ``DIVERGENT`` — further out (documented in EXPERIMENTS.md).

The scorecard is the one artefact to look at to judge the reproduction;
``benchmarks/bench_scorecard.py`` regenerates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.analysis.reporting import render_table
from repro.experiments import (
    fig5_visibility,
    fig6_heavy_hitters,
    fig10_crosscheck,
    fig11_isp_wild,
    fig18_usage,
)
from repro.experiments.context import ExperimentContext

__all__ = ["ScoreEntry", "ScorecardResult", "run", "render"]

GRADE_REPRODUCED = "REPRODUCED"
GRADE_NEAR = "NEAR"
GRADE_DIVERGENT = "DIVERGENT"


@dataclass(frozen=True)
class ScoreEntry:
    """One scored metric."""

    section: str
    metric: str
    paper: str
    measured: float
    low: float  # acceptance band
    high: float

    @property
    def grade(self) -> str:
        if self.low <= self.measured <= self.high:
            return GRADE_REPRODUCED
        center = (self.low + self.high) / 2
        half = (self.high - self.low) / 2 or abs(center) or 1.0
        if abs(self.measured - center) <= 2 * half + half:
            return GRADE_NEAR
        return GRADE_DIVERGENT


@dataclass
class ScorecardResult:
    """All scored metrics plus aggregate grades."""

    entries: List[ScoreEntry]

    def count(self, grade: str) -> int:
        return sum(1 for entry in self.entries if entry.grade == grade)

    @property
    def reproduced_fraction(self) -> float:
        if not self.entries:
            return 0.0
        return self.count(GRADE_REPRODUCED) / len(self.entries)


def run(context: ExperimentContext) -> ScorecardResult:
    entries: List[ScoreEntry] = []

    def add(section, metric, paper, measured, low, high):
        entries.append(
            ScoreEntry(
                section=section,
                metric=metric,
                paper=paper,
                measured=float(measured),
                low=low,
                high=high,
            )
        )

    # --- inventory --------------------------------------------------------
    catalog = context.scenario.catalog
    add("Table 1", "unique products", "56", catalog.product_count, 56, 56)
    add("Table 1", "physical devices", "96", catalog.device_count, 96, 96)
    add(
        "Table 1", "manufacturers", "40",
        len(catalog.manufacturers), 40, 40,
    )

    # --- §3 visibility ----------------------------------------------------
    visibility = fig5_visibility.run(context)
    add(
        "§3", "hourly IP visibility, idle", "16.5%",
        visibility.ip_visibility_idle, 0.10, 0.25,
    )
    add(
        "§3", "device visibility/hour, idle", "64%",
        visibility.device_visibility_idle, 0.50, 0.80,
    )
    heavy = fig6_heavy_hitters.run(context)
    add(
        "§3", "top-10% heavy-hitter visibility, active", ">75%",
        heavy.mean_active[0.1], 0.75, 1.0,
    )

    # --- §4 pipeline --------------------------------------------------------
    report = context.hitlist.report
    add(
        "§4.1", "support domains", "19",
        report.support_domains, 19, 19,
    )
    add(
        "§4.2.1", "dedicated/IoT-specific share", "50% (217/434)",
        report.dedicated_domains / report.iot_specific_domains,
        0.40, 0.65,
    )
    add(
        "§4.2.2", "Censys-recovered domains", "8",
        report.censys_recovered_domains, 8, 8,
    )
    add(
        "§4.2.3", "excluded products", "7",
        len(report.excluded_products), 7, 9,
    )
    add(
        "§4.3", "Man.+Pr. rules / manufacturers", "77%",
        (20 + 11) / len(catalog.manufacturers), 0.70, 0.85,
    )

    # --- §5 crosscheck --------------------------------------------------------
    crosscheck = fig10_crosscheck.run(context, thresholds=(0.4,))
    active = fig10_crosscheck.detection_rates(crosscheck, "active", 0.4)
    idle = fig10_crosscheck.detection_rates(crosscheck, "idle", 0.4)
    add("§5", "active detected <=1h @D=0.4", "72%", active[1], 0.60, 0.90)
    add("§5", "active detected <=72h @D=0.4", "96%", active[72], 0.90, 1.0)
    add("§5", "idle detected <=72h @D=0.4", "76%", idle[72], 0.65, 0.95)
    add(
        "§5", "classes never detected idle", "6",
        len(context.rules) - len(crosscheck.times["idle"][0.4]),
        4, 8,
    )

    # --- §6 wild ----------------------------------------------------------------
    wild = fig11_isp_wild.run(context)
    add(
        "§6.2", "daily Alexa penetration", "~14%",
        wild.alexa_daily_penetration, 0.11, 0.16,
    )
    add(
        "§6.2", "daily any-IoT penetration", "~20%",
        wild.any_daily_penetration, 0.16, 0.26,
    )
    add(
        "§6.2", "Samsung daily/hourly ratio", "~6x",
        wild.samsung_daily_to_hourly, 4.0, 8.0,
    )
    add(
        "§6.2", "Alexa daily/hourly ratio", "~2x",
        wild.alexa_daily_to_hourly, 1.3, 2.7,
    )

    # --- §6.3 IXP --------------------------------------------------------------
    ixp = context.ixp
    alexa_ixp = ixp.daily_ip_counts["Alexa Enabled"].mean()
    samsung_ixp = ixp.daily_ip_counts["Samsung IoT"].mean()
    add(
        "§6.3", "IXP Alexa/Samsung IP ratio", "~2.2x",
        alexa_ixp / max(1.0, samsung_ixp), 1.5, 6.0,
    )
    shares = ixp.member_share_ecdf("Alexa Enabled")
    add(
        "§6.3", "top-5 member share of IoT IPs", "majority",
        sum(shares[-5:]) / 100.0, 0.5, 1.0,
    )

    # --- §7.1 usage ---------------------------------------------------------------
    usage = fig18_usage.run(context)
    add(
        "§7.1", "peak active share of detected Alexa", "~1.2%",
        usage.peak_active_share, 0.005, 0.04,
    )
    return ScorecardResult(entries)


def render(result: ScorecardResult) -> str:
    rows = [
        (
            entry.section,
            entry.metric,
            entry.paper,
            f"{entry.measured:.3g}",
            f"[{entry.low:g}, {entry.high:g}]",
            entry.grade,
        )
        for entry in result.entries
    ]
    table = render_table(
        ("section", "metric", "paper", "measured", "band", "grade"),
        rows,
        title="Reproduction scorecard",
    )
    summary = (
        f"\n{result.count(GRADE_REPRODUCED)} reproduced, "
        f"{result.count(GRADE_NEAR)} near, "
        f"{result.count(GRADE_DIVERGENT)} divergent "
        f"({result.reproduced_fraction:.0%} inside band)"
    )
    return table + summary
