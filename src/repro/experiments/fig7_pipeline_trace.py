"""Figure 7 — the methodology flowchart, traced on live data.

Figure 7 in the paper is a diagram; the faithful reproduction of a
diagram is an execution trace.  For a set of representative domains —
one per branch of the flowchart — this experiment records every
decision the pipeline took: classification, passive-DNS verdict,
certificate fallback, and final hitlist membership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.reporting import render_table
from repro.core.domains import ROLE_GENERIC
from repro.experiments.context import ExperimentContext

__all__ = ["TraceRow", "Fig7Result", "run", "render"]


@dataclass(frozen=True)
class TraceRow:
    """Pipeline decisions for one domain."""

    fqdn: str
    branch: str  # which flowchart branch this exemplifies
    role: str
    infra_status: Optional[str]
    censys_recovered: Optional[bool]
    in_hitlist: bool


@dataclass
class Fig7Result:
    rows: List[TraceRow]


def _pick_examples(context: ExperimentContext) -> List[Tuple[str, str]]:
    """(fqdn, branch label) — one per flowchart outcome."""
    library = context.scenario.library
    examples: List[Tuple[str, str]] = []

    examples.append(
        (
            library.rule_domains["Philips Dev."][0],
            "primary -> dedicated cluster -> hitlist",
        )
    )
    examples.append(
        (
            library.rule_domains["Anova Sousvide"][0],
            "primary -> exclusive cloud VM -> hitlist",
        )
    )
    # a Censys-recovered DNSDB gap
    recovered = sorted(context.hitlist.recoveries)[0]
    examples.append(
        (recovered, "primary -> no DNSDB record -> Censys -> hitlist")
    )
    # an unrecoverable gap (WeMo: no HTTPS)
    wemo = next(
        usage.fqdn
        for usage in library.profile("WeMo Plug").usages
        if library.domain(usage.fqdn).dnsdb_gap
    )
    examples.append(
        (wemo, "primary -> no record -> no certificate -> dropped")
    )
    # a shared CDN-hosted vendor domain
    shared = next(
        fqdn
        for fqdn, spec in sorted(library.domains.items())
        if spec.hosting == "cdn" and spec.registrant == "Amazon"
    )
    examples.append((shared, "primary -> shared CDN -> dropped"))
    # a generic domain
    generic = next(
        usage.fqdn
        for usage in library.profile("Echo Dot").usages
        if library.domain(usage.fqdn).role_hint == ROLE_GENERIC
    )
    examples.append((generic, "generic -> dropped at classification"))
    return examples


def run(context: ExperimentContext) -> Fig7Result:
    hitlist = context.hitlist
    rows: List[TraceRow] = []
    for fqdn, branch in _pick_examples(context):
        classification = hitlist.classifications.get(fqdn)
        verdict = hitlist.verdicts.get(fqdn)
        recovered: Optional[bool] = None
        if verdict is not None and verdict.status == "no_record":
            recovered = fqdn in hitlist.recoveries
        rows.append(
            TraceRow(
                fqdn=fqdn,
                branch=branch,
                role=(
                    classification.role if classification else "unseen"
                ),
                infra_status=verdict.status if verdict else None,
                censys_recovered=recovered,
                in_hitlist=fqdn in hitlist.domain_classes,
            )
        )
    return Fig7Result(rows)


def render(result: Fig7Result) -> str:
    rows = [
        (
            row.branch,
            row.fqdn,
            row.role,
            row.infra_status or "-",
            "-" if row.censys_recovered is None else (
                "yes" if row.censys_recovered else "no"
            ),
            "yes" if row.in_hitlist else "no",
        )
        for row in result.rows
    ]
    return render_table(
        (
            "flowchart branch", "example domain", "role",
            "infrastructure", "censys", "in hitlist",
        ),
        rows,
        title="Figure 7: pipeline decision trace on live data",
    )
