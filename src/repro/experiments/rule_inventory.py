"""Section 4.3 rule inventory: detection levels, domain counts per rule,
platform backends, and manufacturer coverage (the paper's 77%)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reporting import render_table
from repro.core.levels import validate_distinguishability
from repro.devices.catalog import (
    LEVEL_MANUFACTURER,
    LEVEL_PLATFORM,
    LEVEL_PRODUCT,
)
from repro.experiments.context import ExperimentContext

__all__ = ["RuleInventory", "run", "render"]


@dataclass
class RuleInventory:
    rows: List[Tuple[str, str, int, int, str]]
    platform_rules: int
    manufacturer_rules: int
    product_rules: int
    platform_backends: Tuple[str, ...]
    manufacturer_coverage: float
    conflicts: int
    min_domains: int
    max_domains: int


def run(context: ExperimentContext) -> RuleInventory:
    catalog = context.scenario.catalog
    rules = context.rules

    def chain_domains(class_name: str) -> int:
        """Domains monitored for a class including its ancestors (the
        paper's "1 to 67 domains" counts the whole chain)."""
        union = set(rules.rule(class_name).domains)
        for ancestor in rules.ancestors(class_name):
            union.update(rules.rule(ancestor).domains)
        return len(union)

    rows = []
    for rule in sorted(rules, key=lambda item: item.class_name):
        spec = catalog.detection_class(rule.class_name)
        rows.append(
            (
                spec.label,
                rule.level,
                chain_domains(rule.class_name),
                len(rule.critical),
                rule.parent or "-",
            )
        )
    by_level = {
        level: sum(1 for rule in rules if rule.level == level)
        for level in (
            LEVEL_PLATFORM, LEVEL_MANUFACTURER, LEVEL_PRODUCT,
        )
    }
    domain_counts = [
        chain_domains(rule.class_name) for rule in rules
    ]
    return RuleInventory(
        rows=rows,
        platform_rules=by_level[LEVEL_PLATFORM],
        manufacturer_rules=by_level[LEVEL_MANUFACTURER],
        product_rules=by_level[LEVEL_PRODUCT],
        platform_backends=catalog.platforms(),
        manufacturer_coverage=catalog.detected_manufacturer_coverage(),
        conflicts=len(validate_distinguishability(rules)),
        min_domains=min(domain_counts),
        max_domains=max(domain_counts),
    )


def render(inventory: RuleInventory) -> str:
    table = render_table(
        ("class", "level", "domains", "critical", "parent"),
        inventory.rows,
        title="Section 4.3: generated detection rules",
    )
    summary = render_table(
        ("metric", "measured", "paper"),
        [
            ("platform-level rules", inventory.platform_rules, "6 (Fig 10)"),
            (
                "manufacturer-level rules",
                inventory.manufacturer_rules,
                "20",
            ),
            ("product-level rules", inventory.product_rules, "11"),
            (
                "distinct platform backends",
                len(inventory.platform_backends),
                "3 (§4.3.2) / 5 (§9)",
            ),
            (
                "manufacturer coverage",
                f"{inventory.manufacturer_coverage:.0%}",
                "77%",
            ),
            (
                "rule domain range",
                f"{inventory.min_domains}-{inventory.max_domains}",
                "1-67",
            ),
            (
                "indistinguishable rule pairs",
                inventory.conflicts,
                "0 (the paper ensures domain sets differ)",
            ),
        ],
        title="rule inventory summary",
    )
    return f"{table}\n{summary}"
