"""Per-device traffic profiles: domains, hosting, ports, and rates.

This module turns the catalog (Table 1 + Figure 10) into the concrete
world the simulation runs against:

* every detection class gets its ``rule_domains`` Primary FQDNs under the
  manufacturer's (or platform operator's) second-level domain;
* gossiping vendors additionally get *auxiliary* domains hosted on the
  shared CDN (these are the ~200 domains the dedicated/shared classifier
  must reject);
* excluded products (Google Home, Apple TV, …) get domains hosted only
  on shared infrastructure, which is what makes the pipeline drop them;
* a pool of *generic* domains (NTP pools, video CDNs, trackers) is
  contacted by many devices and must be filtered by the domain
  classification step;
* a small set of *support* domains (third-party services like the
  ``samsung-*.whisk.com`` example) completes the Section 4.1 taxonomy.

Rates are packets/hour means; the behaviour layer turns them into
per-hour packet counts.  All derived quantities (jitter, subsets) come
from stable hashes, so the world is identical across runs and processes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.devices.catalog import (
    DetectionClassSpec,
    DeviceCatalog,
    LEVEL_MANUFACTURER,
    LEVEL_PLATFORM,
    LEVEL_PRODUCT,
    ProductSpec,
    default_catalog,
)
from repro.netflow.records import PROTO_TCP, PROTO_UDP

__all__ = [
    "DomainSpec",
    "DomainUsage",
    "DeviceProfile",
    "WildBehavior",
    "ProfileLibrary",
    "build_profile_library",
    "HOSTING_DEDICATED",
    "HOSTING_CLOUD_VM",
    "HOSTING_CDN",
    "ROLE_PRIMARY",
    "ROLE_SUPPORT",
    "ROLE_GENERIC",
]

HOSTING_DEDICATED = "dedicated"
HOSTING_CLOUD_VM = "cloud_vm"
HOSTING_CDN = "cdn"

ROLE_PRIMARY = "primary"
ROLE_SUPPORT = "support"
ROLE_GENERIC = "generic"

#: Classes whose rule domains live on rented cloud VMs instead of a
#: vendor-operated cluster (exercises the EC2-tenancy path of §4.2.1).
_CLOUD_VM_CLASSES = frozenset(
    {"Anova Sousvide", "AppKettle", "Insteon Hub", "GE Microwave"}
)

#: (class, index) rule domains missing from DNSDB but recoverable via the
#: Censys certificate/banner fallback — 8 domains across 5 devices (§4.2.2).
_CENSYS_RECOVERED: Tuple[Tuple[str, int], ...] = (
    ("Amcrest Cam.", 4),
    ("Amcrest Cam.", 5),
    ("Dlink Motion Sens.", 4),
    ("ZModo Doorbell", 3),
    ("ZModo Doorbell", 4),
    ("Reolink Cam.", 1),
    ("Yi Camera", 2),
    ("Yi Camera", 3),
)

#: Classes with one extra candidate domain that is missing from DNSDB
#: *and* does not speak HTTPS, so it cannot be recovered and is dropped
#: from the final rule (Roku: 9 candidates -> 8 rule domains).
_UNRECOVERABLE_EXTRA = frozenset({"Roku TV"})

#: Classes with active-only rule domains (used by §7.1 usage detection).
#: Samsung TV's 12 active-only domains (streaming/menu backends) are why
#: the class stays undetectable in idle ground truth (§5): at D=0.4 its
#: rule needs 6 of 16 domains but only 4 are reachable while idle.
_ACTIVE_ONLY_CLASSES = {
    "TP-link Dev.": 1,
    "Ring Doorbell": 1,
    "Samsung TV": 12,
}

#: Per-class multiplier applied to idle rates while the device is in
#: active use.  Defaults to a mild 3x; voice assistants stream audio on
#: use (large boost), cameras/laconic devices push video only when
#: exercised (very large boost over a near-zero idle rate), Samsung's
#: firmware/update domains barely react to usage.
#: Continuous-upload devices (cameras, doorbells with cloud storage)
#: push far more traffic through their anchor domain than a heartbeat
#: would; these anchors dominate the byte-count heavy hitters of §3.
_ANCHOR_BOOSTS = {
    "Amcrest Cam.": 5.0,
    "Reolink Cam.": 5.0,
    "Yi Camera": 5.0,
    "Wansview Cam.": 5.0,
    "Ring Doorbell": 4.0,
    "Nest Device": 4.0,
    "Blink Hub & Cam.": 3.0,
    "Fire TV": 3.0,
    "Roku TV": 3.0,
}

_DEFAULT_ACTIVE_MULTIPLIER = 3.0
_ACTIVE_MULTIPLIERS = {
    "Alexa Enabled": 20.0,
    "Amazon Product": 4.0,
    "Fire TV": 4.0,
    "Samsung IoT": 2.5,
    "Samsung TV": 2.5,
    "Meross Dooropener": 300.0,
    "Microseven Cam.": 400.0,
    "Luohe Cam.": 400.0,
    "Anova Sousvide": 300.0,
    "Insteon Hub": 200.0,
}

#: Idle gossip scale of excluded products (no detection class to derive
#: it from): Apple/Google devices gossip heavily, plugs barely speak.
_EXCLUDED_IDLE_SCALE = {
    "Apple TV": 1.4,
    "Google Home": 1.2,
    "Google Home Mini": 1.0,
    "LG TV": 0.8,
    "Lefun Cam": 0.3,
    "SwitchBot": 0.12,
    "WeMo Plug": 0.08,
    "Wink 2": 0.3,
}

#: Entertainment-flavoured classes showing a diurnal usage pattern in the
#: wild (§6.2: only Alexa Enabled and Samsung IoT families do).
_DIURNAL_CLASSES = frozenset(
    {"Alexa Enabled", "Amazon Product", "Fire TV", "Samsung IoT",
     "Samsung TV"}
)

#: Baseline probability that a wild owner actively uses the device in a
#: given hour (scaled by the diurnal profile).  TVs are watched for
#: hours daily; voice assistants see short interactions.
_DEFAULT_ACTIVE_USE_PROB = 0.004
_ACTIVE_USE_PROBS = {
    "Alexa Enabled": 0.006,
    "Amazon Product": 0.006,
    "Fire TV": 0.02,
    "Samsung IoT": 0.012,
    "Samsung TV": 0.02,
}


def _stable_unit(*parts: object) -> float:
    """Deterministic float in [0, 1) derived from the arguments."""
    digest = hashlib.blake2b(
        "|".join(str(part) for part in parts).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


def _jitter(*parts: object, low: float = 0.5, high: float = 1.6) -> float:
    """Deterministic multiplicative jitter in [low, high)."""
    return low + (high - low) * _stable_unit(*parts)


def _slug(name: str) -> str:
    return "".join(ch for ch in name.lower() if ch.isalnum())


@dataclass(frozen=True)
class DomainSpec:
    """One FQDN of the simulated world and how it is hosted."""

    fqdn: str
    registrant: str  # owner organisation of the SLD
    registrant_kind: str  # "vendor" | "platform" | "generic" | "third_party"
    hosting: str  # HOSTING_*
    ports: Tuple[int, ...]
    protocol: int
    role_hint: str  # ROLE_* — ground-truth annotation for tests
    rule_class: Optional[str] = None
    critical: bool = False
    dnsdb_gap: bool = False  # DNSDB never observed this name
    https: bool = True  # presents a TLS certificate

    @property
    def primary_port(self) -> int:
        return self.ports[0]


@dataclass(frozen=True)
class DomainUsage:
    """How one device talks to one domain."""

    fqdn: str
    idle_pph: float  # mean packets/hour while idle
    active_pph: float  # mean packets/hour while actively used
    active_only: bool = False
    bytes_per_packet: int = 120

    def rate(self, active: bool) -> float:
        if active:
            return self.active_pph
        return 0.0 if self.active_only else self.idle_pph


@dataclass(frozen=True)
class WildBehavior:
    """Per-class usage behaviour of wild (in-the-wild) owners."""

    diurnal: bool
    active_use_prob: float  # baseline probability of active use per hour


@dataclass(frozen=True)
class DeviceProfile:
    """The complete traffic profile of one product."""

    product: ProductSpec
    usages: Tuple[DomainUsage, ...]

    def domains(self) -> Tuple[str, ...]:
        return tuple(usage.fqdn for usage in self.usages)

    def usage_for(self, fqdn: str) -> DomainUsage:
        for usage in self.usages:
            if usage.fqdn == fqdn:
                return usage
        raise KeyError(f"{self.product.name!r} does not contact {fqdn!r}")


class ProfileLibrary:
    """All domains, device profiles and per-class rule-domain sets."""

    def __init__(
        self,
        catalog: DeviceCatalog,
        domains: Dict[str, DomainSpec],
        profiles: Dict[str, DeviceProfile],
        rule_domains: Dict[str, Tuple[str, ...]],
        critical_domains: Dict[str, Tuple[str, ...]],
        wild_behaviors: Dict[str, WildBehavior],
    ) -> None:
        self.catalog = catalog
        self.domains = domains
        self.profiles = profiles
        self.rule_domains = rule_domains
        self.critical_domains = critical_domains
        self.wild_behaviors = wild_behaviors

    def domain(self, fqdn: str) -> DomainSpec:
        return self.domains[fqdn]

    def profile(self, product_name: str) -> DeviceProfile:
        return self.profiles[product_name]

    def domains_with_role(self, role: str) -> List[DomainSpec]:
        return [
            spec for spec in self.domains.values() if spec.role_hint == role
        ]

    def domains_with_hosting(self, hosting: str) -> List[DomainSpec]:
        return [
            spec for spec in self.domains.values() if spec.hosting == hosting
        ]

    def contacted_domains(self) -> Set[str]:
        """Every FQDN contacted by at least one testbed device."""
        return {
            usage.fqdn
            for profile in self.profiles.values()
            for usage in profile.usages
        }

    def class_member_profiles(self, class_name: str) -> List[DeviceProfile]:
        spec = self.catalog.detection_class(class_name)
        return [self.profiles[name] for name in spec.member_products]


# ---------------------------------------------------------------------------
# rate model


class _RateModel:
    """Central knobs for packet rates (packets/hour means).

    Calibrated against the paper's observations: Figure 8 (most idle
    device/domain pairs average 10-1,000 packets/hour), Figure 9 (active
    experiments push some domains past 10k packets/hour) and Figure 17
    (a single Alexa device's ISP-VP sample counts).
    """

    ANCHOR_IDLE = 60.0  # first (heartbeat) rule domain of a class
    SECONDARY_IDLE = 30.0  # remaining rule domains
    AUX_IDLE = 18.0  # auxiliary CDN-hosted vendor domains
    GENERIC_IDLE = 14.0  # generic services (NTP, trackers)
    GOSSIP_ACTIVE_MULTIPLIER = 1.5  # aux/generic boost while active
    ACTIVE_ONLY_PPH = 300.0  # active-only domains while in use

    def active_multiplier(self, class_name: str) -> float:
        return _ACTIVE_MULTIPLIERS.get(
            class_name, _DEFAULT_ACTIVE_MULTIPLIER
        )

    def anchor(self, spec: DetectionClassSpec, fqdn: str) -> float:
        boost = _ANCHOR_BOOSTS.get(spec.name, 1.0)
        return self.ANCHOR_IDLE * boost * spec.idle_rate_scale * _jitter(
            fqdn, "anchor"
        )

    def secondary(self, spec: DetectionClassSpec, fqdn: str) -> float:
        return self.SECONDARY_IDLE * spec.idle_rate_scale * _jitter(
            fqdn, "secondary"
        )

    def auxiliary(self, fqdn: str) -> float:
        return self.AUX_IDLE * _jitter(fqdn, "aux")

    def generic(self, fqdn: str) -> float:
        return self.GENERIC_IDLE * _jitter(fqdn, "generic")


# ---------------------------------------------------------------------------
# generation helpers

_MQTT_PORT = 8883

#: Deterministic port choice per domain: mostly HTTPS, some MQTT/other.
def _ports_for(fqdn: str, role: str) -> Tuple[Tuple[int, ...], int]:
    draw = _stable_unit(fqdn, "port")
    if role == ROLE_GENERIC and "ntp" in fqdn:
        return (123,), PROTO_UDP
    if draw < 0.62:
        return (443,), PROTO_TCP
    if draw < 0.74:
        return (80,), PROTO_TCP
    if draw < 0.82:
        return (8080,), PROTO_TCP
    if draw < 0.92:
        return (_MQTT_PORT,), PROTO_TCP
    return (8443,), PROTO_TCP


def _vendor_sld(manufacturer: str) -> str:
    return f"{_slug(manufacturer)}.example"


_PLATFORM_SLDS = {
    "avs": "amazon.example",  # AVS lives under Amazon's own SLD
    "tuya": "tuya.example",
    "smarter": "smartercloud.example",
    "magichome": "magichome.example",
    "osram": "osram.example",
}

#: Whois identity of each platform SLD.  Platforms whose backend lives
#: under the vendor's own SLD (AVS, MagicHome, Osram) share the vendor's
#: registrant so ownership stays consistent per SLD.
_PLATFORM_REGISTRANTS = {
    "avs": ("Amazon", "vendor"),
    "tuya": ("Tuya", "platform"),
    "smarter": ("SmarterCloud", "platform"),
    "magichome": ("MagicHome", "vendor"),
    "osram": ("Osram", "vendor"),
}


def _class_sld(spec: DetectionClassSpec, catalog: DeviceCatalog) -> str:
    if spec.platform is not None:
        return _PLATFORM_SLDS[spec.platform]
    manufacturer = catalog.product(spec.member_products[0]).manufacturer
    return _vendor_sld(manufacturer)


def _rule_fqdns(spec: DetectionClassSpec, catalog: DeviceCatalog) -> List[str]:
    """Generate the Primary rule FQDNs of a detection class.

    Child classes monitor only their *additional* domains (Fire TV's 33
    beyond the Amazon Product set; Samsung TV's 16 beyond Samsung IoT):
    the hierarchy gate supplies the parent's evidence, and keeping the
    child's rule specific is what prevents a chatty parent-class device
    from satisfying the child's rule (the paper's false-positive
    guard: "the domain sets per device differ").
    """
    sld = _class_sld(spec, catalog)
    label = _slug(spec.name)
    if spec.name == "Alexa Enabled":
        return [f"avs-alexa.na.{sld}"]
    return [
        f"{label}-d{index:02d}.{sld}"
        for index in range(spec.rule_domains)
    ]


def _candidate_fqdns(
    spec: DetectionClassSpec, catalog: DeviceCatalog
) -> List[str]:
    """Rule FQDNs plus any unrecoverable extra candidates."""
    names = _rule_fqdns(spec, catalog)
    if spec.name in _UNRECOVERABLE_EXTRA:
        sld = _class_sld(spec, catalog)
        names.append(f"{_slug(spec.name)}-gap.{sld}")
    return names


# Auxiliary (shared-hosted) vendor domains per gossip level.
_AUX_DOMAIN_COUNTS = {
    "Amazon": 24,
    "Samsung": 12,
    "Philips": 6,
    "Xiaomi": 6,
    "Roku": 8,
    "TP-Link": 4,
    "Ring": 5,
    "Nest": 6,
    "SmartThings": 5,
    "Yi": 4,
    "Blink": 3,
    "Sengled": 3,
    "Honeywell": 4,
    "Osram": 3,
    "D-Link": 3,
    "Amcrest": 3,
    "Reolink": 3,
    "Wansview": 2,
    "ZModo": 2,
    "Netatmo": 3,
    "GE": 2,
    "Meross": 2,
    "Insteon": 2,
    "Icsee": 2,
    "Smarter": 3,
    "MagicHome": 2,
    "SmartLife": 3,
    "Anova": 2,
    "AppKettle": 2,
    "Ubell": 2,
    "Luohe": 1,
    "Microseven": 1,
}

#: Domains of excluded products: (manufacturer, count, hosting) — all on
#: shared infrastructure except LG's single dedicated domain.
_EXCLUDED_PRODUCT_DOMAINS = {
    "Google Home": ("Google", 7, HOSTING_CDN),
    "Google Home Mini": ("Google", 5, HOSTING_CDN),
    "Apple TV": ("Apple", 11, HOSTING_CDN),
    "Lefun Cam": ("Lefun", 3, HOSTING_CDN),
    "SwitchBot": ("SwitchBot", 2, HOSTING_CDN),
    "LG TV": ("LG", 4, HOSTING_CDN),  # first domain overridden to dedicated
    "WeMo Plug": ("Belkin", 3, HOSTING_DEDICATED),  # but DNSDB-gapped
    "Wink 2": ("Wink", 3, HOSTING_DEDICATED),  # but DNSDB-gapped
}

_GENERIC_NTP = tuple(f"ntp{index}.pool.example" for index in range(6))
_GENERIC_SERVICES = tuple(
    f"{name}.example"
    for name in (
        "videocdn", "musicstream", "weatherapi", "speedtest", "maps",
        "search", "captive-portal", "oem-updates", "fonts", "social",
    )
) + tuple(f"ads{index}.tracker.example" for index in range(12)) + tuple(
    f"telemetry{index}.analytics.example" for index in range(8)
) + tuple(f"generic{index:02d}.webservices.example" for index in range(54))

#: Support domains (§4.1): third-party services complementing specific
#: IoT products, dedicated hosting, vendor-tagged labels.
_SUPPORT_DOMAINS: Tuple[Tuple[str, str, str], ...] = tuple(
    (fqdn, registrant, product)
    for fqdn, registrant, product in (
        ("samsung-recipes.whisk.example", "Whisk", "Samsung Fridge"),
        ("samsung-images.whisk.example", "Whisk", "Samsung Fridge"),
        ("honeywell.weatherfeed.example", "WeatherFeed", "Honeywell T-stat"),
        ("netatmo.weatherfeed.example", "WeatherFeed", "Netatmo Weather"),
        ("nest.weatherfeed.example", "WeatherFeed", "Nest T-stat"),
        ("ring.videostore.example", "VideoStore", "Ring Doorbell"),
        ("blink.videostore.example", "VideoStore", "Blink Cam"),
        ("wansview.videostore.example", "VideoStore", "Wansview Cam"),
        ("yi.videostore.example", "VideoStore", "Yi Cam"),
        ("amcrest.videostore.example", "VideoStore", "Amcrest Cam"),
        ("reolink.videostore.example", "VideoStore", "Reolink Cam"),
        ("anova.recipecloud.example", "RecipeCloud", "Anova Sousvide"),
        ("appkettle.recipecloud.example", "RecipeCloud", "Appkettle"),
        ("smarter.recipecloud.example", "RecipeCloud",
         "Smarter Coffee Machine"),
        ("ge.recipecloud.example", "RecipeCloud", "GE Microwave"),
        ("philips.lightscenes.example", "LightScenes", "Philips Hue"),
        ("sengled.lightscenes.example", "LightScenes", "Sengled"),
        ("osram.lightscenes.example", "LightScenes", "Lightify"),
        ("insteon.automate.example", "Automate", "Insteon"),
    )
)


# ---------------------------------------------------------------------------
# library construction


def build_profile_library(
    catalog: Optional[DeviceCatalog] = None,
    shared_hosting_classes: Optional[Set[str]] = None,
) -> ProfileLibrary:
    """Build the full deterministic world of domains and device profiles.

    ``shared_hosting_classes`` moves the rule domains of the named
    detection classes onto the shared CDN — the §7.4 what-if ("a good
    way to hide IoT services"): the dedicated/shared classifier must
    then reject those domains and the classes become undetectable.
    """
    catalog = catalog or default_catalog()
    shared_hosting_classes = shared_hosting_classes or set()
    unknown = shared_hosting_classes - {
        spec.name for spec in catalog.detection_classes
    }
    if unknown:
        raise ValueError(
            f"unknown classes in shared_hosting_classes: {sorted(unknown)}"
        )
    rates = _RateModel()
    domains: Dict[str, DomainSpec] = {}
    rule_domains: Dict[str, Tuple[str, ...]] = {}
    critical_domains: Dict[str, Tuple[str, ...]] = {}
    wild_behaviors: Dict[str, WildBehavior] = {}

    def add_domain(spec: DomainSpec) -> None:
        existing = domains.get(spec.fqdn)
        if existing is not None:
            if existing != spec:
                raise ValueError(
                    f"conflicting specs for domain {spec.fqdn!r}"
                )
            return
        domains[spec.fqdn] = spec

    censys_recovered = {
        (class_name, index) for class_name, index in _CENSYS_RECOVERED
    }

    # ---- rule (Primary, detectable) domains per detection class -------
    for spec in catalog.detection_classes:
        fqdns = _candidate_fqdns(spec, catalog)
        if spec.name in shared_hosting_classes:
            hosting = HOSTING_CDN  # §7.4: service hidden behind a CDN
        elif spec.name in _CLOUD_VM_CLASSES:
            hosting = HOSTING_CLOUD_VM
        else:
            hosting = HOSTING_DEDICATED
        active_only_budget = _ACTIVE_ONLY_CLASSES.get(spec.name, 0)
        surviving: List[str] = []
        for index, fqdn in enumerate(fqdns):
            if fqdn in domains:
                # Inherited from the parent class (e.g. Fire TV reusing
                # the Amazon Product domains) — already registered.
                surviving.append(fqdn)
                continue
            gap = (spec.name, index) in censys_recovered
            unrecoverable = fqdn.endswith(
                f"{_slug(spec.name)}-gap.{_class_sld(spec, catalog)}"
            ) and spec.name in _UNRECOVERABLE_EXTRA
            ports, protocol = _ports_for(fqdn, ROLE_PRIMARY)
            if gap:
                # Censys recovery requires HTTPS.
                ports, protocol = (443,), PROTO_TCP
            if unrecoverable:
                ports, protocol = (80,), PROTO_TCP
            if spec.platform is not None:
                registrant, registrant_kind = _PLATFORM_REGISTRANTS[
                    spec.platform
                ]
            else:
                registrant = catalog.product(
                    spec.member_products[0]
                ).manufacturer
                registrant_kind = "vendor"
            add_domain(
                DomainSpec(
                    fqdn=fqdn,
                    registrant=registrant,
                    registrant_kind=registrant_kind,
                    hosting=hosting,
                    ports=ports,
                    protocol=protocol,
                    role_hint=ROLE_PRIMARY,
                    rule_class=spec.name,
                    critical=index < spec.critical_domain_count,
                    dnsdb_gap=gap or unrecoverable,
                    https=not unrecoverable,
                )
            )
            if not unrecoverable:
                surviving.append(fqdn)
        rule_domains[spec.name] = tuple(surviving)
        critical_domains[spec.name] = tuple(
            surviving[: spec.critical_domain_count]
        )
        wild_behaviors[spec.name] = WildBehavior(
            diurnal=spec.name in _DIURNAL_CLASSES,
            active_use_prob=_ACTIVE_USE_PROBS.get(
                spec.name, _DEFAULT_ACTIVE_USE_PROB
            ),
        )
        del active_only_budget  # handled when building device usages

    # ---- auxiliary shared-hosted vendor domains ------------------------
    aux_by_manufacturer: Dict[str, List[str]] = {}
    for manufacturer, count in _AUX_DOMAIN_COUNTS.items():
        sld = _vendor_sld(manufacturer)
        fqdns = [f"cdn-assets{index:02d}.{sld}" for index in range(count)]
        for fqdn in fqdns:
            ports, protocol = _ports_for(fqdn, ROLE_PRIMARY)
            add_domain(
                DomainSpec(
                    fqdn=fqdn,
                    registrant=manufacturer,
                    registrant_kind="vendor",
                    hosting=HOSTING_CDN,
                    ports=ports,
                    protocol=protocol,
                    role_hint=ROLE_PRIMARY,
                )
            )
        aux_by_manufacturer[manufacturer] = fqdns

    # ---- excluded products' domains ------------------------------------
    excluded_domains: Dict[str, List[str]] = {}
    for product_name, (manufacturer, count, hosting) in (
        _EXCLUDED_PRODUCT_DOMAINS.items()
    ):
        sld = _vendor_sld(manufacturer)
        label = _slug(product_name)
        fqdns = [f"{label}-d{index}.{sld}" for index in range(count)]
        for index, fqdn in enumerate(fqdns):
            domain_hosting = hosting
            dnsdb_gap = False
            https = True
            if product_name == "LG TV" and index == count - 1:
                # LG's one dedicated domain is a minor, low-traffic one
                # ("we are left with only one out of 4 domains").
                domain_hosting = HOSTING_DEDICATED
            if product_name in ("WeMo Plug", "Wink 2"):
                # Dedicated but invisible to both DNSDB and Censys — the
                # paper's "could not identify sufficient information".
                dnsdb_gap = True
                https = False
            ports, protocol = _ports_for(fqdn, ROLE_PRIMARY)
            if not https:
                ports, protocol = (80,), PROTO_TCP
            add_domain(
                DomainSpec(
                    fqdn=fqdn,
                    registrant=manufacturer,
                    registrant_kind="vendor",
                    hosting=domain_hosting,
                    ports=ports,
                    protocol=protocol,
                    role_hint=ROLE_PRIMARY,
                    dnsdb_gap=dnsdb_gap,
                    https=https,
                )
            )
        excluded_domains[product_name] = fqdns

    # ---- support domains -------------------------------------------------
    support_by_product: Dict[str, List[str]] = {}
    for fqdn, registrant, product_name in _SUPPORT_DOMAINS:
        ports, protocol = _ports_for(fqdn, ROLE_SUPPORT)
        add_domain(
            DomainSpec(
                fqdn=fqdn,
                registrant=registrant,
                registrant_kind="third_party",
                hosting=HOSTING_DEDICATED,
                ports=ports,
                protocol=protocol,
                role_hint=ROLE_SUPPORT,
            )
        )
        support_by_product.setdefault(product_name, []).append(fqdn)

    # ---- generic domains -------------------------------------------------
    for fqdn in _GENERIC_NTP + _GENERIC_SERVICES:
        ports, protocol = _ports_for(fqdn, ROLE_GENERIC)
        add_domain(
            DomainSpec(
                fqdn=fqdn,
                registrant="GenericWeb",
                registrant_kind="generic",
                hosting=HOSTING_CDN,
                ports=ports,
                protocol=protocol,
                role_hint=ROLE_GENERIC,
            )
        )

    # ---- device profiles ---------------------------------------------------
    profiles: Dict[str, DeviceProfile] = {}
    for product in catalog.products:
        usages = _build_usages(
            product,
            catalog,
            rates,
            rule_domains,
            aux_by_manufacturer,
            excluded_domains,
            support_by_product,
        )
        profiles[product.name] = DeviceProfile(product, tuple(usages))

    return ProfileLibrary(
        catalog=catalog,
        domains=domains,
        profiles=profiles,
        rule_domains=rule_domains,
        critical_domains=critical_domains,
        wild_behaviors=wild_behaviors,
    )


def _select_subset(
    items: Sequence[str], fraction: float, salt: str
) -> List[str]:
    """Deterministically keep ~``fraction`` of ``items`` (always >= 1)."""
    kept = [
        item for item in items if _stable_unit(item, salt) < fraction
    ]
    if not kept and items:
        kept = [items[0]]
    return kept


def _build_usages(
    product: ProductSpec,
    catalog: DeviceCatalog,
    rates: _RateModel,
    rule_domains: Dict[str, Tuple[str, ...]],
    aux_by_manufacturer: Dict[str, List[str]],
    excluded_domains: Dict[str, List[str]],
    support_by_product: Dict[str, List[str]],
) -> List[DomainUsage]:
    usages: Dict[str, DomainUsage] = {}
    specs = sorted(
        catalog.classes_for_product(product.name),
        key=lambda spec: spec.rule_domains,
    )
    # How chatty this product is outside its rule domains.
    if specs:
        gossip_scale = min(
            1.5, max(spec.idle_rate_scale for spec in specs)
        )
    else:
        gossip_scale = _EXCLUDED_IDLE_SCALE.get(product.name, 0.6)

    def add(
        fqdn: str, idle: float, active: float, active_only: bool = False
    ) -> None:
        if fqdn in usages:
            return
        usages[fqdn] = DomainUsage(
            fqdn=fqdn,
            idle_pph=0.0 if active_only else idle,
            active_pph=active,
            active_only=active_only,
            bytes_per_packet=int(90 + 700 * _stable_unit(fqdn, "bpp")),
        )

    # Rule domains of every class the product belongs to.  The most
    # specific class drives which fraction of the parent's domains the
    # product contacts (e.g. Echo Dot touches ~2/3 of Amazon Product
    # domains; Fire TV touches all 67).
    contacted: Set[str] = set()
    for spec in specs:
        fqdns = rule_domains[spec.name]
        if spec.name == "Amazon Product" and product.name != "Fire TV":
            subset = [fqdns[0]] + _select_subset(
                fqdns[1:], 0.66, product.name
            )
        else:
            subset = list(fqdns)
        active_only_budget = _ACTIVE_ONLY_CLASSES.get(spec.name, 0)
        multiplier = rates.active_multiplier(spec.name)
        for index, fqdn in enumerate(subset):
            if fqdn in contacted:
                continue
            contacted.add(fqdn)
            is_anchor = index == 0
            idle = (
                rates.anchor(spec, fqdn)
                if is_anchor
                else rates.secondary(spec, fqdn)
            )
            active_only = (
                not is_anchor
                and active_only_budget > 0
                and index >= len(subset) - active_only_budget
            )
            add(
                fqdn,
                idle,
                idle * multiplier
                if not active_only
                else rates.ACTIVE_ONLY_PPH,
                active_only=active_only,
            )

    # Domains of excluded products.
    for index, fqdn in enumerate(excluded_domains.get(product.name, [])):
        idle = rates.auxiliary(fqdn) * gossip_scale * (
            6.0 if index == 0 else 2.0
        )
        add(fqdn, idle, idle * rates.GOSSIP_ACTIVE_MULTIPLIER)

    # Auxiliary shared vendor domains (gossip traffic).
    aux = aux_by_manufacturer.get(product.manufacturer, [])
    aux_subset = _select_subset(aux, 0.75, product.name) if aux else []
    for fqdn in aux_subset:
        idle = rates.auxiliary(fqdn) * gossip_scale
        add(fqdn, idle, idle * rates.GOSSIP_ACTIVE_MULTIPLIER)

    # Support domains.
    for fqdn in support_by_product.get(product.name, []):
        idle = rates.auxiliary(fqdn) * gossip_scale
        add(fqdn, idle, idle * rates.GOSSIP_ACTIVE_MULTIPLIER)

    # Generic traffic: an NTP pool plus a handful of generic services.
    ntp = _GENERIC_NTP[
        int(_stable_unit(product.name, "ntp") * len(_GENERIC_NTP))
    ]
    add(ntp, rates.generic(ntp) * gossip_scale, rates.generic(ntp) * 2)
    generic_count = 3 + int(_stable_unit(product.name, "gcount") * 8)
    start = int(
        _stable_unit(product.name, "gstart") * len(_GENERIC_SERVICES)
    )
    for offset in range(generic_count):
        fqdn = _GENERIC_SERVICES[(start + offset) % len(_GENERIC_SERVICES)]
        idle = rates.generic(fqdn) * gossip_scale
        add(fqdn, idle, idle * rates.GOSSIP_ACTIVE_MULTIPLIER)

    return list(usages.values())
