"""The two IoT testbeds and the automated experiment schedule.

Section 2 of the paper: 96 devices across two testbeds (Europe and US)
tunnel all traffic through a VPN endpoint on one ISP subscriber line
(the Home-VP).  Active experiments (November 15th-18th, 2019) drive
9,810 automated power and functional interactions; idle experiments
(November 23th-25th) leave the devices untouched after an initial
power-on.  Testbed 1's active experiments start after Testbed 2's
(the paper notes the offset in Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.devices.behavior import DeviceBehavior, InteractionKind
from repro.devices.catalog import DeviceCatalog
from repro.devices.profiles import ProfileLibrary
from repro.timeutil import (
    ACTIVE_END,
    ACTIVE_START,
    IDLE_END,
    IDLE_START,
    SECONDS_PER_HOUR,
)

__all__ = ["DeviceInstance", "Testbed", "ExperimentSchedule"]

#: Total automated interactions across the active experiment window.
TOTAL_INTERACTIONS = 9810


@dataclass(frozen=True)
class DeviceInstance:
    """One physical device in one testbed."""

    device_id: int
    product_name: str
    testbed: str  # "eu" (Testbed 1) or "us" (Testbed 2)

    def __str__(self) -> str:
        return f"{self.product_name}@{self.testbed}"


@dataclass
class Testbed:
    """A testbed: the set of device instances deployed at one site."""

    name: str
    devices: List[DeviceInstance] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.devices)


def build_testbeds(catalog: DeviceCatalog) -> Tuple[Testbed, Testbed]:
    """Instantiate the paper's two testbeds (96 devices total)."""
    eu = Testbed("eu")
    us = Testbed("us")
    device_id = 0
    for product in catalog.products:
        for site in product.testbeds:
            instance = DeviceInstance(device_id, product.name, site)
            (eu if site == "eu" else us).devices.append(instance)
            device_id += 1
    return eu, us


@dataclass(frozen=True)
class ScheduledHour:
    """One device-hour of the ground-truth schedule."""

    instance: DeviceInstance
    hour_start: int
    mode: str  # "active" | "idle"
    power_interactions: int
    functional_interactions: int
    startup: bool


class ExperimentSchedule:
    """The full ground-truth experiment timetable.

    Interactions are spread over the active window deterministically
    (seeded), skipping devices whose experiments could not be automated
    (``idle_only`` products, which only participate in the idle window).
    Testbed 1 ("eu") starts its active experiments ``testbed1_delay_hours``
    after Testbed 2 ("us").
    """

    def __init__(
        self,
        catalog: DeviceCatalog,
        library: ProfileLibrary,
        seed: int = 20191115,
        testbed1_delay_hours: int = 12,
    ) -> None:
        self.catalog = catalog
        self.library = library
        self.seed = seed
        self.testbed1_delay_hours = testbed1_delay_hours
        self.testbed_eu, self.testbed_us = build_testbeds(catalog)
        self.behaviors: Dict[int, DeviceBehavior] = {
            instance.device_id: DeviceBehavior(
                library.profile(instance.product_name)
            )
            for instance in self.all_instances()
        }
        self._interaction_plan = self._plan_interactions()

    def all_instances(self) -> List[DeviceInstance]:
        return self.testbed_eu.devices + self.testbed_us.devices

    @property
    def device_count(self) -> int:
        return len(self.testbed_eu) + len(self.testbed_us)

    def _automatable_instances(self) -> List[DeviceInstance]:
        return [
            instance
            for instance in self.all_instances()
            if not self.catalog.product(instance.product_name).idle_only
        ]

    def _active_hours_for(self, instance: DeviceInstance) -> List[int]:
        start = ACTIVE_START
        if instance.testbed == "eu":
            start += self.testbed1_delay_hours * SECONDS_PER_HOUR
        return list(range(start, ACTIVE_END, SECONDS_PER_HOUR))

    def _plan_interactions(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Distribute the 9,810 interactions over (device, hour) slots.

        Returns ``(device_id, hour_start) -> (power, functional)``.
        Roughly a third of interactions are power interactions (driven by
        the TP-Link smart plugs), the rest functional.
        """
        rng = np.random.default_rng(self.seed)
        plan: Dict[Tuple[int, int], Tuple[int, int]] = {}
        instances = self._automatable_instances()
        slots = [
            (instance.device_id, hour)
            for instance in instances
            for hour in self._active_hours_for(instance)
        ]
        choices = rng.integers(0, len(slots), size=TOTAL_INTERACTIONS)
        kinds = rng.random(TOTAL_INTERACTIONS) < (1 / 3)
        for slot_index, is_power in zip(choices, kinds):
            device_id, hour = slots[int(slot_index)]
            power, functional = plan.get((device_id, hour), (0, 0))
            if is_power:
                power += 1
            else:
                functional += 1
            plan[(device_id, hour)] = (power, functional)
        return plan

    def interactions_at(
        self, device_id: int, hour_start: int
    ) -> Tuple[int, int]:
        """(power, functional) interactions for a device-hour."""
        return self._interaction_plan.get((device_id, hour_start), (0, 0))

    @property
    def total_interactions(self) -> int:
        return sum(
            power + functional
            for power, functional in self._interaction_plan.values()
        )

    def iter_schedule(self) -> Iterator[ScheduledHour]:
        """Yield every device-hour of both experiment windows in time
        order."""
        entries: List[ScheduledHour] = []
        for instance in self.all_instances():
            active_hours = set(self._active_hours_for(instance))
            idle_only = self.catalog.product(
                instance.product_name
            ).idle_only
            for hour in range(ACTIVE_START, ACTIVE_END, SECONDS_PER_HOUR):
                if idle_only or hour not in active_hours:
                    # Device is connected but not exercised.
                    entries.append(
                        ScheduledHour(
                            instance, hour, "idle", 0, 0,
                            startup=hour == ACTIVE_START,
                        )
                    )
                    continue
                power, functional = self.interactions_at(
                    instance.device_id, hour
                )
                entries.append(
                    ScheduledHour(
                        instance,
                        hour,
                        "active",
                        power,
                        functional,
                        startup=hour == min(active_hours),
                    )
                )
            for hour in range(IDLE_START, IDLE_END, SECONDS_PER_HOUR):
                entries.append(
                    ScheduledHour(
                        instance, hour, "idle", 0, 0,
                        startup=hour == IDLE_START,
                    )
                )
        entries.sort(key=lambda entry: (entry.hour_start, entry.instance.device_id))
        return iter(entries)
