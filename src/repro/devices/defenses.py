"""Counter-detection defenses — the paper's future-work direction.

Section 9: "we would like to investigate how to minimize the harm of
potential attacks and surveillance using IoT devices."  The related
work (Apthorpe et al.) proposes traffic shaping; Section 7.4 observes
that shared infrastructure hides services.  This module implements
three device-side defenses as *profile transformations*, so the same
simulation and detection pipeline can evaluate each one:

* :func:`pad_with_cover_traffic` — add cover flows to popular generic
  services so the device's traffic mix looks like ordinary browsing.
  Defeats nothing by itself: detection keys on *which dedicated
  endpoints* are contacted, not on traffic proportions.
* :func:`throttle_rule_domains` — rate-limit contacts to the vendor's
  dedicated backends (batching heartbeats).  Slows detection roughly
  linearly in the throttle factor, at a functionality cost.
* :func:`front_through_cdn` — move backend access behind a shared CDN
  (domain fronting).  The only defense that breaks the methodology, at
  the cost of re-architecting the service (matches §7.4's conclusion).

Each transformation returns a new :class:`DeviceProfile`; nothing else
in the pipeline needs to change.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence, Tuple

from repro.devices.profiles import (
    DeviceProfile,
    DomainUsage,
    ProfileLibrary,
)

__all__ = [
    "pad_with_cover_traffic",
    "throttle_rule_domains",
    "front_through_cdn",
    "apply_defense",
]

#: Popular generic services used as cover-traffic destinations.
_COVER_DOMAINS: Tuple[str, ...] = (
    "videocdn.example",
    "search.example",
    "fonts.example",
    "social.example",
)


def pad_with_cover_traffic(
    profile: DeviceProfile, cover_pph: float = 200.0
) -> DeviceProfile:
    """Add constant-rate cover traffic towards generic services.

    The padded profile emits ``cover_pph`` extra packets/hour spread
    over popular shared destinations.  Rule-domain contacts are
    untouched, which is exactly why this defense fails against the
    destination-based methodology.
    """
    if cover_pph < 0:
        raise ValueError("cover traffic rate must be non-negative")
    existing = {usage.fqdn for usage in profile.usages}
    per_domain = cover_pph / len(_COVER_DOMAINS)
    additions = tuple(
        DomainUsage(
            fqdn=fqdn,
            idle_pph=per_domain,
            active_pph=per_domain,
            bytes_per_packet=640,  # video-sized cover
        )
        for fqdn in _COVER_DOMAINS
        if fqdn not in existing
    )
    return replace(profile, usages=profile.usages + additions)


def throttle_rule_domains(
    profile: DeviceProfile,
    library: ProfileLibrary,
    factor: float = 10.0,
) -> DeviceProfile:
    """Divide the rates towards dedicated rule domains by ``factor``.

    Models firmware that batches heartbeats/telemetry.  Generic and
    shared-hosted traffic is untouched (it carries no evidence).
    """
    if factor < 1:
        raise ValueError("throttle factor must be >= 1")
    monitored = {
        fqdn
        for fqdns in library.rule_domains.values()
        for fqdn in fqdns
    }
    throttled = tuple(
        replace(
            usage,
            idle_pph=usage.idle_pph / factor,
            active_pph=usage.active_pph / factor,
        )
        if usage.fqdn in monitored
        else usage
        for usage in profile.usages
    )
    return replace(profile, usages=throttled)


def front_through_cdn(
    profile: DeviceProfile,
    library: ProfileLibrary,
    front_domain: str = "videocdn.example",
) -> DeviceProfile:
    """Redirect all rule-domain traffic through one shared CDN name.

    Domain fronting: the device still exchanges the same volume, but
    every monitored flow now targets a shared CDN endpoint that the
    dedicated/shared classifier can never attribute.  The evidence
    stream towards dedicated endpoints drops to zero.
    """
    monitored = {
        fqdn
        for fqdns in library.rule_domains.values()
        for fqdn in fqdns
    }
    fronted_rate_idle = sum(
        usage.idle_pph
        for usage in profile.usages
        if usage.fqdn in monitored
    )
    fronted_rate_active = sum(
        usage.active_pph
        for usage in profile.usages
        if usage.fqdn in monitored
    )
    kept = tuple(
        usage for usage in profile.usages if usage.fqdn not in monitored
    )
    front = DomainUsage(
        fqdn=front_domain,
        idle_pph=fronted_rate_idle,
        active_pph=fronted_rate_active,
        bytes_per_packet=480,
    )
    return replace(profile, usages=kept + (front,))


_DEFENSES = {
    "padding": pad_with_cover_traffic,
    "throttle": None,  # needs the library argument
    "fronting": None,
}


def apply_defense(
    name: str,
    profile: DeviceProfile,
    library: ProfileLibrary,
    **kwargs,
) -> DeviceProfile:
    """Apply a defense by name: ``padding``, ``throttle``, ``fronting``."""
    if name == "padding":
        return pad_with_cover_traffic(profile, **kwargs)
    if name == "throttle":
        return throttle_rule_domains(profile, library, **kwargs)
    if name == "fronting":
        return front_through_cdn(profile, library, **kwargs)
    raise ValueError(
        f"unknown defense {name!r}; choose from padding/throttle/fronting"
    )
