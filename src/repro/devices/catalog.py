"""The device catalog: Table 1 of the paper plus the detection-class
structure of Section 4.3 / Figure 10.

*Products* are the 56 unique devices under test (96 physical devices:
products deployed in both testbeds count twice).  *Detection classes*
are the 37 rule targets of Figure 10 — 6 platform-level, 20
manufacturer-level and 11 product-level — plus the class hierarchy the
paper defines (Fire TV ⊂ Amazon Product ⊂ Alexa Enabled;
Samsung TV ⊂ Samsung IoT).

Products excluded from detection (shared backend infrastructure or
insufficient data — Section 4.2.3) carry ``detection_classes=()`` and an
``exclusion_reason`` describing why the hitlist pipeline is expected to
drop them.  The pipeline *rediscovers* these exclusions from the
simulated DNS/TLS data; the annotations here are only used by tests to
assert the rediscovery matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CATEGORIES",
    "POPULARITY_BANDS",
    "LEVEL_PLATFORM",
    "LEVEL_MANUFACTURER",
    "LEVEL_PRODUCT",
    "ProductSpec",
    "DetectionClassSpec",
    "DeviceCatalog",
    "default_catalog",
]

CATEGORIES = (
    "Surveillance",
    "Smart Hubs",
    "Home Automation",
    "Video",
    "Audio",
    "Appliances",
)

#: Amazon market-rank bands used on the left axis of Figure 14.
POPULARITY_BANDS = (
    "Top 10",
    "Top 100",
    "Top 200",
    "Top 500",
    "Top 2k",
    "10k",
    "No Market",
    "Other",
)

LEVEL_PLATFORM = "Platform"
LEVEL_MANUFACTURER = "Manufacturer"
LEVEL_PRODUCT = "Product"

_LEVEL_ABBREVIATIONS = {
    LEVEL_PLATFORM: "Pl.",
    LEVEL_MANUFACTURER: "Man.",
    LEVEL_PRODUCT: "Pr.",
}


@dataclass(frozen=True)
class ProductSpec:
    """One row of Table 1 — a unique product under test."""

    name: str
    category: str
    manufacturer: str
    testbeds: Tuple[str, ...]  # deployment: ("eu",), ("us",), or both
    detection_classes: Tuple[str, ...] = ()
    idle_only: bool = False  # experiments could not be automated
    exclusion_reason: Optional[str] = None

    @property
    def instances(self) -> int:
        """Physical devices this product contributes to the testbeds."""
        return len(self.testbeds)

    @property
    def detectable(self) -> bool:
        return bool(self.detection_classes)


@dataclass(frozen=True)
class DetectionClassSpec:
    """One row of Figure 10 — a detection-rule target.

    ``rule_domains`` is N, the number of IoT-specific Primary domains the
    rule monitors.  ``parent`` encodes the paper's class hierarchy: a
    child may only be claimed once its parent has been detected.
    ``platform`` names the backend platform operator for platform-level
    classes.  ``popularity_band`` feeds Figure 14; ``penetration`` is the
    simulated fraction of ISP subscriber lines owning a device of this
    class (chosen so headline percentages match the paper's).
    """

    name: str
    level: str
    rule_domains: int
    member_products: Tuple[str, ...]
    parent: Optional[str] = None
    platform: Optional[str] = None
    critical_domain_count: int = 0  # domains that must always be seen
    popularity_band: str = "Other"
    penetration: float = 0.001
    idle_rate_scale: float = 1.0  # multiplier on idle traffic volume

    @property
    def label(self) -> str:
        """Figure-10 style label, e.g. ``"Yi Camera(Man.)"``."""
        return f"{self.name}({_LEVEL_ABBREVIATIONS[self.level]})"


def _product(
    name: str,
    category: str,
    manufacturer: str,
    classes: Sequence[str] = (),
    testbeds: Sequence[str] = ("eu", "us"),
    idle_only: bool = False,
    exclusion_reason: Optional[str] = None,
) -> ProductSpec:
    return ProductSpec(
        name=name,
        category=category,
        manufacturer=manufacturer,
        testbeds=tuple(testbeds),
        detection_classes=tuple(classes),
        idle_only=idle_only,
        exclusion_reason=exclusion_reason,
    )


# ---------------------------------------------------------------------------
# Table 1 — 56 unique products, 96 physical devices.

_SHARED = "relies exclusively on shared (CDN/generic-cloud) infrastructure"
_INSUFFICIENT = "insufficient DNSDB/Censys information for its domains"
_ONE_OF_FOUR = "only one of four domains on dedicated infrastructure"

_PRODUCTS: Tuple[ProductSpec, ...] = (
    # Surveillance ---------------------------------------------------------
    _product("Amcrest Cam", "Surveillance", "Amcrest", ["Amcrest Cam."]),
    _product("Blink Cam", "Surveillance", "Blink", ["Blink Hub & Cam."]),
    _product(
        "Blink Hub", "Surveillance", "Blink", ["Blink Hub & Cam."],
        testbeds=("eu",),
    ),
    _product("Icsee Doorbell", "Surveillance", "Icsee", ["Icsee Doorbell"]),
    _product(
        "Lefun Cam", "Surveillance", "Lefun",
        exclusion_reason=_SHARED, testbeds=("us",),
    ),
    _product(
        "Luohe Cam", "Surveillance", "Luohe", ["Luohe Cam."],
    ),
    _product(
        "Microseven Cam", "Surveillance", "Microseven",
        ["Microseven Cam."], testbeds=("us",),
    ),
    _product("Reolink Cam", "Surveillance", "Reolink", ["Reolink Cam."]),
    _product("Ring Doorbell", "Surveillance", "Ring", ["Ring Doorbell"]),
    _product(
        "Ubell Doorbell", "Surveillance", "Ubell", ["Ubell Doorbell"],
    ),
    _product("Wansview Cam", "Surveillance", "Wansview", ["Wansview Cam."]),
    _product("Yi Cam", "Surveillance", "Yi", ["Yi Camera"]),
    _product("ZModo Doorbell", "Surveillance", "ZModo", ["ZModo Doorbell"]),
    # Smart Hubs -----------------------------------------------------------
    _product("Insteon", "Smart Hubs", "Insteon", ["Insteon Hub"]),
    _product("Lightify", "Smart Hubs", "Osram", ["Lightify Hub"]),
    _product("Philips Hue", "Smart Hubs", "Philips", ["Philips Dev."]),
    _product("Sengled", "Smart Hubs", "Sengled", ["Sengled Dev."]),
    _product(
        "Smartthings", "Smart Hubs", "SmartThings", ["Smartthings Dev."]
    ),
    _product(
        "SwitchBot", "Smart Hubs", "SwitchBot",
        exclusion_reason=_SHARED, testbeds=("eu",),
    ),
    _product(
        "Wink 2", "Smart Hubs", "Wink",
        exclusion_reason=_INSUFFICIENT, testbeds=("us",),
    ),
    _product("Xiaomi Home", "Smart Hubs", "Xiaomi", ["Xiaomi Dev."]),
    # Home Automation ------------------------------------------------------
    _product(
        "D-Link Mov Sensor", "Home Automation", "D-Link",
        ["Dlink Motion Sens."],
    ),
    _product(
        "Flux Bulb", "Home Automation", "MagicHome", ["Flux Bulb"],
    ),
    _product(
        "Honeywell T-stat", "Home Automation", "Honeywell",
        ["Honeywell T-stat"],
    ),
    _product(
        "Magichome Strip", "Home Automation", "MagicHome",
        ["Magichome Stripe"],
    ),
    _product(
        "Meross Door Opener", "Home Automation", "Meross",
        ["Meross Dooropener"],
    ),
    _product("Nest T-stat", "Home Automation", "Nest", ["Nest Device"]),
    _product(
        "Philips Bulb", "Home Automation", "Philips", ["Philips Dev."],
        testbeds=("eu",),
    ),
    _product(
        "Smartlife Bulb", "Home Automation", "SmartLife", ["Smartlife"]
    ),
    _product(
        "Smartlife Remote", "Home Automation", "SmartLife", ["Smartlife"],
        testbeds=("eu",),
    ),
    _product(
        "TP-Link Bulb", "Home Automation", "TP-Link", ["TP-link Dev."]
    ),
    _product(
        "TP-Link Plug", "Home Automation", "TP-Link", ["TP-link Dev."]
    ),
    _product(
        "WeMo Plug", "Home Automation", "Belkin",
        exclusion_reason=_INSUFFICIENT,
    ),
    _product(
        "Xiaomi Strip", "Home Automation", "Xiaomi", ["Xiaomi Dev."],
        testbeds=("eu",),
    ),
    _product("Xiaomi Plug", "Home Automation", "Xiaomi", ["Xiaomi Dev."]),
    # Video ------------------------------------------------------------
    _product(
        "Apple TV", "Video", "Apple", exclusion_reason=_SHARED,
    ),
    _product(
        "Fire TV", "Video", "Amazon",
        ["Alexa Enabled", "Amazon Product", "Fire TV"],
    ),
    _product(
        "LG TV", "Video", "LG", exclusion_reason=_ONE_OF_FOUR,
        testbeds=("eu",),
    ),
    _product("Roku TV", "Video", "Roku", ["Roku TV"], testbeds=("us",)),
    _product(
        "Samsung TV", "Video", "Samsung", ["Samsung IoT", "Samsung TV"]
    ),
    # Audio ------------------------------------------------------------
    _product(
        "Allure with Alexa", "Audio", "Allure", ["Alexa Enabled"],
        testbeds=("us",),
    ),
    _product(
        "Echo Dot", "Audio", "Amazon", ["Alexa Enabled", "Amazon Product"]
    ),
    _product(
        "Echo Spot", "Audio", "Amazon", ["Alexa Enabled", "Amazon Product"]
    ),
    _product(
        "Echo Plus", "Audio", "Amazon",
        ["Alexa Enabled", "Amazon Product"],
    ),
    _product(
        "Google Home Mini", "Audio", "Google", exclusion_reason=_SHARED,
    ),
    _product(
        "Google Home", "Audio", "Google", exclusion_reason=_SHARED,
        testbeds=("eu",),
    ),
    # Appliances ---------------------------------------------------------
    _product(
        "Anova Sousvide", "Appliances", "Anova", ["Anova Sousvide"],
        testbeds=("us",),
    ),
    _product("Appkettle", "Appliances", "AppKettle", ["AppKettle"]),
    _product(
        "GE Microwave", "Appliances", "GE", ["GE Microwave"],
        testbeds=("us",),
    ),
    _product(
        "Netatmo Weather", "Appliances", "Netatmo",
        ["Netatmo Weather St."],
    ),
    _product(
        "Samsung Dryer", "Appliances", "Samsung", ["Samsung IoT"],
        idle_only=True, testbeds=("eu",),
    ),
    _product(
        "Samsung Fridge", "Appliances", "Samsung", ["Samsung IoT"],
        idle_only=True, testbeds=("eu",),
    ),
    _product(
        "Smarter Brewer", "Appliances", "Smarter", ["Smarter Coffee"],
    ),
    _product(
        "Smarter Coffee Machine", "Appliances", "Smarter",
        ["Smarter Coffee"],
    ),
    _product("Smarter iKettle", "Appliances", "Smarter", ["iKettle"]),
    _product(
        "Xiaomi Rice Cooker", "Appliances", "Xiaomi", ["Xiaomi Dev."],
    ),
)


# ---------------------------------------------------------------------------
# Figure 10 — detection classes: 6 platform-, 20 manufacturer-,
# 11 product-level.


def _cls(
    name: str,
    level: str,
    rule_domains: int,
    members: Sequence[str],
    parent: Optional[str] = None,
    platform: Optional[str] = None,
    critical: int = 0,
    band: str = "Other",
    penetration: float = 0.001,
    idle_scale: float = 1.0,
) -> DetectionClassSpec:
    return DetectionClassSpec(
        name=name,
        level=level,
        rule_domains=rule_domains,
        member_products=tuple(members),
        parent=parent,
        platform=platform,
        critical_domain_count=critical,
        popularity_band=band,
        penetration=penetration,
        idle_rate_scale=idle_scale,
    )


_ALEXA_MEMBERS = (
    "Echo Dot",
    "Echo Spot",
    "Echo Plus",
    "Allure with Alexa",
    "Fire TV",
)
_AMAZON_MEMBERS = ("Echo Dot", "Echo Spot", "Echo Plus", "Fire TV")

_DETECTION_CLASSES: Tuple[DetectionClassSpec, ...] = (
    # --- the Alexa / Amazon hierarchy -------------------------------------
    _cls(
        "Alexa Enabled", LEVEL_PLATFORM, 1, _ALEXA_MEMBERS,
        platform="avs", critical=1, band="Top 10", penetration=0.14,
        idle_scale=1.1,
    ),
    _cls(
        "Amazon Product", LEVEL_MANUFACTURER, 33, _AMAZON_MEMBERS,
        parent="Alexa Enabled", band="Top 10", penetration=0.085,
        idle_scale=0.8,
    ),
    _cls(
        "Fire TV", LEVEL_PRODUCT, 33, ("Fire TV",),
        parent="Amazon Product", band="Top 10", penetration=0.021,
        idle_scale=0.8,
    ),
    # --- the Samsung hierarchy --------------------------------------------
    _cls(
        "Samsung IoT", LEVEL_MANUFACTURER, 14,
        ("Samsung TV", "Samsung Dryer", "Samsung Fridge"),
        critical=1, band="Top 10", penetration=0.082, idle_scale=0.8,
    ),
    _cls(
        "Samsung TV", LEVEL_PRODUCT, 16, ("Samsung TV",),
        parent="Samsung IoT", band="Top 10", penetration=0.058,
        idle_scale=0.8,
    ),
    # --- remaining platform-level classes ---------------------------------
    _cls(
        "Smartlife", LEVEL_PLATFORM, 4,
        ("Smartlife Bulb", "Smartlife Remote"), platform="tuya",
        band="Top 500", penetration=0.0035, idle_scale=0.12,
    ),
    _cls(
        "Flux Bulb", LEVEL_PLATFORM, 2, ("Flux Bulb",),
        platform="magichome", band="Top 2k", penetration=0.0011, idle_scale=0.12,
    ),
    _cls(
        "iKettle", LEVEL_PLATFORM, 1, ("Smarter iKettle",),
        platform="smarter", band="Top 100", penetration=0.00095, idle_scale=0.15,
    ),
    _cls(
        "Smarter Coffee", LEVEL_PLATFORM, 1,
        ("Smarter Brewer", "Smarter Coffee Machine"), platform="smarter",
        band="Top 200", penetration=0.00052, idle_scale=0.15,
    ),
    _cls(
        "Lightify Hub", LEVEL_PLATFORM, 2, ("Lightify",),
        platform="osram", band="Top 500", penetration=0.0016, idle_scale=0.2,
    ),
    # --- manufacturer-level classes ----------------------------------------
    _cls(
        "Philips Dev.", LEVEL_MANUFACTURER, 5,
        ("Philips Hue", "Philips Bulb"), band="Top 10",
        penetration=0.0095, idle_scale=0.6,
    ),
    _cls(
        "Smartthings Dev.", LEVEL_MANUFACTURER, 2, ("Smartthings",),
        band="Top 10", penetration=0.0041, idle_scale=0.5,
    ),
    _cls(
        "Netatmo Weather St.", LEVEL_MANUFACTURER, 1,
        ("Netatmo Weather",), band="Top 10", penetration=0.0028, idle_scale=0.4,
    ),
    _cls(
        "Meross Dooropener", LEVEL_MANUFACTURER, 1,
        ("Meross Door Opener",), band="Top 10", penetration=0.0024,
        idle_scale=0.002,
    ),
    _cls(
        "Wansview Cam.", LEVEL_MANUFACTURER, 2, ("Wansview Cam",),
        band="Top 10", penetration=0.0019,
    ),
    _cls(
        "Yi Camera", LEVEL_MANUFACTURER, 4, ("Yi Cam",),
        band="Top 100", penetration=0.0017, idle_scale=0.7,
    ),
    _cls(
        "Honeywell T-stat", LEVEL_MANUFACTURER, 3, ("Honeywell T-stat",),
        band="Top 100", penetration=0.0013, idle_scale=0.5,
    ),
    _cls(
        "Amcrest Cam.", LEVEL_MANUFACTURER, 6, ("Amcrest Cam",),
        band="Top 500", penetration=0.00065,
    ),
    _cls(
        "Dlink Motion Sens.", LEVEL_MANUFACTURER, 5,
        ("D-Link Mov Sensor",), band="Top 500", penetration=0.00055, idle_scale=0.15,
    ),
    _cls(
        "Nest Device", LEVEL_MANUFACTURER, 4, ("Nest T-stat",),
        band="Top 2k", penetration=0.0011, idle_scale=0.25,
    ),
    _cls(
        "Ring Doorbell", LEVEL_MANUFACTURER, 4, ("Ring Doorbell",),
        band="Top 2k", penetration=0.0014, idle_scale=0.6,
    ),
    _cls(
        "Ubell Doorbell", LEVEL_MANUFACTURER, 4, ("Ubell Doorbell",),
        band="Top 2k", penetration=0.00028, idle_scale=0.1,
    ),
    _cls(
        "Sengled Dev.", LEVEL_MANUFACTURER, 2, ("Sengled",),
        band="Top 500", penetration=0.00045, idle_scale=0.15,
    ),
    _cls(
        "GE Microwave", LEVEL_MANUFACTURER, 2, ("GE Microwave",),
        band="Top 500", penetration=0.00038, idle_scale=0.08,
    ),
    _cls(
        "Blink Hub & Cam.", LEVEL_MANUFACTURER, 2,
        ("Blink Cam", "Blink Hub"), band="Top 500",
        penetration=0.00058,
    ),
    _cls(
        "Xiaomi Dev.", LEVEL_MANUFACTURER, 3,
        ("Xiaomi Home", "Xiaomi Strip", "Xiaomi Plug",
         "Xiaomi Rice Cooker"),
        band="Top 100", penetration=0.0021, idle_scale=0.5,
    ),
    _cls(
        "TP-link Dev.", LEVEL_MANUFACTURER, 5,
        ("TP-Link Bulb", "TP-Link Plug"), band="10k",
        penetration=0.0036, idle_scale=0.15,
    ),
    _cls(
        "ZModo Doorbell", LEVEL_MANUFACTURER, 5, ("ZModo Doorbell",),
        band="Top 500", penetration=0.00042,
    ),
    # --- product-level classes ---------------------------------------------
    _cls(
        "Anova Sousvide", LEVEL_PRODUCT, 1, ("Anova Sousvide",),
        band="Top 100", penetration=0.00088, idle_scale=0.0015,
    ),
    _cls(
        "Insteon Hub", LEVEL_PRODUCT, 1, ("Insteon",), band="Top 500",
        penetration=0.00033, idle_scale=0.002,
    ),
    _cls(
        "Magichome Stripe", LEVEL_PRODUCT, 1, ("Magichome Strip",),
        band="Top 2k", penetration=0.00062, idle_scale=0.12,
    ),
    _cls(
        "Microseven Cam.", LEVEL_PRODUCT, 1, ("Microseven Cam",),
        band="No Market", penetration=0.000012, idle_scale=0.0015,
    ),
    _cls(
        "AppKettle", LEVEL_PRODUCT, 2, ("Appkettle",),
        band="Top 2k", penetration=0.00021, idle_scale=0.08,
    ),
    _cls(
        "Icsee Doorbell", LEVEL_PRODUCT, 2, ("Icsee Doorbell",),
        band="Top 2k", penetration=0.00058, idle_scale=0.06,
    ),
    _cls(
        "Luohe Cam.", LEVEL_PRODUCT, 2, ("Luohe Cam",),
        band="No Market", penetration=0.00003, idle_scale=0.0015,
    ),
    _cls(
        "Reolink Cam.", LEVEL_PRODUCT, 2, ("Reolink Cam",),
        band="Top 100", penetration=0.00092,
    ),
    _cls(
        "Roku TV", LEVEL_PRODUCT, 8, ("Roku TV",),
        band="Other", penetration=0.0022, idle_scale=0.8,
    ),
)


class DeviceCatalog:
    """Indexed view over products and detection classes."""

    def __init__(
        self,
        products: Sequence[ProductSpec],
        detection_classes: Sequence[DetectionClassSpec],
    ) -> None:
        self.products: Tuple[ProductSpec, ...] = tuple(products)
        self.detection_classes: Tuple[DetectionClassSpec, ...] = tuple(
            detection_classes
        )
        self._products_by_name = {
            product.name: product for product in self.products
        }
        self._classes_by_name = {
            spec.name: spec for spec in self.detection_classes
        }
        if len(self._products_by_name) != len(self.products):
            raise ValueError("duplicate product names in catalog")
        if len(self._classes_by_name) != len(self.detection_classes):
            raise ValueError("duplicate detection-class names in catalog")
        self._validate()

    def _validate(self) -> None:
        for spec in self.detection_classes:
            for member in spec.member_products:
                if member not in self._products_by_name:
                    raise ValueError(
                        f"class {spec.name!r} references unknown product "
                        f"{member!r}"
                    )
            if spec.parent is not None and spec.parent not in (
                self._classes_by_name
            ):
                raise ValueError(
                    f"class {spec.name!r} has unknown parent {spec.parent!r}"
                )
        for product in self.products:
            for class_name in product.detection_classes:
                if class_name not in self._classes_by_name:
                    raise ValueError(
                        f"product {product.name!r} references unknown "
                        f"class {class_name!r}"
                    )

    # ------------------------------------------------------------------
    # product queries

    def product(self, name: str) -> ProductSpec:
        return self._products_by_name[name]

    def products_in_category(self, category: str) -> List[ProductSpec]:
        return [
            product
            for product in self.products
            if product.category == category
        ]

    @property
    def device_count(self) -> int:
        """Physical devices across both testbeds (the paper's 96)."""
        return sum(product.instances for product in self.products)

    @property
    def product_count(self) -> int:
        """Unique products (the paper's 56)."""
        return len(self.products)

    @property
    def manufacturers(self) -> Tuple[str, ...]:
        """Distinct manufacturers (the paper's 40 vendors)."""
        seen: Dict[str, None] = {}
        for product in self.products:
            seen.setdefault(product.manufacturer)
        return tuple(seen)

    def excluded_products(self) -> List[ProductSpec]:
        """Products the pipeline should end up dropping (Section 4.2.3)."""
        return [
            product for product in self.products if not product.detectable
        ]

    # ------------------------------------------------------------------
    # detection-class queries

    def detection_class(self, name: str) -> DetectionClassSpec:
        return self._classes_by_name[name]

    def classes_at_level(self, level: str) -> List[DetectionClassSpec]:
        return [
            spec for spec in self.detection_classes if spec.level == level
        ]

    def children_of(self, name: str) -> List[DetectionClassSpec]:
        return [
            spec for spec in self.detection_classes if spec.parent == name
        ]

    def classes_for_product(self, product_name: str) -> List[
        DetectionClassSpec
    ]:
        product = self.product(product_name)
        return [
            self._classes_by_name[class_name]
            for class_name in product.detection_classes
        ]

    def detected_manufacturer_coverage(self) -> float:
        """Fraction of manufacturers covered by manufacturer- or
        product-level rules — the paper's 77%."""
        detected = {
            self._products_by_name[member].manufacturer
            for spec in self.detection_classes
            if spec.level in (LEVEL_MANUFACTURER, LEVEL_PRODUCT)
            for member in spec.member_products
        }
        return len(detected) / len(self.manufacturers)

    def platforms(self) -> Tuple[str, ...]:
        """Distinct platform backends among platform-level classes."""
        seen: Dict[str, None] = {}
        for spec in self.detection_classes:
            if spec.platform is not None:
                seen.setdefault(spec.platform)
        return tuple(seen)


def default_catalog() -> DeviceCatalog:
    """The paper's testbed catalog (Table 1 + Figure 10)."""
    return DeviceCatalog(_PRODUCTS, _DETECTION_CLASSES)
