"""Idle/active behaviour of devices: turning rate profiles into per-hour
packet counts.

The paper's ground-truth experiments (Section 2.3) distinguish *idle*
periods (device connected, untouched) from *active* experiments driven
by automated *power* interactions (plug off/on, which triggers a start-up
burst) and *functional* interactions (voice command or companion-app
action).  :class:`DeviceBehavior` models all three: every simulated hour
yields a per-domain packet/byte count drawn from Poisson distributions
around the profile rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.devices.profiles import DeviceProfile

__all__ = ["InteractionKind", "HourTraffic", "DeviceBehavior"]


class InteractionKind:
    """The two automated interaction types of Section 2.3."""

    POWER = "power"
    FUNCTIONAL = "functional"


@dataclass(frozen=True)
class HourTraffic:
    """Per-domain traffic of one device during one hour."""

    packets: Dict[str, int]
    bytes: Dict[str, int]

    @property
    def total_packets(self) -> int:
        return sum(self.packets.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())


class DeviceBehavior:
    """Generates hourly traffic for one device instance.

    ``power_burst_packets`` models the significant traffic devices emit
    when power-cycled (checking in with every backend, re-resolving,
    re-syncing); ``functional_burst_packets`` the much smaller burst of
    one functional interaction.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        power_burst_packets: Optional[float] = None,
        functional_burst_packets: Optional[float] = None,
    ) -> None:
        self.profile = profile
        # Burst sizes scale with how chatty the device already is: a
        # power-cycled Echo re-syncs with dozens of backends, a
        # power-cycled door sensor sends a handful of packets.
        idle_total = sum(usage.idle_pph for usage in profile.usages)
        active_total = sum(usage.active_pph for usage in profile.usages)
        if power_burst_packets is None:
            power_burst_packets = min(800.0, 4.0 + idle_total)
        if functional_burst_packets is None:
            functional_burst_packets = min(
                300.0, 2.0 + 0.25 * active_total
            )
        self.power_burst_packets = power_burst_packets
        self.functional_burst_packets = functional_burst_packets

    def hour_traffic(
        self,
        rng: np.random.Generator,
        active: bool,
        power_interactions: int = 0,
        functional_interactions: int = 0,
        startup: bool = False,
    ) -> HourTraffic:
        """Draw one hour of traffic.

        ``active`` selects the active-experiment rates; interactions add
        bursts on top; ``startup`` marks the first hour after the device
        is connected (the spike visible at the start of the paper's idle
        experiments).
        """
        packets: Dict[str, int] = {}
        bytes_out: Dict[str, int] = {}
        burst_total = (
            power_interactions * self.power_burst_packets
            + functional_interactions * self.functional_burst_packets
            + (self.power_burst_packets * 1.5 if startup else 0.0)
        )
        usages = self.profile.usages
        # Bursts concentrate on rule/anchor domains: weight by base rate,
        # with a floor so even quiet domains see start-up traffic.
        # Active-only domains (streaming backends) are not part of
        # power-cycle/start-up chatter unless the device is in use.
        weights = np.array(
            [
                0.0
                if (usage.active_only and not active)
                else max(usage.active_pph, 1.0)
                for usage in usages
            ]
        )
        weights = weights / weights.sum() if weights.sum() else weights
        for usage, weight in zip(usages, weights):
            rate = usage.rate(active)
            if burst_total:
                rate += burst_total * float(weight)
            if rate <= 0:
                continue
            count = int(rng.poisson(rate))
            if count <= 0:
                continue
            packets[usage.fqdn] = count
            bytes_out[usage.fqdn] = count * usage.bytes_per_packet
        return HourTraffic(packets, bytes_out)

    def expected_hourly_packets(self, active: bool) -> float:
        """Mean packets/hour across all domains (no interactions)."""
        return float(
            sum(usage.rate(active) for usage in self.profile.usages)
        )

    def expected_domain_rate(self, fqdn: str, active: bool) -> float:
        return self.profile.usage_for(fqdn).rate(active)

    @staticmethod
    def flows_for_packets(packet_count: int, mean_flow_size: float = 30.0) -> int:
        """How many flows a device-hour's packets to one domain split
        into.  Long-lived keep-alive connections dominate IoT traffic, so
        flows are few and large."""
        if packet_count <= 0:
            return 0
        return max(1, int(math.ceil(packet_count / mean_flow_size)))
