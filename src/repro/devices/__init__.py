"""IoT device substrate: the testbed catalog (Table 1), per-device
traffic profiles, idle/active behaviour models, and the testbed +
experiment automation of Section 2."""

from repro.devices.catalog import (
    CATEGORIES,
    DetectionClassSpec,
    DeviceCatalog,
    LEVEL_MANUFACTURER,
    LEVEL_PLATFORM,
    LEVEL_PRODUCT,
    ProductSpec,
    default_catalog,
)
from repro.devices.profiles import (
    DomainSpec,
    DomainUsage,
    DeviceProfile,
    ProfileLibrary,
    build_profile_library,
)
from repro.devices.behavior import DeviceBehavior, InteractionKind
from repro.devices.testbed import Testbed, ExperimentSchedule

__all__ = [
    "CATEGORIES",
    "DetectionClassSpec",
    "DeviceCatalog",
    "LEVEL_MANUFACTURER",
    "LEVEL_PLATFORM",
    "LEVEL_PRODUCT",
    "ProductSpec",
    "default_catalog",
    "DomainSpec",
    "DomainUsage",
    "DeviceProfile",
    "ProfileLibrary",
    "build_profile_library",
    "DeviceBehavior",
    "InteractionKind",
    "Testbed",
    "ExperimentSchedule",
]
