"""Reproduction of "A Haystack Full of Needles: Scalable Detection of IoT
Devices in the Wild" (Saidi et al., IMC 2020).

The package is organised as a set of substrates (``netflow``, ``dns``,
``tls``, ``cloud``, ``devices``, ``isp``, ``ixp``) underneath the paper's
primary contribution in :mod:`repro.core`: a methodology for detecting
consumer IoT devices at subscriber-line granularity from sparsely sampled
flow headers.

Quickstart::

    from repro.scenario import build_default_scenario
    from repro.core.hitlist import build_hitlist
    from repro.core.rules import generate_rules
    from repro.core.detector import FlowDetector

    scenario = build_default_scenario(seed=7)
    hitlist = build_hitlist(scenario)
    rules = generate_rules(scenario, hitlist)
    detector = FlowDetector(rules, hitlist, threshold=0.4)

See ``examples/quickstart.py`` for a complete runnable walk-through.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
