"""Internet-wide scan dataset — the simulation's Censys.

Censys scans the IPv4 space and records, per host and port, the
presented certificate and a checksum of the service banner.  The
Section 4.2.2 fallback queries this dataset in two steps: find the
certificate presented by hosts of a known domain, then find *all* hosts
presenting the same certificate and banner checksum.

:class:`ScanDataset` is built directly from the simulated backend
infrastructures, so its contents stay consistent with what the DNS and
traffic layers see.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.tls.certificates import Certificate

__all__ = ["ScannedHost", "ScanDataset"]


@dataclass(frozen=True)
class ScannedHost:
    """One (address, port) service observed by the scanner."""

    address: int
    port: int
    certificate: Optional[Certificate]
    banner_checksum: str

    @property
    def https(self) -> bool:
        return self.certificate is not None


def banner_checksum(software: str, operator: str) -> str:
    """Deterministic checksum of an HTTP(S) banner string."""
    banner = f"Server: {software}; operator={operator}"
    return hashlib.md5(banner.encode()).hexdigest()


class ScanDataset:
    """Queryable snapshot of an internet-wide TLS/banner scan."""

    def __init__(self) -> None:
        self._hosts: Dict[Tuple[int, int], ScannedHost] = {}
        self._by_fingerprint: Dict[str, List[ScannedHost]] = {}

    def add_host(self, host: ScannedHost) -> None:
        """Record one scanned service endpoint."""
        self._hosts[(host.address, host.port)] = host
        if host.certificate is not None:
            self._by_fingerprint.setdefault(
                host.certificate.fingerprint, []
            ).append(host)

    def add_service(
        self,
        addresses: Iterable[int],
        port: int,
        certificate: Optional[Certificate],
        software: str,
        operator: str,
    ) -> None:
        """Record a service deployed identically across many addresses."""
        checksum = banner_checksum(software, operator)
        for address in addresses:
            self.add_host(
                ScannedHost(address, port, certificate, checksum)
            )

    # ------------------------------------------------------------------
    # queries

    def host(self, address: int, port: int) -> Optional[ScannedHost]:
        return self._hosts.get((address, port))

    def services_on(self, address: int) -> List[ScannedHost]:
        """All scanned services on one address."""
        return [
            host
            for (host_address, _), host in self._hosts.items()
            if host_address == address
        ]

    def hosts_with_certificate(
        self, fingerprint: str
    ) -> List[ScannedHost]:
        """All hosts presenting a certificate with this fingerprint."""
        return list(self._by_fingerprint.get(fingerprint, []))

    def hosts_matching(
        self, fingerprint: str, banner: str
    ) -> List[ScannedHost]:
        """Hosts presenting both the certificate *and* banner checksum —
        the paper's joint Censys query."""
        return [
            host
            for host in self._by_fingerprint.get(fingerprint, [])
            if host.banner_checksum == banner
        ]

    def certificates_for_domain(self, fqdn: str) -> List[Certificate]:
        """Certificates (deduplicated) observed anywhere that cover a
        domain name."""
        seen: Dict[str, Certificate] = {}
        for hosts in self._by_fingerprint.values():
            certificate = hosts[0].certificate
            if certificate is not None and certificate.covers(fqdn):
                seen[certificate.fingerprint] = certificate
        return list(seen.values())

    def __len__(self) -> int:
        return len(self._hosts)
