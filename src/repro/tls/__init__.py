"""TLS substrate: certificate models and an internet-wide scan dataset
standing in for Censys certificate/banner data."""

from repro.tls.certificates import Certificate
from repro.tls.scanner import ScanDataset, ScannedHost

__all__ = ["Certificate", "ScanDataset", "ScannedHost"]
