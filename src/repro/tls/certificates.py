"""X.509-like certificate model.

Only the handful of fields the Censys-style matcher (Section 4.2.2)
consumes are modelled: the subject common name (the ``Name`` field in
the paper's wording), the list of Subject Alternative Names, and a
deterministic fingerprint so identical certificates deployed on many
hosts can be grouped.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Tuple

from repro.dns.names import matches_pattern, normalize, second_level_domain

__all__ = ["Certificate"]


@dataclass(frozen=True)
class Certificate:
    """A leaf certificate as harvested by an internet-wide scanner."""

    subject_cn: str
    sans: Tuple[str, ...] = ()
    issuer: str = "Simulated Root CA"

    def __post_init__(self) -> None:
        object.__setattr__(self, "subject_cn", normalize(self.subject_cn))
        object.__setattr__(
            self, "sans", tuple(normalize(san) for san in self.sans)
        )

    @property
    def names(self) -> Tuple[str, ...]:
        """All names the certificate is valid for (CN plus SANs)."""
        if self.subject_cn in self.sans:
            return self.sans
        return (self.subject_cn,) + self.sans

    @property
    def fingerprint(self) -> str:
        """Deterministic SHA-256-style fingerprint of the certificate."""
        digest = hashlib.sha256(
            "|".join((self.issuer,) + self.names).encode()
        ).hexdigest()
        return digest

    def covers(self, fqdn: str) -> bool:
        """Whether the certificate is valid for ``fqdn`` (exact or
        single-label wildcard match, per X.509 convention)."""
        fqdn = normalize(fqdn)
        return any(
            matches_pattern(fqdn, name) if "*" in name else fqdn == name
            for name in self.names
        )

    def slds(self) -> Tuple[str, ...]:
        """Second-level domains appearing across the certificate names."""
        seen = []
        for name in self.names:
            sld = second_level_domain(name.lstrip("*."))
            if sld not in seen:
                seen.append(sld)
        return tuple(seen)
