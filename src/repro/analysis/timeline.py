"""Hour/day bucketing of event streams."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Set, Tuple, TypeVar

from repro.timeutil import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    STUDY_START,
    format_day,
    format_hour,
    hour_start,
)

__all__ = ["HourlySeries", "bucket_by_hour", "bucket_by_day"]

EventT = TypeVar("EventT")


def bucket_by_hour(
    events: Iterable[EventT],
    timestamp: Callable[[EventT], int],
    key: Callable[[EventT], Hashable],
    origin: int = STUDY_START,
) -> Dict[int, Set[Hashable]]:
    """Group the distinct ``key`` values of events into hour buckets."""
    buckets: Dict[int, Set[Hashable]] = defaultdict(set)
    for event in events:
        bucket = (timestamp(event) - origin) // SECONDS_PER_HOUR
        buckets[bucket].add(key(event))
    return dict(buckets)


def bucket_by_day(
    events: Iterable[EventT],
    timestamp: Callable[[EventT], int],
    key: Callable[[EventT], Hashable],
    origin: int = STUDY_START,
) -> Dict[int, Set[Hashable]]:
    """Group the distinct ``key`` values of events into day buckets."""
    buckets: Dict[int, Set[Hashable]] = defaultdict(set)
    for event in events:
        bucket = (timestamp(event) - origin) // SECONDS_PER_DAY
        buckets[bucket].add(key(event))
    return dict(buckets)


@dataclass
class HourlySeries:
    """A labelled per-hour count series anchored at the study start."""

    name: str
    counts: Dict[int, int] = field(default_factory=dict)
    origin: int = STUDY_START

    @classmethod
    def from_sets(
        cls, name: str, buckets: Dict[int, Set[Hashable]],
        origin: int = STUDY_START,
    ) -> "HourlySeries":
        return cls(
            name,
            {bucket: len(values) for bucket, values in buckets.items()},
            origin,
        )

    def label_for(self, bucket: int) -> str:
        return format_hour(hour_start(bucket, self.origin))

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self.counts.items())

    def mean(self) -> float:
        if not self.counts:
            return 0.0
        return sum(self.counts.values()) / len(self.counts)

    def max(self) -> int:
        return max(self.counts.values(), default=0)
