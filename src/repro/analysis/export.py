"""CSV export of experiment results.

The benchmark harness renders human-readable text; downstream users
(plotting scripts, notebooks) usually want machine-readable series.
These helpers flatten the main result objects into CSV.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "csv_text",
    "series_csv",
    "wild_daily_csv",
    "wild_hourly_csv",
    "crosscheck_csv",
    "ixp_daily_csv",
]


def csv_text(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render headers + rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def series_csv(
    series: Mapping[str, Sequence], index_name: str = "bucket"
) -> str:
    """Columnar CSV of parallel named series (e.g. per-hour counts).

    All series must have equal length; the index column counts from 0.
    """
    names = list(series)
    if not names:
        raise ValueError("no series to export")
    lengths = {len(series[name]) for name in names}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (length,) = lengths
    rows = [
        [index] + [series[name][index] for name in names]
        for index in range(length)
    ]
    return csv_text([index_name] + names, rows)


def wild_daily_csv(result) -> str:
    """Per-day detected-line counts of a WildIspResult."""
    series: Dict[str, Sequence] = dict(
        sorted(result.daily_counts.items())
    )
    series["other_32_dedup"] = result.other_daily
    series["any_iot"] = result.any_daily
    return series_csv(series, index_name="day")


def wild_hourly_csv(result) -> str:
    """Per-hour detected-line counts of a WildIspResult."""
    series: Dict[str, Sequence] = dict(
        sorted(result.hourly_counts.items())
    )
    series["other_32_dedup"] = result.other_hourly
    series["alexa_active_usage"] = result.alexa_active_hourly
    return series_csv(series, index_name="hour")


def crosscheck_csv(result) -> str:
    """Long-format CSV of a CrosscheckResult: one row per
    (mode, threshold, class) with hours-to-detect (empty = never)."""
    rows: List[Tuple] = []
    for mode, by_threshold in sorted(result.times.items()):
        classes = sorted(
            {
                name
                for per_class in by_threshold.values()
                for name in per_class
            }
        )
        for threshold, per_class in sorted(by_threshold.items()):
            for class_name in classes:
                hours = per_class.get(class_name)
                rows.append(
                    (
                        mode,
                        threshold,
                        class_name,
                        "" if hours is None else f"{hours:.3f}",
                    )
                )
    return csv_text(
        ("mode", "threshold", "class", "hours_to_detect"), rows
    )


def ixp_daily_csv(result) -> str:
    """Per-day detected-IP counts of an IxpResult."""
    return series_csv(
        dict(sorted(result.daily_ip_counts.items())), index_name="day"
    )
