"""Plain-text rendering of tables and series.

The benchmark harness prints the rows/series each paper table or figure
reports; these helpers keep that output uniform and readable in a
terminal or a CI log.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_histogram_row"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    materialised = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(
        " | ".join(
            header.ljust(width) for header, width in zip(headers, widths)
        )
    )
    lines.append(separator)
    for row in materialised:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def render_series(
    name: str,
    points: Sequence[Tuple[object, object]],
    max_points: int = 40,
) -> str:
    """Render a labelled (x, y) series, subsampled when long."""
    if len(points) > max_points:
        step = max(1, len(points) // max_points)
        points = list(points)[::step]
    body = "  ".join(
        f"{_format_cell(x)}={_format_cell(y)}" for x, y in points
    )
    return f"{name}: {body}"


def render_histogram_row(
    label: str, value: float, maximum: float, width: int = 40
) -> str:
    """One text-histogram bar (used by heatmap-style figures)."""
    if maximum <= 0:
        bar = ""
    else:
        bar = "#" * max(0, int(round(width * value / maximum)))
    return f"{label:<28s} {bar} {_format_cell(value)}"
