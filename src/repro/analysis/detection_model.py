"""Monte-Carlo model of windowed detection probabilities.

Used where exact per-entity simulation is unnecessary (the IXP run
draws per-member Binomial counts from these probabilities) and by the
ablation benchmarks that sweep sampling rates and thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.rules import RuleSet
from repro.scenario import Scenario
from repro.timeutil import STUDY_START, hour_of_day

__all__ = [
    "DetectionProbabilities",
    "estimate_detection_probabilities",
    "exact_rule_probability",
    "exact_detection_probability",
]


@dataclass(frozen=True)
class DetectionProbabilities:
    """Windowed detection probabilities of one class for one product."""

    class_name: str
    product: str
    hourly: float  # P(rule chain satisfied within a random hour)
    daily: float  # P(rule chain satisfied within a day)

    @property
    def daily_to_hourly_ratio(self) -> float:
        if self.hourly == 0:
            return float("inf")
        return self.daily / self.hourly


def estimate_detection_probabilities(
    scenario: Scenario,
    rules: RuleSet,
    class_name: str,
    product: Optional[str] = None,
    sampling_interval: int = 100,
    visibility: float = 1.0,
    threshold: float = 0.4,
    samples: int = 2000,
    seed: int = 99,
) -> DetectionProbabilities:
    """Estimate P(detect in hour) and P(detect in day).

    ``visibility`` scales the effective packet rate (routing asymmetry
    at an IXP means only part of a flow's packets transit the fabric).
    The model samples whole days: per-hour active-use states drive
    which rate applies, domain sightings are Bernoulli per hour, and the
    full rule chain (critical domains + ancestors) is evaluated both per
    hour and on the day's union of evidence.
    """
    from repro.isp.simulation import diurnal_profile_for

    library = scenario.library
    spec = scenario.catalog.detection_class(class_name)
    product = product or spec.member_products[0]
    profile = library.profile(product)
    usage_by_fqdn = {usage.fqdn: usage for usage in profile.usages}

    chain = [rules.rule(class_name)] + [
        rules.rule(name) for name in rules.ancestors(class_name)
    ]
    universe: List[str] = []
    for rule in chain:
        for fqdn in rule.domains:
            if fqdn not in universe:
                universe.append(fqdn)
    index_of = {fqdn: index for index, fqdn in enumerate(universe)}

    scale = visibility / sampling_interval
    lam_idle = np.array(
        [
            usage_by_fqdn[f].idle_pph if f in usage_by_fqdn else 0.0
            for f in universe
        ]
    )
    lam_active = np.array(
        [
            usage_by_fqdn[f].active_pph if f in usage_by_fqdn else 0.0
            for f in universe
        ]
    )
    p_idle = 1.0 - np.exp(-lam_idle * scale)
    p_active = 1.0 - np.exp(-lam_active * scale)

    leaf = profile.product.detection_classes[-1]
    behavior = library.wild_behaviors.get(leaf)
    curve = diurnal_profile_for(leaf)
    base_hour = hour_of_day(STUDY_START)
    active_prob = behavior.active_use_prob if behavior else 0.0
    q = np.array(
        [
            min(1.0, active_prob * curve[(base_hour + h) % 24])
            for h in range(24)
        ]
    )

    rng = np.random.default_rng(seed)
    active = rng.random((samples, 24)) < q[None, :]
    probabilities = np.where(
        active[:, :, None], p_active[None, None, :], p_idle[None, None, :]
    )
    seen = rng.random((samples, 24, len(universe))) < probabilities
    day_seen = seen.any(axis=1)

    hourly_ok = np.ones((samples, 24), dtype=bool)
    daily_ok = np.ones(samples, dtype=bool)
    for rule in chain:
        indices = np.array([index_of[f] for f in rule.domains])
        needed = rule.required_domains(threshold)
        ok_h = seen[:, :, indices].sum(axis=2) >= needed
        ok_d = day_seen[:, indices].sum(axis=1) >= needed
        if rule.critical:
            crit = np.array([index_of[f] for f in rule.critical])
            ok_h &= seen[:, :, crit].all(axis=2)
            ok_d &= day_seen[:, crit].all(axis=1)
        hourly_ok &= ok_h
        daily_ok &= ok_d
    return DetectionProbabilities(
        class_name=class_name,
        product=product,
        hourly=float(hourly_ok.mean()),
        daily=float(daily_ok.mean()),
    )


def exact_rule_probability(
    domain_probabilities: Sequence[float],
    required: int,
    critical_probabilities: Sequence[float] = (),
) -> float:
    """Exact P(rule satisfied) for independent domain sightings.

    ``domain_probabilities`` are the per-domain probabilities of seeing
    at least one sampled packet within the window for the rule's
    *non-critical* domains; ``critical_probabilities`` for the critical
    ones (which must all be seen and also count toward ``required``).
    Uses the Poisson-binomial dynamic programme, so it is exact where
    the Monte-Carlo estimator is approximate — the two are
    cross-checked in the test suite.
    """
    if required < 0:
        raise ValueError("required count must be non-negative")
    for p in list(domain_probabilities) + list(critical_probabilities):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
    # All critical domains must be seen; they contribute len(critical)
    # certain successes conditioned on that event.
    p_critical = float(np.prod(critical_probabilities)) if (
        len(critical_probabilities)
    ) else 1.0
    still_needed = max(0, required - len(critical_probabilities))
    probabilities = np.asarray(domain_probabilities, dtype=float)
    # DP over the count distribution of the non-critical domains.
    distribution = np.zeros(len(probabilities) + 1)
    distribution[0] = 1.0
    for p in probabilities:
        distribution[1:] = distribution[1:] * (1 - p) + (
            distribution[:-1] * p
        )
        distribution[0] *= 1 - p
    p_enough = float(distribution[still_needed:].sum())
    return p_critical * p_enough


def exact_detection_probability(
    scenario: Scenario,
    rules: RuleSet,
    class_name: str,
    product: Optional[str] = None,
    sampling_interval: int = 100,
    visibility: float = 1.0,
    threshold: float = 0.4,
    window_hours: int = 1,
    active: bool = False,
) -> float:
    """Exact windowed detection probability for one rule chain, given a
    fixed idle/active state across the window.

    Complements :func:`estimate_detection_probabilities` (which mixes
    diurnal active states via Monte Carlo): with the state held fixed,
    the chain probability factors into independent Poisson-binomial
    terms that this computes exactly.
    """
    library = scenario.library
    spec = scenario.catalog.detection_class(class_name)
    product = product or spec.member_products[0]
    profile = library.profile(product)
    usage_by_fqdn = {usage.fqdn: usage for usage in profile.usages}
    scale = visibility / sampling_interval

    def domain_probability(fqdn: str) -> float:
        usage = usage_by_fqdn.get(fqdn)
        if usage is None:
            return 0.0
        rate = usage.rate(active)
        return 1.0 - float(np.exp(-rate * scale * window_hours))

    result = 1.0
    chain = [rules.rule(class_name)] + [
        rules.rule(name) for name in rules.ancestors(class_name)
    ]
    for rule in chain:
        critical = [domain_probability(f) for f in rule.critical]
        others = [
            domain_probability(f)
            for f in rule.domains
            if f not in rule.critical
        ]
        result *= exact_rule_probability(
            others, rule.required_domains(threshold), critical
        )
    return result
