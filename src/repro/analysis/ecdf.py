"""Empirical cumulative distribution functions (Figures 9 and 16)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Ecdf"]


class Ecdf:
    """An empirical CDF over a sample of real values."""

    def __init__(self, values: Iterable[float]) -> None:
        self._values = np.sort(np.asarray(list(values), dtype=float))
        if self._values.size == 0:
            raise ValueError("ECDF needs at least one value")

    def __len__(self) -> int:
        return int(self._values.size)

    def evaluate(self, x: float) -> float:
        """Fraction of the sample <= x."""
        return float(
            np.searchsorted(self._values, x, side="right")
            / self._values.size
        )

    def quantile(self, q: float) -> float:
        """The smallest value v with evaluate(v) >= q."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1]: {q}")
        index = int(np.ceil(q * self._values.size)) - 1
        return float(self._values[index])

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def points(self) -> List[Tuple[float, float]]:
        """The (value, cumulative fraction) step points."""
        n = self._values.size
        return [
            (float(value), (index + 1) / n)
            for index, value in enumerate(self._values)
        ]

    def sampled_points(self, count: int = 40) -> List[Tuple[float, float]]:
        """Evenly spaced points for compact textual rendering."""
        points = self.points()
        if len(points) <= count:
            return points
        indices = np.linspace(0, len(points) - 1, count).astype(int)
        return [points[index] for index in indices]
