"""Heavy-hitter visibility — Figure 6.

For each hour: rank the Home-VP service addresses by byte count, take
the top q fraction, and measure which share of them also appears in the
sampled ISP-VP data.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.timeutil import SECONDS_PER_HOUR, STUDY_START

__all__ = ["heavy_hitter_visibility"]


def heavy_hitter_visibility(
    home_events,
    isp_events,
    top_fractions: Sequence[float] = (0.1, 0.2, 0.3),
    origin: int = STUDY_START,
) -> Dict[float, Dict[int, float]]:
    """Per-hour visibility of the top-bytes service addresses.

    Returns ``{fraction: {hour_bucket: visible_share}}``.  Events need
    ``timestamp``, ``dst_ip`` and ``bytes`` attributes (the ground-truth
    event type).
    """
    home_bytes: Dict[int, Dict[int, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    for event in home_events:
        bucket = (event.timestamp - origin) // SECONDS_PER_HOUR
        home_bytes[bucket][event.dst_ip] += event.bytes
    isp_seen: Dict[int, Set[int]] = defaultdict(set)
    for event in isp_events:
        bucket = (event.timestamp - origin) // SECONDS_PER_HOUR
        isp_seen[bucket].add(event.dst_ip)

    result: Dict[float, Dict[int, float]] = {
        fraction: {} for fraction in top_fractions
    }
    for bucket, by_address in home_bytes.items():
        ranked = sorted(
            by_address, key=lambda address: by_address[address],
            reverse=True,
        )
        visible = isp_seen.get(bucket, set())
        for fraction in top_fractions:
            top_count = max(1, int(len(ranked) * fraction))
            top = ranked[:top_count]
            result[fraction][bucket] = sum(
                1 for address in top if address in visible
            ) / top_count
    return result
