"""Shared analysis utilities: time bucketing, ECDFs, heavy-hitter
visibility, an analytic/Monte-Carlo detection-probability model, and
plain-text rendering of tables and series for the benchmark harness."""

from repro.analysis.timeline import HourlySeries, bucket_by_day, bucket_by_hour
from repro.analysis.ecdf import Ecdf
from repro.analysis.heavyhitters import heavy_hitter_visibility
from repro.analysis.detection_model import (
    estimate_detection_probabilities,
    DetectionProbabilities,
)
from repro.analysis.reporting import render_series, render_table

__all__ = [
    "HourlySeries",
    "bucket_by_day",
    "bucket_by_hour",
    "Ecdf",
    "heavy_hitter_visibility",
    "estimate_detection_probabilities",
    "DetectionProbabilities",
    "render_series",
    "render_table",
]
