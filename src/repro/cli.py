"""Command-line interface.

Usage::

    python -m repro list
    python -m repro experiment fig11 --subscribers 50000 --days 7
    python -m repro --workers 4 --metrics-out metrics.json experiment fig11
    python -m repro experiment all -o results/
    python -m repro pipeline
    python -m repro export wild-daily -o daily.csv
    python -m repro stream run flows.csv --artifacts artifacts/ \
        --checkpoint-dir ckpts/ --checkpoint-every 50000
    python -m repro stream run flows.csv --artifacts artifacts/ \
        --checkpoint-dir ckpts/ --checkpoint-every 50000 --resume
    python -m repro sweep run --grid quick --out sweep-out/
    python -m repro sweep run --grid adversarial --workers 4 \
        --artifacts artifacts/ --out sweep-out/

Experiments run against the shared
:class:`~repro.experiments.context.ExperimentContext`; the first
invocation of a ground-truth- or wild-backed experiment pays the
simulation cost, later ones in the same process reuse it.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.experiments import (
    false_positives,
    fig5_visibility,
    fig7_pipeline_trace,
    fig6_heavy_hitters,
    fig8_domain_traffic,
    fig9_ecdf,
    fig10_crosscheck,
    fig11_isp_wild,
    fig12_drilldown,
    fig13_churn,
    fig14_heatmap,
    fig15_ixp,
    fig16_ixp_asn,
    fig17_alexa_activity,
    fig18_usage,
    defense_eval,
    dns_visibility,
    pipeline_counts,
    rule_inventory,
    scorecard,
    table1_catalog,
)
from repro.experiments.context import ExperimentContext, get_context

__all__ = ["main", "EXPERIMENTS"]

#: experiment id -> (run(context) -> result, render(result) -> str)
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "table1": (
        lambda context: table1_catalog.run(context.scenario.catalog),
        table1_catalog.render,
    ),
    "fig5": (fig5_visibility.run, fig5_visibility.render),
    "fig6": (fig6_heavy_hitters.run, fig6_heavy_hitters.render),
    "fig7": (fig7_pipeline_trace.run, fig7_pipeline_trace.render),
    "fig8": (fig8_domain_traffic.run, fig8_domain_traffic.render),
    "fig9": (fig9_ecdf.run, fig9_ecdf.render),
    "pipeline": (pipeline_counts.run, pipeline_counts.render),
    "rules": (rule_inventory.run, rule_inventory.render),
    "fig10": (fig10_crosscheck.run, fig10_crosscheck.render),
    "fig11": (fig11_isp_wild.run, fig11_isp_wild.render),
    "fig12": (fig12_drilldown.run, fig12_drilldown.render),
    "fig13": (fig13_churn.run, fig13_churn.render),
    "fig14": (fig14_heatmap.run, fig14_heatmap.render),
    "fig15": (fig15_ixp.run, fig15_ixp.render),
    "fig16": (fig16_ixp_asn.run, fig16_ixp_asn.render),
    "fig17": (fig17_alexa_activity.run, fig17_alexa_activity.render),
    "fig18": (fig18_usage.run, fig18_usage.render),
    "false-positives": (false_positives.run, false_positives.render),
    "dns-visibility": (dns_visibility.run, dns_visibility.render),
    "scorecard": (scorecard.run, scorecard.render),
    "defenses": (defense_eval.run, defense_eval.render),
}

_EXPORTS = ("wild-daily", "wild-hourly", "crosscheck", "ixp-daily")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Haystack Full of Needles' (IMC 2020): "
            "run any paper experiment from the command line."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="world seed (default 7)"
    )
    parser.add_argument(
        "--subscribers",
        type=int,
        default=100_000,
        help="wild-run subscriber lines (default 100000)",
    )
    parser.add_argument(
        "--days",
        type=int,
        default=14,
        help="wild-run study days (default 14)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "wild-run worker processes: 1 = serial path (default), "
            "0 = one per CPU, N>1 = sharded engine with N workers"
        ),
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=8192,
        help="owners per engine shard (default 8192)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help=(
            "sharded engine: re-run a failed shard up to N times with "
            "backoff before dead-lettering it (default 2)"
        ),
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help=(
            "sharded engine: kill a shard running longer than this "
            "many wall-clock seconds (default: no timeout)"
        ),
    )
    parser.add_argument(
        "--quarantine-dir",
        type=pathlib.Path,
        default=None,
        help=(
            "directory for dead-letter records (sharded engine) and "
            "quarantined malformed flow records (stream run)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        type=pathlib.Path,
        default=None,
        help=(
            "write the engine metrics JSON of the wild run here "
            "(requires --workers != 1)"
        ),
    )
    parser.add_argument(
        "--memory-budget",
        type=str,
        default=None,
        help=(
            "RSS budget (e.g. 512M, 2GiB) the run sheds under instead "
            "of exceeding; shed actions land in the 'overload' metrics "
            "section"
        ),
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help=(
            "wall-clock budget in seconds; at expiry the run stops "
            "admitting work and marks partial results degraded"
        ),
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=None,
        help=(
            "seconds a signal-triggered drain may take before the "
            "process force-exits with code 70 (default: unlimited)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    experiment = commands.add_parser(
        "experiment", help="run one experiment (or 'all') and print it"
    )
    experiment.add_argument(
        "id", choices=sorted(EXPERIMENTS) + ["all"]
    )
    experiment.add_argument(
        "-o",
        "--output",
        type=pathlib.Path,
        default=None,
        help="write output to this file (or directory for 'all')",
    )

    commands.add_parser(
        "pipeline", help="run the Figure-7 hitlist pipeline and report"
    )

    export = commands.add_parser(
        "export", help="export result series as CSV"
    )
    export.add_argument("what", choices=_EXPORTS)
    export.add_argument(
        "-o", "--output", type=pathlib.Path, default=None,
        help="CSV output path (default: stdout)",
    )

    artifacts = commands.add_parser(
        "artifacts",
        help="export the daily hitlist and rule set as JSON",
    )
    artifacts.add_argument(
        "directory", type=pathlib.Path,
        help="directory receiving hitlist.json and rules.json",
    )
    artifacts.add_argument(
        "--versioned", action="store_true",
        help="publish into a versioned rule store (rules-vNNN.json "
        "artifacts with integrity headers) instead of flat JSON; "
        "repeated runs allocate monotonically increasing versions",
    )

    detect = commands.add_parser(
        "detect",
        help=(
            "run detection over a flow file (see "
            "repro.netflow.flowfile) using JSON artifacts"
        ),
    )
    detect.add_argument(
        "flows", type=pathlib.Path, help="flow file (haystack-flows CSV)"
    )
    detect.add_argument(
        "--artifacts", type=pathlib.Path, default=None,
        help=(
            "directory with hitlist.json/rules.json (default: derive "
            "them from the simulated world)"
        ),
    )
    detect.add_argument(
        "--threshold", type=float, default=0.4,
        help="detection threshold D (default 0.4)",
    )
    detect.add_argument(
        "--columnar", action="store_true",
        help="fold the flow file through the vectorized columnar "
        "path (identical detections, chunked numpy hot loop)",
    )
    detect.add_argument(
        "--chunk-size", type=int, default=65536,
        help="rows per decoded column chunk with --columnar "
        "(default 65536)",
    )

    stream = commands.add_parser(
        "stream",
        help=(
            "incremental online detection (bounded memory, "
            "checkpoint/resume); see repro.stream"
        ),
    )
    stream_commands = stream.add_subparsers(
        dest="stream_command", required=True
    )
    stream_run = stream_commands.add_parser(
        "run",
        help=(
            "stream a flow file through the online detector, "
            "emitting detection events as chains complete"
        ),
    )
    stream_run.add_argument(
        "flows", type=pathlib.Path, help="flow file (haystack-flows CSV)"
    )
    stream_run.add_argument(
        "--artifacts", type=pathlib.Path, default=None,
        help=(
            "directory with hitlist.json/rules.json (default: derive "
            "them from the simulated world)"
        ),
    )
    stream_run.add_argument(
        "--threshold", type=float, default=0.4,
        help="detection threshold D (default 0.4)",
    )
    stream_run.add_argument(
        "--require-established", action="store_true",
        help="drop TCP flows without an established handshake (spoof "
        "filter)",
    )
    stream_run.add_argument(
        "--max-subscribers", type=int, default=1 << 16,
        help="state-table bound: tracked subscriber lines "
        "(default 65536)",
    )
    stream_run.add_argument(
        "--ttl-seconds", type=int, default=None,
        help="evict subscribers idle longer than this (event time; "
        "default: no TTL)",
    )
    stream_run.add_argument(
        "--checkpoint-dir", type=pathlib.Path, default=None,
        help="directory for crash-safe checkpoints",
    )
    stream_run.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="checkpoint every N records (0 = only at end of stream, "
        "and only when --checkpoint-dir is set)",
    )
    stream_run.add_argument(
        "--resume", action="store_true",
        help="resume from the newest usable checkpoint in "
        "--checkpoint-dir",
    )
    stream_run.add_argument(
        "--events-out", type=pathlib.Path, default=None,
        help="append detection events to this JSONL log (default: "
        "print to stdout)",
    )
    stream_run.add_argument(
        "--stream-metrics-out", type=pathlib.Path, default=None,
        help="write the repro.engine.metrics/1 stream document here",
    )
    stream_run.add_argument(
        "--max-records", type=int, default=None,
        help="stop after N records this run (the engine stays "
        "resumable)",
    )
    stream_run.add_argument(
        "--columnar", action="store_true",
        help="fold the flow file through the vectorized columnar "
        "path (identical events; guards/checkpoints polled per "
        "chunk)",
    )
    stream_run.add_argument(
        "--chunk-size", type=int, default=65536,
        help="rows per decoded column chunk with --columnar "
        "(default 65536)",
    )
    stream_run.add_argument(
        "--hitlist-dir", type=pathlib.Path, default=None,
        help="versioned rule store (see `repro artifacts --versioned`); "
        "rules/hitlist load from its newest generation instead of "
        "--artifacts, and refresh/hot-swap becomes available",
    )
    stream_run.add_argument(
        "--hitlist-refresh-every", type=int, default=0,
        help="poll --hitlist-dir for a newer generation every N "
        "records (at absolute record-count multiples, so resumed "
        "runs poll at the same stream positions) and hot-swap at "
        "the next event-time hour boundary (0 = no polling)",
    )
    stream_run.add_argument(
        "--migrate-rules", action="store_true",
        help="allow --resume under a different rule generation by "
        "migrating the checkpointed evidence (surviving rules keep "
        "their windows, dropped rules are expired and counted)",
    )
    stream_run.add_argument(
        "--inject-sigterm-at", type=int, default=None,
        help="fault harness: deliver a real SIGTERM to this process "
        "just before folding record index N (deterministic soak "
        "testing of the drain path)",
    )
    stream_run.add_argument(
        "--fleet-workers", type=int, default=0,
        help="fleet mode: route the stream onto N supervised worker "
        "processes and merge their event logs byte-identically to a "
        "single-engine run (0 = off; requires --checkpoint-dir as the "
        "fleet directory and --events-out as the merged log)",
    )
    stream_run.add_argument(
        "--fleet-ring-slots", type=int, default=64,
        help="consistent-hash ring slots with --fleet-workers "
        "(default 64)",
    )
    stream_run.add_argument(
        "--fleet-batch-size", type=int, default=2048,
        help="records per routed batch with --fleet-workers "
        "(default 2048)",
    )
    stream_run.add_argument(
        "--rebalance", action="store_true",
        help="with --fleet-workers: on worker death, skip in-place "
        "restarts and immediately quarantine + rebalance its ring "
        "slots onto the successor",
    )

    collect = commands.add_parser(
        "collect",
        help=(
            "live UDP NetFlow v9 / IPFIX collector service feeding "
            "the online detector; see repro.collector"
        ),
    )
    collect.add_argument(
        "--bind", default="127.0.0.1:0",
        help="UDP HOST:PORT to receive export datagrams on (port 0 = "
        "ephemeral, resolved port lands in --ready-file; default "
        "127.0.0.1:0)",
    )
    collect.add_argument(
        "--control-port", type=int, default=0,
        help="HTTP control plane port on the bind host (0 = ephemeral; "
        "default 0)",
    )
    collect.add_argument(
        "--no-control", action="store_true",
        help="disable the HTTP control plane entirely",
    )
    collect.add_argument(
        "--exporter-timeout", type=float, default=300.0,
        help="drop an exporter's template cache + pending buffer after "
        "this many seconds of silence (default 300)",
    )
    collect.add_argument(
        "--pending-sets", type=int, default=64,
        help="max buffered data-before-template sets per exporter "
        "(default 64)",
    )
    collect.add_argument(
        "--pending-ttl", type=float, default=60.0,
        help="seconds a buffered data set may wait for its template "
        "(default 60)",
    )
    collect.add_argument(
        "--recv-buffer", type=int, default=None,
        help="request SO_RCVBUF bytes on the UDP socket (default: OS)",
    )
    collect.add_argument(
        "--idle-exit", type=float, default=None,
        help="exit 0 after this many seconds without a datagram "
        "(default: run until signalled)",
    )
    collect.add_argument(
        "--max-datagrams", type=int, default=None,
        help="exit 0 after receiving N datagrams (test/bench bound)",
    )
    collect.add_argument(
        "--artifacts", type=pathlib.Path, default=None,
        help=(
            "directory with hitlist.json/rules.json (default: derive "
            "them from the simulated world)"
        ),
    )
    collect.add_argument(
        "--threshold", type=float, default=0.4,
        help="detection threshold D (default 0.4)",
    )
    collect.add_argument(
        "--require-established", action="store_true",
        help="drop TCP flows without an established handshake (spoof "
        "filter)",
    )
    collect.add_argument(
        "--max-subscribers", type=int, default=1 << 16,
        help="state-table bound: tracked subscriber lines "
        "(default 65536)",
    )
    collect.add_argument(
        "--ttl-seconds", type=int, default=None,
        help="evict subscribers idle longer than this (event time; "
        "default: no TTL)",
    )
    collect.add_argument(
        "--checkpoint-dir", type=pathlib.Path, default=None,
        help="directory for crash-safe checkpoints",
    )
    collect.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="checkpoint every N folded records (service-owned "
        "cadence; 0 = only on drain)",
    )
    collect.add_argument(
        "--resume", action="store_true",
        help="resume from the newest usable checkpoint in "
        "--checkpoint-dir (the --journal is truncated to match)",
    )
    collect.add_argument(
        "--events-out", type=pathlib.Path, default=None,
        help="append detection events to this JSONL log (default: "
        "print to stdout on exit)",
    )
    collect.add_argument(
        "--journal", type=pathlib.Path, default=None,
        help="append every delivered-and-decodable record to this "
        "flow file (the delivered-set oracle a live run is verified "
        "against)",
    )
    collect.add_argument(
        "--stream-metrics-out", type=pathlib.Path, default=None,
        help="write the repro.engine.metrics/1 document (with the "
        "'collector' section) here on exit",
    )
    collect.add_argument(
        "--ready-file", type=pathlib.Path, default=None,
        help="write {'udp_port', 'control_port', 'pid'} JSON here "
        "once both sockets are bound",
    )
    collect.add_argument(
        "--fleet-workers", type=int, default=0,
        help="fold into a sharded worker fleet instead of one "
        "in-process engine (0 = off, -1 = CPU count); needs "
        "--journal (the fleet's replay source), --checkpoint-dir "
        "(the fleet directory), and --events-out (the merged log)",
    )
    collect.add_argument(
        "--fleet-ring-slots", type=int, default=64,
        help="consistent-hash ring slots in fleet mode (default 64)",
    )
    collect.add_argument(
        "--fleet-batch-size", type=int, default=2048,
        help="records per router->worker batch in fleet mode "
        "(default 2048)",
    )

    sweep = commands.add_parser(
        "sweep",
        help=(
            "scenario-matrix evaluation: run the detector over a grid "
            "of adversarial/realism cells; see repro.sweep"
        ),
    )
    sweep_commands = sweep.add_subparsers(
        dest="sweep_command", required=True
    )
    sweep_run = sweep_commands.add_parser(
        "run",
        help=(
            "expand a grid into cells, run per-record + columnar "
            "detection per cell, write metrics JSONs + a scorecard"
        ),
    )
    sweep_run.add_argument(
        "--grid", default="quick",
        help="preset name (quick/paper/adversarial) or a JSON grid "
        "file (default quick)",
    )
    sweep_run.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("sweep-out"),
        help="output directory for cell JSONs + scorecard "
        "(default sweep-out/)",
    )
    sweep_run.add_argument(
        "--workers", dest="sweep_workers", type=int, default=1,
        help="cell-level process parallelism (default 1; results are "
        "identical for any value)",
    )
    sweep_run.add_argument(
        "--artifacts", type=pathlib.Path, default=None,
        help=(
            "directory with hitlist.json/rules.json (default: derive "
            "them from the simulated world)"
        ),
    )
    sweep_run.add_argument(
        "--threshold", type=float, default=0.4,
        help="detection threshold D (default 0.4)",
    )
    sweep_run.add_argument(
        "--lines", type=int, default=240,
        help="subscriber lines per cell (default 240)",
    )
    sweep_run.add_argument(
        "--sweep-days", type=int, default=2,
        help="traffic days per cell (default 2)",
    )
    sweep_run.add_argument(
        "--chunk-size", type=int, default=4096,
        help="rows per decoded column chunk on the columnar leg "
        "(default 4096)",
    )
    return parser


def _emit(text: str, output: Optional[pathlib.Path]) -> None:
    if output is None:
        print(text)
    else:
        output.write_text(text + "\n")
        print(f"wrote {output}", file=sys.stderr)


def _run_experiment(
    identifier: str, context: ExperimentContext
) -> str:
    run, render = EXPERIMENTS[identifier]
    return render(run(context))


def _load_artifacts(directory: pathlib.Path):
    from repro.core.serialization import (
        hitlist_from_json,
        rules_from_json,
    )

    hitlist = hitlist_from_json(
        (directory / "hitlist.json").read_text()
    )
    rules = rules_from_json((directory / "rules.json").read_text())
    return hitlist, rules


def _run_stream(args) -> int:
    """``repro stream run``: online detection over a flow file.

    With ``--artifacts`` the simulated world is never built — the
    streaming path starts in milliseconds, which is the deployment
    shape (artifacts are produced once by ``repro artifacts``).

    Exit codes: 0 when the whole input was consumed,
    :data:`~repro.runtime.EXIT_DRAINED` (3) when a signal or deadline
    ended the run early but resumably, 70 when a drain overran
    ``--drain-grace`` (see README "Graceful shutdown & overload").
    """
    import json

    from repro.runtime import (
        EXIT_DRAINED,
        DeadlineBudget,
        MemoryGovernor,
        ShutdownCoordinator,
        StopToken,
        parse_memory_size,
    )
    from repro.stream import (
        CheckpointError,
        JsonlEventSink,
        MemoryEventSink,
        RuleVersionMismatch,
        StreamConfig,
        StreamDetectionEngine,
    )

    store = None
    rules_version = 0
    if args.hitlist_refresh_every and args.hitlist_dir is None:
        print(
            "error: --hitlist-refresh-every needs --hitlist-dir",
            file=sys.stderr,
        )
        return 2
    if args.hitlist_dir is not None:
        from repro.rules import VersionedRuleStore

        store = VersionedRuleStore(args.hitlist_dir)
        loaded = store.load_latest()
        if loaded is None:
            print(
                f"error: no usable rule artifact under "
                f"{args.hitlist_dir} (publish one with "
                f"`repro artifacts --versioned {args.hitlist_dir}`)",
                file=sys.stderr,
            )
            return 2
        hitlist = loaded.artifact.hitlist
        rules = loaded.artifact.rules
        rules_version = loaded.artifact.version
        if loaded.fallbacks:
            print(
                f"# rules artifact fallback: skipped "
                f"{loaded.fallbacks} damaged generation(s), using "
                f"last-good v{rules_version}",
                file=sys.stderr,
            )
    elif args.artifacts is not None:
        hitlist, rules = _load_artifacts(args.artifacts)
    else:
        context = get_context(
            seed=args.seed,
            wild_subscribers=args.subscribers,
            wild_days=args.days,
        )
        hitlist, rules = context.hitlist, context.rules
    if args.fleet_workers:
        return _run_stream_fleet(args, rules, hitlist, rules_version)
    if args.checkpoint_every and args.checkpoint_dir is None:
        print(
            "warning: --checkpoint-every has no effect without "
            "--checkpoint-dir; running without crash safety",
            file=sys.stderr,
        )
    config = StreamConfig(
        threshold=args.threshold,
        require_established=args.require_established,
        max_subscribers=args.max_subscribers,
        ttl_seconds=args.ttl_seconds,
        workers=max(1, args.workers),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=(
            args.checkpoint_every if args.checkpoint_dir else 0
        ),
        quarantine_dir=args.quarantine_dir,
        columnar=args.columnar,
        chunk_size=args.chunk_size,
    )
    sink = (
        JsonlEventSink(args.events_out, resume=args.resume)
        if args.events_out is not None
        else MemoryEventSink()
    )
    token = StopToken()
    governor = (
        MemoryGovernor(parse_memory_size(args.memory_budget))
        if args.memory_budget is not None
        else None
    )
    deadline = (
        DeadlineBudget(args.deadline)
        if args.deadline is not None
        else None
    )
    try:
        with ShutdownCoordinator(token, grace=args.drain_grace):
            if args.resume:
                if config.checkpoint_dir is None:
                    print(
                        "error: --resume needs --checkpoint-dir",
                        file=sys.stderr,
                    )
                    return 2
                try:
                    engine = StreamDetectionEngine.resume(
                        rules, hitlist, config, sink,
                        stop_token=token,
                        governor=governor,
                        deadline=deadline,
                        rules_version=rules_version,
                        migrate_rules=args.migrate_rules,
                    )
                except RuleVersionMismatch as exc:
                    # The store may still hold the generation this
                    # checkpoint was taken under — resuming with it is
                    # always exact, no migration needed.
                    engine = _resume_with_checkpoint_rules(
                        store, exc, config, sink, token,
                        governor, deadline,
                    )
                    if engine is None:
                        print(
                            f"error: cannot resume: {exc}",
                            file=sys.stderr,
                        )
                        return 2
                except CheckpointError as exc:
                    print(
                        f"error: cannot resume: {exc}", file=sys.stderr
                    )
                    return 2
                _restage_pending_rules(engine, store)
            else:
                engine = StreamDetectionEngine(
                    rules, hitlist, config, sink,
                    stop_token=token,
                    governor=governor,
                    deadline=deadline,
                    rules_version=rules_version,
                )
            if store is not None and args.hitlist_refresh_every:
                processed = _stream_ingest_with_refresh(
                    engine, args, store
                )
            else:
                processed = _stream_ingest(engine, args)
            if engine.stopped:
                # Early stop (signal/deadline): final checkpoint at
                # the exact record reached + sink flush.
                engine.drain()
            elif (
                engine.config.checkpoint_dir is not None
                and engine.metrics.records_since_checkpoint
            ):
                engine.write_checkpoint()
            metrics = engine.metrics_dict()
            print(
                f"# processed={processed} "
                f"total={engine.records_processed} "
                f"matched={engine.metrics.flows_matched} "
                f"events={engine.metrics.events_emitted} "
                f"quarantined={engine.metrics.records_quarantined}",
                file=sys.stderr,
            )
            if engine.stopped:
                print(
                    f"# drained reason={engine.metrics.overload.stop_reason} "
                    f"resumable={engine.config.checkpoint_dir is not None}",
                    file=sys.stderr,
                )
            if isinstance(sink, MemoryEventSink):
                for event in sink.events:
                    print(event.to_line())
            else:
                sink.flush(sync=True)
    finally:
        sink.close()
    if args.stream_metrics_out is not None:
        args.stream_metrics_out.write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.stream_metrics_out}", file=sys.stderr)
    return EXIT_DRAINED if engine.stopped else 0


def _run_stream_fleet(args, rules, hitlist, rules_version) -> int:
    """``repro stream run --fleet-workers N``: sharded streaming.

    The router consistent-hashes the flow stream onto N supervised
    worker processes under ``--checkpoint-dir`` (the fleet directory:
    ``ring.json``, per-worker checkpoints and event logs) and writes
    the deterministically merged event log to ``--events-out`` —
    byte-identical to what a single engine would emit, including
    across worker kills, rebalances, and SIGTERM drain/resume.

    Exit codes match the single-engine path: 0 on a complete run,
    :data:`~repro.runtime.EXIT_DRAINED` (3) on a resumable early stop.
    """
    import json

    from repro.fleet import FleetConfig, run_fleet
    from repro.runtime import (
        ShutdownCoordinator,
        StopToken,
        resolve_workers,
    )

    if args.checkpoint_dir is None:
        print(
            "error: --fleet-workers needs --checkpoint-dir (the "
            "fleet directory)",
            file=sys.stderr,
        )
        return 2
    if args.events_out is None:
        print(
            "error: --fleet-workers needs --events-out (the merged "
            "event log)",
            file=sys.stderr,
        )
        return 2
    unsupported = [
        ("--hitlist-refresh-every", args.hitlist_refresh_every),
        ("--max-records", args.max_records),
        ("--migrate-rules", args.migrate_rules),
        ("--memory-budget", args.memory_budget),
        ("--deadline", args.deadline),
    ]
    for flag, value in unsupported:
        if value:
            print(
                f"error: {flag} is not supported with "
                f"--fleet-workers",
                file=sys.stderr,
            )
            return 2
    config = FleetConfig(
        workers=resolve_workers(args.fleet_workers),
        ring_slots=args.fleet_ring_slots,
        batch_size=args.fleet_batch_size,
        checkpoint_every=args.checkpoint_every,
        columnar=args.columnar,
        chunk_size=args.chunk_size,
        threshold=args.threshold,
        require_established=args.require_established,
        max_subscribers=args.max_subscribers,
        ttl_seconds=args.ttl_seconds,
        rules_version=rules_version,
        max_restarts=0 if args.rebalance else 1,
        inject_sigterm_at=args.inject_sigterm_at,
    )
    token = StopToken()
    with ShutdownCoordinator(token, grace=args.drain_grace):
        code, service = run_fleet(
            rules,
            hitlist,
            args.flows,
            args.checkpoint_dir,
            args.events_out,
            config,
            resume=args.resume,
            stop_token=token,
        )
    fleet = service.metrics
    print(
        f"# fleet workers={config.workers} "
        f"routed={fleet.records_routed} "
        f"skipped={fleet.records_skipped} "
        f"events={fleet.merged_events} "
        f"restarts={fleet.restarts} "
        f"rebalances={fleet.rebalances} "
        f"epoch={fleet.ring_epoch}",
        file=sys.stderr,
    )
    if code:
        print(
            f"# drained reason={token.reason} resumable=True",
            file=sys.stderr,
        )
    if args.stream_metrics_out is not None:
        args.stream_metrics_out.write_text(
            json.dumps(
                service.stream_metrics().to_dict(),
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {args.stream_metrics_out}", file=sys.stderr)
    return code


def _run_collect_fleet(args, host, port, rules, hitlist) -> int:
    """``repro collect --fleet-workers N``: socket front, worker fleet.

    The UDP ingest front and control plane stay identical to the
    single-engine collector; folding routes through a
    :class:`~repro.fleet.service.FleetService` in push mode, with the
    ``--journal`` doubling as the fleet's rebalance/resume replay
    source (and therefore mandatory).
    """
    import json

    from repro.collector import CollectorConfig, FleetCollectorService
    from repro.fleet import FleetConfig, FleetService
    from repro.runtime import (
        EXIT_DRAINED,
        ShutdownCoordinator,
        StopToken,
        resolve_workers,
    )

    missing = [
        ("--journal", args.journal),
        ("--checkpoint-dir", args.checkpoint_dir),
        ("--events-out", args.events_out),
    ]
    for flag, value in missing:
        if value is None:
            print(
                f"error: --fleet-workers needs {flag}",
                file=sys.stderr,
            )
            return 2
    config = FleetConfig(
        workers=resolve_workers(args.fleet_workers),
        ring_slots=args.fleet_ring_slots,
        batch_size=args.fleet_batch_size,
        threshold=args.threshold,
        require_established=args.require_established,
        max_subscribers=args.max_subscribers,
        ttl_seconds=args.ttl_seconds,
    )
    token = StopToken()
    fleet = FleetService(
        rules,
        hitlist,
        args.checkpoint_dir,
        config,
        stop_token=token,
    )
    service = FleetCollectorService(
        fleet,
        CollectorConfig(
            bind_host=host,
            bind_port=port,
            control_host=host,
            control_port=(
                None if args.no_control else args.control_port
            ),
            exporter_timeout=args.exporter_timeout,
            pending_max_sets=args.pending_sets,
            pending_ttl=args.pending_ttl,
            recv_buffer=args.recv_buffer,
            idle_exit=args.idle_exit,
            max_datagrams=args.max_datagrams,
            checkpoint_every=args.checkpoint_every,
            journal=args.journal,
            ready_file=args.ready_file,
        ),
        args.events_out,
    )
    with ShutdownCoordinator(token, grace=args.drain_grace):
        exit_code = service.run(resume=args.resume)
    collector = service.source.metrics
    metrics = fleet.metrics
    print(
        f"# datagrams={collector.datagrams_received} "
        f"decoded={collector.datagrams_decoded} "
        f"quarantined={collector.datagrams_quarantined} "
        f"records={metrics.records_routed + metrics.records_skipped} "
        f"events={metrics.merged_events} "
        f"workers={config.workers} "
        f"restarts={metrics.restarts} "
        f"rebalances={metrics.rebalances}",
        file=sys.stderr,
    )
    if exit_code == EXIT_DRAINED:
        print(
            f"# drained reason={token.reason} resumable=True",
            file=sys.stderr,
        )
    if args.stream_metrics_out is not None:
        doc = fleet.stream_metrics()
        doc.collector = collector
        args.stream_metrics_out.write_text(
            json.dumps(doc.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.stream_metrics_out}", file=sys.stderr)
    return exit_code


def _run_collect(args) -> int:
    """``repro collect``: long-running UDP collector service.

    Binds the data socket and (unless ``--no-control``) the HTTP
    control plane, folds every delivered-and-decodable export record
    into the streaming engine, and exits 0 when a bounded run
    (``--max-datagrams`` / ``--idle-exit``) completes or
    :data:`~repro.runtime.EXIT_DRAINED` (3) when a signal/deadline
    drained it to a final checkpoint ``--resume`` continues from.
    """
    import json

    from repro.collector import (
        CollectorConfig,
        CollectorService,
        truncate_journal,
    )
    from repro.runtime import (
        EXIT_DRAINED,
        DeadlineBudget,
        MemoryGovernor,
        ShutdownCoordinator,
        StopToken,
        parse_memory_size,
    )
    from repro.stream import (
        CheckpointError,
        JsonlEventSink,
        MemoryEventSink,
        StreamConfig,
        StreamDetectionEngine,
    )

    host, _, port_text = args.bind.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"error: --bind must be HOST:PORT, got {args.bind!r}",
            file=sys.stderr,
        )
        return 2
    if args.artifacts is not None:
        hitlist, rules = _load_artifacts(args.artifacts)
    else:
        context = get_context(
            seed=args.seed,
            wild_subscribers=args.subscribers,
            wild_days=args.days,
        )
        hitlist, rules = context.hitlist, context.rules
    if args.fleet_workers:
        return _run_collect_fleet(
            args, host, int(port_text), rules, hitlist
        )
    if args.checkpoint_every and args.checkpoint_dir is None:
        print(
            "error: --checkpoint-every needs --checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    config = StreamConfig(
        threshold=args.threshold,
        require_established=args.require_established,
        max_subscribers=args.max_subscribers,
        ttl_seconds=args.ttl_seconds,
        workers=max(1, args.workers),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=0,  # the service owns the cadence
        quarantine_dir=args.quarantine_dir,
    )
    sink = (
        JsonlEventSink(args.events_out, resume=args.resume)
        if args.events_out is not None
        else MemoryEventSink()
    )
    token = StopToken()
    governor = (
        MemoryGovernor(parse_memory_size(args.memory_budget))
        if args.memory_budget is not None
        else None
    )
    deadline = (
        DeadlineBudget(args.deadline)
        if args.deadline is not None
        else None
    )
    try:
        with ShutdownCoordinator(token, grace=args.drain_grace):
            if args.resume:
                if config.checkpoint_dir is None:
                    print(
                        "error: --resume needs --checkpoint-dir",
                        file=sys.stderr,
                    )
                    return 2
                try:
                    engine = StreamDetectionEngine.resume(
                        rules, hitlist, config, sink,
                        stop_token=token,
                        governor=governor,
                        deadline=deadline,
                    )
                except CheckpointError as exc:
                    print(
                        f"error: cannot resume: {exc}", file=sys.stderr
                    )
                    return 2
                if args.journal is not None:
                    kept = truncate_journal(
                        args.journal, engine.records_processed
                    )
                    print(
                        f"# journal truncated to {kept} records",
                        file=sys.stderr,
                    )
            else:
                engine = StreamDetectionEngine(
                    rules, hitlist, config, sink,
                    stop_token=token,
                    governor=governor,
                    deadline=deadline,
                )
            service = CollectorService(
                engine,
                config=CollectorConfig(
                    bind_host=host,
                    bind_port=int(port_text),
                    control_host=host,
                    control_port=(
                        None if args.no_control else args.control_port
                    ),
                    exporter_timeout=args.exporter_timeout,
                    pending_max_sets=args.pending_sets,
                    pending_ttl=args.pending_ttl,
                    recv_buffer=args.recv_buffer,
                    idle_exit=args.idle_exit,
                    max_datagrams=args.max_datagrams,
                    checkpoint_every=args.checkpoint_every,
                    journal=args.journal,
                    ready_file=args.ready_file,
                ),
            )
            exit_code = service.run()
            metrics = engine.metrics_dict()
            collector = service.source.metrics
            print(
                f"# datagrams={collector.datagrams_received} "
                f"decoded={collector.datagrams_decoded} "
                f"quarantined={collector.datagrams_quarantined} "
                f"records={engine.records_processed} "
                f"events={engine.metrics.events_emitted}",
                file=sys.stderr,
            )
            if exit_code == EXIT_DRAINED:
                print(
                    f"# drained reason="
                    f"{engine.metrics.overload.stop_reason or token.reason} "
                    f"resumable={config.checkpoint_dir is not None}",
                    file=sys.stderr,
                )
            if isinstance(sink, MemoryEventSink):
                for event in sink.events:
                    print(event.to_line())
            else:
                sink.flush(sync=True)
    finally:
        sink.close()
    if args.stream_metrics_out is not None:
        args.stream_metrics_out.write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.stream_metrics_out}", file=sys.stderr)
    return exit_code


def _stream_ingest(engine, args, max_records=None) -> int:
    """Run the stream engine's ingest, optionally under fault probes.

    The fault harness (``--inject-sigterm-at``) always drives the
    per-record tuple path — the probe fires at an exact record index,
    which a chunked fold cannot honour; ``--columnar`` applies to
    ordinary ingest via ``engine.process_flowfile``.
    """
    if max_records is None:
        max_records = args.max_records
    if args.inject_sigterm_at is None:
        return engine.process_flowfile(
            args.flows, max_records=max_records
        )
    from repro.faults import SignalPlan
    from repro.netflow.replay import iter_flow_tuples

    skip = engine.records_processed
    tuples = iter_flow_tuples(args.flows, quarantine=engine.quarantine)
    for _ in range(skip):
        if next(tuples, None) is None:
            return 0
    target = args.inject_sigterm_at - skip
    if target >= 0:
        tuples = SignalPlan(at_index=target).wrap(tuples)
    return engine.process_tuples(
        tuples, start_index=skip, max_records=max_records
    )


def _stream_ingest_with_refresh(engine, args, store) -> int:
    """Ingest in refresh-cadence segments, hot-swapping between them.

    The store is polled every ``--hitlist-refresh-every`` records *at
    absolute record-count multiples*: the first segment is sized to
    land on the next multiple, so a resumed run polls (and therefore
    stages swaps) at exactly the same stream positions as an
    uninterrupted one — the precondition for byte-identical event
    logs across kills.
    """
    every = args.hitlist_refresh_every
    remaining = args.max_records
    total = 0
    while True:
        step = every - (engine.records_processed % every)
        if remaining is not None:
            step = min(step, remaining)
        if step <= 0:
            break
        processed = _stream_ingest(engine, args, max_records=step)
        total += processed
        if remaining is not None:
            remaining -= processed
        if processed < step or engine.stopped:
            break
        _maybe_stage_refresh(engine, store)
    return total


def _maybe_stage_refresh(engine, store) -> None:
    """Stage the store's newest generation if it advanced."""
    from repro.pipeline.swap import RuleGeneration

    loaded = store.load_latest()
    if loaded is None:
        return
    pending = engine.pending_rules
    current = (
        pending.generation.version if pending else engine.rules_version
    )
    if loaded.artifact.version <= current:
        return
    generation = RuleGeneration.prepare(
        loaded.artifact.version,
        loaded.artifact.rules,
        loaded.artifact.hitlist,
        build_index=engine.config.columnar,
    )
    boundary = engine.stage_rules(generation)
    print(
        f"# staged rules v{generation.version} "
        f"(activates at event-time {boundary})",
        file=sys.stderr,
    )


def _resume_with_checkpoint_rules(
    store, mismatch, config, sink, token, governor, deadline
):
    """Resume under the exact generation the checkpoint was taken with.

    Only possible when the store still holds that version; returns
    ``None`` (caller reports the mismatch) when it was pruned or no
    store is configured.
    """
    from repro.rules import ArtifactError
    from repro.stream import StreamDetectionEngine

    if store is None:
        return None
    try:
        artifact = store.load_version(mismatch.checkpoint_version)
    except ArtifactError:
        return None
    print(
        f"# resuming under checkpointed rules "
        f"v{mismatch.checkpoint_version} (store head is newer; the "
        f"refresh loop will swap forward at the next boundary)",
        file=sys.stderr,
    )
    return StreamDetectionEngine.resume(
        artifact.rules, artifact.hitlist, config, sink,
        stop_token=token,
        governor=governor,
        deadline=deadline,
        rules_version=artifact.version,
    )


def _restage_pending_rules(engine, store) -> None:
    """Re-stage the swap a resumed checkpoint had in flight.

    The checkpoint records ``(pending_version, activate_at)``; loading
    that generation from the store and staging it at the *same*
    event-time boundary makes the resumed run swap exactly where the
    uninterrupted run would have.
    """
    from repro.pipeline.swap import RuleGeneration
    from repro.rules import ArtifactError

    if store is None or engine.checkpoint_pending_rules is None:
        return
    version, activate_at = engine.checkpoint_pending_rules
    if version <= engine.rules_version:
        return
    try:
        artifact = store.load_version(version)
    except ArtifactError as exc:
        print(
            f"# warning: checkpoint had rules v{version} staged but "
            f"the artifact is gone ({exc}); the refresh loop will "
            f"pick up the store head instead",
            file=sys.stderr,
        )
        return
    generation = RuleGeneration.prepare(
        artifact.version,
        artifact.rules,
        artifact.hitlist,
        build_index=engine.config.columnar,
    )
    engine.stage_rules(generation, activate_at=activate_at)


def _run_sweep(args) -> int:
    """``repro sweep run``: evaluate the detector over a scenario grid.

    Writes one ``repro.sweep.metrics/1`` JSON per cell plus
    ``scorecard.json``/``scorecard.md`` into ``--out``.  Exit code 0
    when every cell's per-record and columnar detections agreed, 1
    otherwise (the sweep is also an equivalence harness).
    """
    from repro.sweep import TrafficModel, load_grid, run_sweep

    grid = load_grid(args.grid)
    address_space = None
    if args.artifacts is not None:
        hitlist, rules = _load_artifacts(args.artifacts)
    else:
        context = get_context(
            seed=args.seed,
            wild_subscribers=args.subscribers,
            wild_days=args.days,
        )
        hitlist, rules = context.hitlist, context.rules
        address_space = context.scenario.isp_topology().subscriber_space
    result = run_sweep(
        rules,
        hitlist,
        grid,
        model=TrafficModel(lines=args.lines, days=args.sweep_days),
        seed=args.seed,
        threshold=args.threshold,
        chunk_size=args.chunk_size,
        workers=args.sweep_workers,
        address_space=address_space,
        out_dir=args.out,
    )
    print(result.markdown)
    print(
        f"wrote {len(result.cells)} cell documents + scorecard to "
        f"{args.out}",
        file=sys.stderr,
    )
    return 0 if result.all_paths_equal else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for identifier in sorted(EXPERIMENTS):
            print(identifier)
        return 0

    if args.command == "stream":
        return _run_stream(args)

    if args.command == "collect":
        return _run_collect(args)

    if args.command == "sweep":
        return _run_sweep(args)

    from repro.runtime import ShutdownCoordinator, parse_memory_size

    # One coordinator over the whole batch command: SIGTERM/SIGINT
    # stops shard admission (via repro.runtime.current_token) and the
    # run returns whatever completed, marked in the metrics document.
    with ShutdownCoordinator(grace=args.drain_grace):
        return _run_batch(args, parse_memory_size)


def _run_batch(args, parse_memory_size) -> int:
    context = get_context(
        seed=args.seed,
        wild_subscribers=args.subscribers,
        wild_days=args.days,
        wild_workers=args.workers,
        wild_shard_size=args.shard_size,
        wild_max_retries=args.max_retries,
        wild_shard_timeout=args.shard_timeout,
        wild_quarantine_dir=(
            str(args.quarantine_dir)
            if args.quarantine_dir is not None
            else None
        ),
        wild_memory_budget=(
            parse_memory_size(args.memory_budget)
            if args.memory_budget is not None
            else None
        ),
        wild_deadline=args.deadline,
    )
    if args.metrics_out is not None:
        import json

        metrics = context.wild.metrics
        if metrics is None:
            print(
                "--metrics-out needs the sharded engine "
                "(pass --workers 0 or a value > 1)",
                file=sys.stderr,
            )
            return 2
        args.metrics_out.write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.metrics_out}", file=sys.stderr)

    if args.command == "pipeline":
        print(pipeline_counts.render(pipeline_counts.run(context)))
        return 0

    if args.command == "experiment":
        if args.id == "all":
            directory = args.output or pathlib.Path("results")
            directory.mkdir(parents=True, exist_ok=True)
            for identifier in sorted(EXPERIMENTS):
                text = _run_experiment(identifier, context)
                _emit(text, directory / f"{identifier}.txt")
            return 0
        _emit(_run_experiment(args.id, context), args.output)
        return 0

    if args.command == "artifacts":
        from repro.core.serialization import (
            hitlist_to_json,
            rules_to_json,
        )

        if args.versioned:
            from repro.rules import CandidateRejected, VersionedRuleStore

            store = VersionedRuleStore(args.directory)
            try:
                artifact = store.publish(context.rules, context.hitlist)
            except CandidateRejected as exc:
                print(
                    f"error: candidate rejected: {exc}", file=sys.stderr
                )
                return 2
            print(
                f"published rules v{artifact.version} to "
                f"{args.directory}",
                file=sys.stderr,
            )
            return 0

        args.directory.mkdir(parents=True, exist_ok=True)
        _emit(
            hitlist_to_json(context.hitlist),
            args.directory / "hitlist.json",
        )
        _emit(
            rules_to_json(context.rules),
            args.directory / "rules.json",
        )
        return 0

    if args.command == "detect":
        from repro.core.serialization import (
            hitlist_from_json,
            rules_from_json,
        )
        from repro.pipeline import PipelineConfig, run_flow_detection

        if args.artifacts is not None:
            hitlist = hitlist_from_json(
                (args.artifacts / "hitlist.json").read_text()
            )
            rules = rules_from_json(
                (args.artifacts / "rules.json").read_text()
            )
        else:
            hitlist, rules = context.hitlist, context.rules
        # The offline assembly of the shared staged pipeline — same
        # stage graph (and therefore same detections) as the stream
        # path; see repro.pipeline.
        result = run_flow_detection(
            rules,
            hitlist,
            args.flows,
            PipelineConfig.from_args(
                threshold=args.threshold,
                columnar=args.columnar,
                chunk_size=args.chunk_size,
                quarantine_dir=args.quarantine_dir,
                memory_budget=(
                    parse_memory_size(args.memory_budget)
                    if args.memory_budget is not None
                    else None
                ),
                deadline_seconds=args.deadline,
            ),
        )
        print(
            f"# flows={result.flows_seen} "
            f"matched={result.flows_matched}"
        )
        for detection in result.detections:
            print(
                f"{detection.subscriber},{detection.class_name},"
                f"{detection.detected_at}"
            )
        return 0

    if args.command == "export":
        from repro.analysis import export as export_module
        from repro.experiments import fig10_crosscheck as crosscheck

        if args.what == "wild-daily":
            text = export_module.wild_daily_csv(context.wild)
        elif args.what == "wild-hourly":
            text = export_module.wild_hourly_csv(context.wild)
        elif args.what == "crosscheck":
            text = export_module.crosscheck_csv(
                crosscheck.run(context)
            )
        else:
            text = export_module.ixp_daily_csv(context.ixp)
        _emit(text.rstrip("\n"), args.output)
        return 0

    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
