"""On-disk fault injection: damaged checkpoints and perturbed streams.

These deliberately damage on-disk checkpoints (the failure modes a
crash or dying disk produces) and perturb record streams (the
out-of-order delivery a multi-exporter collector produces), so tests
can assert the subsystem degrades the way it promises to.  They are
test instrumentation, not production code paths.
"""

from __future__ import annotations

import pathlib
import random
from typing import Iterable, Iterator, List, TypeVar, Union

from repro.stream.checkpoint import checkpoint_path

__all__ = [
    "truncate_file",
    "corrupt_version_header",
    "corrupt_payload_byte",
    "write_partial_temp",
    "jitter_order",
]

T = TypeVar("T")


def truncate_file(
    path: Union[str, pathlib.Path], keep_bytes: int
) -> None:
    """Cut a file to its first ``keep_bytes`` bytes (disk-full crash)."""
    path = pathlib.Path(path)
    data = path.read_bytes()
    path.write_bytes(data[:keep_bytes])


def corrupt_version_header(path: Union[str, pathlib.Path]) -> None:
    """Rewrite the checkpoint header to claim an unsupported version."""
    path = pathlib.Path(path)
    raw = path.read_bytes()
    newline = raw.find(b"\n")
    header = raw[:newline].decode("ascii", errors="replace")
    tokens = header.split(" ")
    tokens[1] = "v999"
    path.write_bytes(" ".join(tokens).encode("ascii") + raw[newline:])


def corrupt_payload_byte(
    path: Union[str, pathlib.Path], offset_from_end: int = 2
) -> None:
    """Flip one payload byte (bit rot) so the digest check fails."""
    path = pathlib.Path(path)
    raw = bytearray(path.read_bytes())
    raw[-offset_from_end] ^= 0xFF
    path.write_bytes(bytes(raw))


def write_partial_temp(
    directory: Union[str, pathlib.Path], seq: int
) -> pathlib.Path:
    """Leave a half-written ``.tmp`` file behind (interrupted write)."""
    final = checkpoint_path(directory, seq)
    temp = final.with_suffix(final.suffix + ".tmp")
    temp.parent.mkdir(parents=True, exist_ok=True)
    temp.write_bytes(b"repro-stream-ckpt v1 sha256=deadbeef")
    return temp


def jitter_order(
    items: Iterable[T], displacement: int, seed: int
) -> Iterator[T]:
    """Yield ``items`` slightly out of order (bounded displacement).

    Models multi-exporter interleaving: each element leaves a small
    shuffle buffer of size ``displacement + 1``, so no element moves
    more than ``displacement`` positions.  Deterministic per ``seed``.
    """
    if displacement < 0:
        raise ValueError("displacement must be non-negative")
    rng = random.Random(seed)
    buffer: List[T] = []
    for item in items:
        buffer.append(item)
        if len(buffer) > displacement:
            yield buffer.pop(rng.randrange(len(buffer)))
    while buffer:
        yield buffer.pop(rng.randrange(len(buffer)))
