"""Fault injection for the live rule-swap lifecycle.

The swap fault matrix (``tests/test_swap_faults.py``) breaks each
stage of the refresh → publish → stage → flip chain on purpose and
asserts the two lifecycle guarantees: consumers degrade to the
*last-good* generation (never a torn or empty one), and a killed run
resumed mid-swap produces an event log byte-identical to the
uninterrupted run.  :class:`SwapPlan` names the injection points:

* ``corrupt_artifact`` — the newest published artifact is damaged on
  disk (bit rot, torn storage); readers must fall back to the
  previous generation;
* ``crash_mid_publish`` — the publisher died mid-write: a partial
  ``.tmp`` sibling and a torn final file for the next version are
  left behind; neither may be served, and the version number must
  not be reused;
* ``backend_outage`` — the recompute's passive-DNS/scan backends are
  down for the whole refresh; the refresher counts a failure and the
  store stays on last-good;
* ``sigterm_mid_swap`` — a real SIGTERM lands at an exact record
  index while a swap is staged or mid-flight (between publish and
  flip, or at the activation boundary itself); the drained run must
  resume to a byte-identical event log.

Like everything in :mod:`repro.faults`, plans are deterministic per
seed and per index — a matrix that cannot replay exactly cannot
assert bit-identical recovery.
"""

from __future__ import annotations

import pathlib
import signal as signal_module
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.faults.files import corrupt_payload_byte
from repro.faults.injection import FlakyProxy, SignalPlan
from repro.rules.lifecycle import (
    artifact_path,
    list_artifacts,
)

__all__ = ["SWAP_FAULT_KINDS", "SwapPlan"]

#: The injection points of the swap fault matrix.
SWAP_FAULT_KINDS = (
    "corrupt_artifact",
    "crash_mid_publish",
    "backend_outage",
    "sigterm_mid_swap",
)


@dataclass(frozen=True)
class SwapPlan:
    """One swap-lifecycle fault: what breaks, and exactly where.

    ``at_index`` (for ``sigterm_mid_swap``) is the 0-based record index
    the signal lands before — chosen by the test relative to the
    staged activation boundary, e.g. just before the boundary record
    ("crash between publish and flip") or just after it ("SIGTERM
    during swap").
    """

    kind: str
    at_index: int = 0
    signum: int = signal_module.SIGTERM
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SWAP_FAULT_KINDS:
            raise ValueError(
                f"unknown swap fault kind {self.kind!r}; "
                f"expected one of {SWAP_FAULT_KINDS}"
            )
        if self.at_index < 0:
            raise ValueError("at_index must be >= 0")

    # -- store sabotage (corrupt_artifact, crash_mid_publish) ----------

    def sabotage_store(self, directory) -> List[pathlib.Path]:
        """Damage the on-disk store at this plan's injection point.

        ``corrupt_artifact`` flips a payload byte of the newest
        artifact (the digest check must catch it and the loader fall
        back).  ``crash_mid_publish`` fabricates the wreckage of a
        publisher killed mid-write of the *next* version: a partial
        ``.tmp`` sibling plus a final file whose payload is truncated
        against its own header.  Returns the paths touched.
        """
        if self.kind not in ("corrupt_artifact", "crash_mid_publish"):
            raise ValueError(
                f"sabotage_store does not apply to {self.kind!r}"
            )
        directory = pathlib.Path(directory)
        artifacts = list_artifacts(directory)
        if not artifacts:
            raise ValueError(f"no artifacts under {directory} to sabotage")
        if self.kind == "corrupt_artifact":
            _version, newest = artifacts[-1]
            corrupt_payload_byte(newest)
            return [newest]
        if self.kind == "crash_mid_publish":
            latest_version, newest = artifacts[-1]
            torn = artifact_path(directory, latest_version + 1)
            raw = newest.read_bytes()
            # Keep the full header (it still claims the complete
            # length) but only half the payload — a write the crash
            # interrupted after the first blocks hit the disk.
            newline = raw.find(b"\n") + 1
            cut = newline + max(1, (len(raw) - newline) // 2)
            torn.write_bytes(raw[:cut])
            temp = torn.with_name(torn.name + ".tmp")
            temp.write_bytes(raw[:cut])
            return [torn, temp]
        raise AssertionError("unreachable")  # kinds checked above

    # -- backend sabotage (backend_outage) -----------------------------

    def wrap_backend(self, backend, outage_keys: Iterable = ()):
        """A :class:`~repro.faults.injection.FlakyProxy` that always
        fails (or fails only ``outage_keys`` when given) — the backend
        is *down* for the refresh, not merely flaky."""
        if self.kind != "backend_outage":
            raise ValueError(
                f"wrap_backend does not apply to {self.kind!r}"
            )
        keys = tuple(outage_keys)
        return FlakyProxy(
            backend,
            error_rate=0.0 if keys else 1.0,
            seed=self.seed,
            outage_keys=keys,
        )

    # -- process sabotage (sigterm_mid_swap) ---------------------------

    def wrap_records(self, records: Iterable) -> Iterator:
        """Deliver this plan's signal before record ``at_index``.

        Delegates to :class:`~repro.faults.injection.SignalPlan` — a
        real ``os.kill`` through the installed handler, so the drain
        path under test is the production one.
        """
        if self.kind != "sigterm_mid_swap":
            raise ValueError(
                f"wrap_records does not apply to {self.kind!r}"
            )
        return SignalPlan(self.at_index, self.signum).wrap(records)
