"""Fleet-mode damage: the fault matrix of the sharded stream plane.

:class:`FleetPlan` names the injection points a router → N-worker fleet
must survive with a merged event log still byte-identical to the
single-engine run:

* ``worker_crash`` — a worker process dies hard (``os._exit``) just
  before folding a given batch.  The supervisor restarts it with
  capped backoff (resume from its own checkpoint + router replay of
  the lost queue) or, once the restart budget is exhausted,
  quarantines it and rebalances its ring slots to a successor;
* ``worker_hang`` — a worker stops folding but keeps its process (and
  heartbeat thread) alive.  Ack-progress monitoring, not heartbeat
  staleness, is what must catch this one;
* ``router_crash`` — the router dies mid-route with worker queues in
  flight.  Recovery is a whole-fleet resume: ring assignment reloads
  from ``ring.json``, per-slot replay offsets rebuild from worker
  checkpoint lineage;
* ``rebalance_during_swap`` — a worker is killed *between* a staged
  rule-generation swap and its event-time activation boundary, so the
  successor (or reborn worker) must still apply the swap at exactly
  the same boundary.

Plans are scoped by ``(worker, batch seq, incarnation)`` so a fault
fires exactly once: the reborn incarnation of a crashed worker replays
the same batch sequence numbers without re-tripping the fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["FLEET_FAULT_KINDS", "FleetPlan"]

#: Every injection point of the fleet fault matrix.
FLEET_FAULT_KINDS = (
    "worker_crash",
    "worker_hang",
    "router_crash",
    "rebalance_during_swap",
)


@dataclass(frozen=True)
class FleetPlan:
    """One deterministic fleet fault.

    ``kind`` selects the injection point; ``worker``/``at_batch`` pin
    it to one worker's batch sequence number (0-based), and
    ``incarnation`` scopes it to one process incarnation (default 0 —
    the original process, so restarts do not re-fire).
    ``router_crash`` uses ``at_batch`` as a count of *router* batch
    sends and ignores ``worker``.
    """

    kind: str
    worker: int = 0
    at_batch: int = 0
    incarnation: int = 0
    #: how long a hung worker sleeps (longer than the router's hang
    #: timeout, shorter than any test timeout)
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FLEET_FAULT_KINDS:
            raise ValueError(
                f"unknown fleet fault {self.kind!r} "
                f"(kinds: {', '.join(FLEET_FAULT_KINDS)})"
            )

    # -- worker side --------------------------------------------------

    def worker_action(
        self, worker: int, incarnation: int, seq: int
    ) -> Optional[Tuple[str, float]]:
        """What (if anything) fires before this worker folds ``seq``.

        Returns ``("crash", 0)`` or ``("hang", seconds)`` — or ``None``.
        ``rebalance_during_swap`` is a ``worker_crash`` at the worker
        side; the *swap* half of the scenario is staged by the test
        driver before the stream reaches the activation boundary.
        """
        if (
            self.worker != worker
            or self.incarnation != incarnation
            or self.at_batch != seq
        ):
            return None
        if self.kind in ("worker_crash", "rebalance_during_swap"):
            return ("crash", 0.0)
        if self.kind == "worker_hang":
            return ("hang", self.hang_seconds)
        return None

    # -- router side --------------------------------------------------

    def router_crashes_at(self, batches_sent: int) -> bool:
        """True when the router must die after ``batches_sent`` sends."""
        return (
            self.kind == "router_crash"
            and batches_sent >= self.at_batch
        )
