"""Runtime fault injection: crashing shards, flaky lookups, bad records.

Three injection seams, matching the three resilience mechanisms:

* :class:`ShardFaultPlan` rides inside the
  :class:`~repro.resilience.supervisor.ShardEnvelope` into worker
  processes and fires *before* the shard simulates — raising, exiting
  the process, hanging, or sleeping.  Faults are attempt-scoped
  (``times=1`` fails the first attempt only), which is what lets the
  determinism tests assert a retried run is bit-identical to a clean
  one: the retry runs the untouched shard function.
* :class:`FlakyProxy` wraps a healthy lookup backend and raises
  :class:`~repro.resilience.retry.TransientLookupError` at a seeded
  error rate (or always, for named keys — a targeted outage), for
  feeding to :class:`~repro.resilience.lookups.ResilientLookup`.
* :func:`corrupt_flow_lines` damages flow-file records in place so the
  ingest quarantine has something to catch.
* :class:`SignalPlan` and :class:`MemoryPressurePlan` wrap a record
  iterable and, at an *exact* record index, deliver a real kernel
  signal to this process (``os.kill`` — the installed handler runs,
  exactly as a ``kill`` from outside would) or allocate a ballast that
  pushes RSS over a configured budget.  Both make the runtime-guard
  soak tests deterministic: the fault lands at a chosen record, not at
  a racy wall-clock instant.

Everything is picklable and deterministic per seed.
"""

from __future__ import annotations

import os
import pathlib
import random
import signal as signal_module
import time
import zlib
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.resilience.retry import TransientLookupError

__all__ = [
    "InjectedFault",
    "MemoryPressurePlan",
    "ShardFault",
    "ShardFaultPlan",
    "SignalPlan",
    "FlakyProxy",
    "corrupt_flow_lines",
]

FAULT_KINDS = ("raise", "exit", "hang", "slow")

#: How long a "hang" fault sleeps — far past any test's shard timeout,
#: short enough that a leaked worker cannot outlive the test session.
_HANG_SECONDS = 60.0


class InjectedFault(RuntimeError):
    """The error a ``raise``-kind shard fault throws inside a worker."""


@dataclass(frozen=True)
class ShardFault:
    """One shard's injected failure mode.

    ``kind``:
      * ``raise`` — throw :class:`InjectedFault` (a clean worker error;
        the pool survives);
      * ``exit`` — ``os._exit(3)`` (worker death; breaks the pool);
      * ``hang`` — sleep far past any shard timeout (triggers the
        heartbeat kill);
      * ``slow`` — sleep ``seconds`` then run normally (a straggler,
        not a failure).

    ``times`` bounds the injection per shard: the fault fires while the
    attempt number is below it, so ``times=1`` sabotages only the first
    attempt and the retry succeeds.
    """

    kind: str = "raise"
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")

    def fire(self, index: int, attempt: int) -> None:
        """Apply the fault inside the worker (no-op once spent)."""
        if attempt >= self.times:
            return
        if self.kind == "raise":
            raise InjectedFault(
                f"injected fault on shard {index} attempt {attempt}"
            )
        if self.kind == "exit":
            os._exit(3)
        if self.kind == "hang":
            time.sleep(self.seconds or _HANG_SECONDS)
            return
        time.sleep(self.seconds)  # slow


@dataclass(frozen=True)
class ShardFaultPlan:
    """Which shards fail, how, and how many times."""

    faults: Tuple[Tuple[int, ShardFault], ...] = ()

    @classmethod
    def crash_on(
        cls,
        indices: Iterable[int],
        kind: str = "raise",
        times: int = 1,
        seconds: float = 0.0,
    ) -> "ShardFaultPlan":
        """Fault the given shard indices (crash-on-nth-shard)."""
        fault = ShardFault(kind=kind, times=times, seconds=seconds)
        return cls(tuple((int(i), fault) for i in sorted(set(indices))))

    @classmethod
    def crash_every_shard(
        cls, shard_count: int, kind: str = "raise", times: int = 1
    ) -> "ShardFaultPlan":
        """Fault every one of ``shard_count`` shards once."""
        return cls.crash_on(range(shard_count), kind=kind, times=times)

    def fault_for(self, index: int) -> Optional[ShardFault]:
        for shard_index, fault in self.faults:
            if shard_index == index:
                return fault
        return None

    def apply(self, index: int, attempt: int) -> None:
        """Worker-side hook: fire this shard's fault if one is planned."""
        fault = self.fault_for(index)
        if fault is not None:
            fault.fire(index, attempt)


@dataclass(frozen=True)
class SignalPlan:
    """Deliver a real signal to this process at an exact record index.

    ``wrap`` passes an iterable through unchanged except that
    immediately *before* yielding item number ``at_index`` (0-based) it
    runs ``os.kill(os.getpid(), signum)``.  The kernel delivers the
    signal to whatever handler is installed — for the stream engine
    under a :class:`~repro.runtime.shutdown.ShutdownCoordinator` that
    flips the stop token, and the engine drains at its next guard
    boundary.  This is the deterministic stand-in for an operator's
    ``kill <pid>``: same delivery path, chosen record instead of chosen
    moment.
    """

    at_index: int
    signum: int = signal_module.SIGTERM

    def __post_init__(self) -> None:
        if self.at_index < 0:
            raise ValueError("at_index must be >= 0")

    def wrap(self, records: Iterable) -> Iterator:
        for index, item in enumerate(records):
            if index == self.at_index:
                os.kill(os.getpid(), self.signum)
            yield item


@dataclass
class MemoryPressurePlan:
    """Allocate real RSS ballast at an exact record index.

    ``wrap`` yields records unchanged until ``at_index``, then holds a
    ``ballast_bytes`` byte allocation (touched so the pages are
    actually resident) for the rest of the iteration — pushing the
    process over a configured ``--memory-budget`` so the governor's
    shed ladder fires at a reproducible point.  :meth:`release` frees
    the ballast (e.g. after asserting the shed happened).
    """

    at_index: int
    ballast_bytes: int
    _ballast: List[bytearray] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.at_index < 0:
            raise ValueError("at_index must be >= 0")
        if self.ballast_bytes <= 0:
            raise ValueError("ballast_bytes must be positive")

    def wrap(self, records: Iterable) -> Iterator:
        for index, item in enumerate(records):
            if index == self.at_index and not self._ballast:
                # bytearray zero-fills, which commits the pages to RSS.
                self._ballast.append(bytearray(self.ballast_bytes))
            yield item

    @property
    def held_bytes(self) -> int:
        return sum(len(chunk) for chunk in self._ballast)

    def release(self) -> None:
        self._ballast.clear()


class FlakyProxy:
    """A lookup backend that fails at a seeded, deterministic rate.

    Every call to a wrapped method draws from a stream keyed on
    ``(seed, method, call-number)`` and raises
    :class:`~repro.resilience.retry.TransientLookupError` with
    probability ``error_rate``.  ``outage_keys`` marks first arguments
    (e.g. domain names) whose lookups *always* fail — a targeted
    backend outage for the rule-degradation tests.

    Wrap the healthy backend, then hand the proxy to the production
    :class:`~repro.resilience.lookups.ResilientLookup` adapter.
    """

    def __init__(
        self,
        target,
        error_rate: float = 0.0,
        seed: int = 0,
        methods: Optional[Iterable[str]] = None,
        outage_keys: Iterable[object] = (),
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        self._target = target
        self._error_rate = error_rate
        self._seed = seed
        self._methods: Optional[FrozenSet[str]] = (
            frozenset(methods) if methods is not None else None
        )
        self._outage_keys = frozenset(outage_keys)
        self._calls: Dict[str, int] = {}
        self.injected_failures = 0

    def __getattr__(self, name: str):
        attr = getattr(self._target, name)
        if not callable(attr) or name.startswith("_"):
            return attr
        if self._methods is not None and name not in self._methods:
            return attr

        def flaky(*args, **kwargs):
            self._maybe_fail(name, args)
            return attr(*args, **kwargs)

        flaky.__name__ = name
        return flaky

    def _maybe_fail(self, name: str, args: tuple) -> None:
        if args and args[0] in self._outage_keys:
            self.injected_failures += 1
            raise TransientLookupError(
                f"injected outage: {name}({args[0]!r})"
            )
        if self._error_rate <= 0.0:
            return
        call = self._calls.get(name, 0)
        self._calls[name] = call + 1
        # Keyed draw: deterministic per (seed, method, call-number) and
        # independent of interleaving across methods.
        key = zlib.crc32(f"{self._seed}:{name}:{call}".encode())
        if key / 0xFFFFFFFF < self._error_rate:
            self.injected_failures += 1
            raise TransientLookupError(
                f"injected flake: {name} call {call}"
            )


def corrupt_flow_lines(
    path: Union[str, pathlib.Path],
    line_indices: Iterable[int],
    seed: int = 0,
) -> int:
    """Damage data lines of a haystack flow file in place.

    ``line_indices`` counts *data* lines (comments and blanks are
    skipped, matching the reader).  Each targeted line gets one of
    three deterministic corruptions: field truncation (malformed CSV),
    an impossible destination port, or a negative timestamp.  Returns
    how many lines were corrupted.
    """
    path = pathlib.Path(path)
    targets = set(int(i) for i in line_indices)
    rng = random.Random(seed)
    out = []
    data_index = 0
    corrupted = 0
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            if data_index in targets:
                parts = line.split(",")
                mode = rng.randrange(3)
                if mode == 0:
                    line = ",".join(parts[:4])  # truncated record
                elif mode == 1:
                    parts[6] = "99999"  # impossible dst port
                    line = ",".join(parts)
                else:
                    parts[0] = "-1"  # negative timestamp
                    line = ",".join(parts)
                corrupted += 1
            data_index += 1
        out.append(line)
    path.write_text("\n".join(out) + "\n")
    return corrupted
