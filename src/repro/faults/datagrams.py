"""Datagram-level fault plans for the live-collector matrix.

UDP export feeds fail in a small number of well-understood ways; a
:class:`DatagramPlan` names each one and applies it *deterministically
per seed* to a concrete list of encoded export datagrams, so the fault
matrix in ``tests/test_collector_faults.py`` can assert the exact
robustness contract: **the collector's detections are byte-identical
to a file replay of exactly the datagrams that were delivered and
decodable**.

Byte-level kinds (pure functions of the datagram list):

* ``drop`` — lose a fraction of datagrams outright;
* ``duplicate`` — deliver some datagrams twice;
* ``reorder`` — bounded displacement shuffle (late arrivals);
* ``truncate`` — cut datagrams short mid-payload;
* ``corrupt`` — flip a byte somewhere in the payload;
* ``buffer_overflow`` — a contiguous burst loss, the collapse mode of
  an overrun ``SO_RCVBUF`` (the kernel drops arrivals wholesale while
  the buffer is full, not at random).

Structural kinds need control over *how the stream is encoded* rather
than how it is delivered, so they live in
:func:`encode_export_stream`: ``data_before_template`` (withhold the
template until later datagrams) and ``exporter_restart`` (swap in a
fresh codec mid-stream: sequence counter resets to zero and templates
are re-sent, exactly what a rebooting router does).

:class:`UdpReplayShim` is the live half: it pushes a delivered plan
through a real socket to a bound collector — the ``FlakyProxy``
analogue for datagrams — with an optional inter-datagram pause so slow
CI machines cannot outrun the receiver.
"""

from __future__ import annotations

import random
import socket
import time
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "DATAGRAM_FAULT_KINDS",
    "DatagramPlan",
    "UdpReplayShim",
    "encode_export_stream",
]

#: Every fault the collector matrix must survive.
DATAGRAM_FAULT_KINDS: Tuple[str, ...] = (
    "drop",
    "duplicate",
    "reorder",
    "truncate",
    "corrupt",
    "data_before_template",
    "exporter_restart",
    "buffer_overflow",
)

#: Kinds applied at delivery time by :meth:`DatagramPlan.apply`.
_BYTE_KINDS = (
    "drop",
    "duplicate",
    "reorder",
    "truncate",
    "corrupt",
    "buffer_overflow",
)


@dataclass(frozen=True)
class DatagramPlan:
    """One seeded, named datagram fault.

    ``rate`` is the per-datagram probability for ``drop`` /
    ``duplicate`` / ``truncate`` / ``corrupt``, the displacement bound
    (as a fraction of the stream) for ``reorder``, and the burst
    length fraction for ``buffer_overflow``.  Structural kinds
    (``data_before_template``, ``exporter_restart``) are no-ops at
    delivery time — they shape the encode via
    :func:`encode_export_stream` — so the matrix driver can iterate
    one plan type over all eight kinds.
    """

    kind: str
    seed: int = 0
    rate: float = 0.2

    def __post_init__(self) -> None:
        if self.kind not in DATAGRAM_FAULT_KINDS:
            raise ValueError(
                f"unknown datagram fault kind {self.kind!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def apply(self, datagrams: Sequence[bytes]) -> List[bytes]:
        """The delivered stream: what actually reaches the socket.

        Deterministic per (kind, seed, rate).  Corrupted/truncated
        datagrams are still *delivered* — deciding whether they decode
        is the collector's job (typed quarantine), not the network's.
        """
        # crc32, not hash(): str hashing is salted per process, which
        # would break replay-exactness across runs
        rng = random.Random(
            (zlib.crc32(self.kind.encode("ascii")) & 0xFFFF) ^ self.seed
        )
        datagrams = list(datagrams)
        if self.kind == "drop":
            return [d for d in datagrams if rng.random() >= self.rate]
        if self.kind == "duplicate":
            out: List[bytes] = []
            for d in datagrams:
                out.append(d)
                if rng.random() < self.rate:
                    out.append(d)
            return out
        if self.kind == "reorder":
            # bounded-displacement shuffle: each datagram may slip up
            # to ``window`` slots later, never indefinitely
            window = max(1, int(len(datagrams) * self.rate))
            keyed = [
                (index + rng.randint(0, window), index, d)
                for index, d in enumerate(datagrams)
            ]
            keyed.sort(key=lambda item: (item[0], item[1]))
            return [d for _slot, _index, d in keyed]
        if self.kind == "truncate":
            out = []
            for d in datagrams:
                if rng.random() < self.rate and len(d) > 4:
                    out.append(d[: rng.randint(2, len(d) - 1)])
                else:
                    out.append(d)
            return out
        if self.kind == "corrupt":
            out = []
            for d in datagrams:
                if rng.random() < self.rate and d:
                    position = rng.randrange(len(d))
                    mutated = bytearray(d)
                    mutated[position] ^= 1 << rng.randrange(8)
                    out.append(bytes(mutated))
                else:
                    out.append(d)
            return out
        if self.kind == "buffer_overflow":
            if len(datagrams) < 2:
                return datagrams
            burst = max(1, int(len(datagrams) * self.rate))
            start = rng.randrange(max(1, len(datagrams) - burst))
            return datagrams[:start] + datagrams[start + burst :]
        # structural kinds: delivery is faithful
        return datagrams


def encode_export_stream(
    batches: Sequence[Sequence],
    codec_factory,
    start_time: int = 0,
    defer_template: int = 0,
    restart_at: Optional[int] = None,
) -> List[bytes]:
    """Encode flow batches into one export-datagram stream.

    One datagram per batch, export times counting up from
    ``start_time``.  ``defer_template`` withholds the template from
    the first N datagrams (data-before-template: the template first
    appears on datagram N) and ``restart_at`` swaps in a fresh codec
    before batch N — sequence counter back to zero, template re-sent —
    modelling an exporter reboot.  ``codec_factory`` builds the
    exporter codec (e.g. ``lambda: NetflowV9Codec(source_id=7)``).
    """
    codec = codec_factory()
    datagrams: List[bytes] = []
    for index, batch in enumerate(batches):
        restarted = restart_at is not None and index == restart_at
        if restarted:
            codec = codec_factory()
        # the template rides on datagram ``defer_template`` (0 = the
        # usual announce-first behaviour) and is re-announced on the
        # first datagram after a restart
        include_template = index == defer_template or restarted
        datagrams.append(
            codec.encode(
                list(batch),
                start_time + index,
                include_template=include_template,
                include_options=include_template,
            )
        )
    return datagrams


class UdpReplayShim:
    """Replay a delivered datagram stream into a live collector.

    The socket twin of :meth:`DatagramPlan.apply`: delivery faults are
    applied *before* the send loop, so what goes on the wire is
    exactly the delivered set the oracle replays.  ``pause`` throttles
    the sender (loopback reordering/drops are not modelled here — the
    plan already decided delivery).
    """

    def __init__(
        self, host: str, port: int, pause: float = 0.0
    ) -> None:
        self.host = host
        self.port = port
        self.pause = pause
        self.sent = 0

    def send(
        self,
        datagrams: Sequence[bytes],
        plan: Optional[DatagramPlan] = None,
    ) -> List[bytes]:
        """Send (optionally faulted) datagrams; returns the delivered
        list actually written to the socket."""
        delivered = (
            plan.apply(datagrams) if plan is not None else list(datagrams)
        )
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            for payload in delivered:
                sock.sendto(payload, (self.host, self.port))
                self.sent += 1
                if self.pause:
                    time.sleep(self.pause)
        finally:
            sock.close()
        return delivered
