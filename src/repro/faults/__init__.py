"""Unified fault-injection harness (:mod:`repro.faults`).

One place for every way the test suite breaks the pipeline on purpose,
so the fault-matrix tests (``pytest -m faults``) exercise the same
seams in the same vocabulary:

* :mod:`repro.faults.files` — on-disk damage: truncation, header and
  payload corruption, half-written temp files, bounded out-of-order
  delivery (grown out of the former ``repro.stream.faults``, since
  removed — this package is the only import path);
* :mod:`repro.faults.injection` — runtime damage: crash-on-nth-shard /
  slow-worker / hung-worker plans for the supervised shard pool
  (:class:`ShardFaultPlan`), seeded lookup-error-rate wrappers for the
  resilient backends (:class:`FlakyProxy`), record-corruption helpers
  for flow files, and runtime-guard probes: :class:`SignalPlan`
  delivers a real kernel signal at an exact record index and
  :class:`MemoryPressurePlan` allocates RSS ballast there, so the
  drain/shed soak tests are deterministic;
* :mod:`repro.faults.datagrams` — wire damage for the live collector:
  :class:`DatagramPlan` applies the eight delivery faults of the
  collector matrix (drop, duplicate, reorder, truncate, bit-corrupt,
  data-before-template, exporter restart, socket buffer overflow) to
  encoded export datagrams, :func:`encode_export_stream` shapes the
  structural ones at encode time, and :class:`UdpReplayShim` pushes a
  delivered stream through a real socket;
* :mod:`repro.faults.fleet` — sharded-stream damage: :class:`FleetPlan`
  names the injection points of the fleet matrix (worker crash or hang
  mid-stream, router crash, rebalance during a staged rule swap),
  scoped by worker/batch/incarnation so restarts never re-fire a
  fault;
* :mod:`repro.faults.swap` — rule-lifecycle damage: :class:`SwapPlan`
  names the four injection points of the live rule-swap fault matrix
  (corrupt published artifact, crash mid-publish, backend outage
  mid-refresh, SIGTERM during swap) and applies each one.

Everything here is deterministic per seed — a fault matrix that cannot
be replayed exactly cannot assert bit-identical recovery.
"""

from repro.faults.datagrams import (
    DATAGRAM_FAULT_KINDS,
    DatagramPlan,
    UdpReplayShim,
    encode_export_stream,
)
from repro.faults.fleet import FLEET_FAULT_KINDS, FleetPlan
from repro.faults.files import (
    corrupt_payload_byte,
    corrupt_version_header,
    jitter_order,
    truncate_file,
    write_partial_temp,
)
from repro.faults.injection import (
    FlakyProxy,
    InjectedFault,
    MemoryPressurePlan,
    ShardFault,
    ShardFaultPlan,
    SignalPlan,
    corrupt_flow_lines,
)
from repro.faults.swap import SWAP_FAULT_KINDS, SwapPlan

__all__ = [
    "DATAGRAM_FAULT_KINDS",
    "DatagramPlan",
    "UdpReplayShim",
    "encode_export_stream",
    "FLEET_FAULT_KINDS",
    "FleetPlan",
    "SWAP_FAULT_KINDS",
    "SwapPlan",
    "FlakyProxy",
    "InjectedFault",
    "MemoryPressurePlan",
    "ShardFault",
    "ShardFaultPlan",
    "SignalPlan",
    "corrupt_flow_lines",
    "corrupt_payload_byte",
    "corrupt_version_header",
    "jitter_order",
    "truncate_file",
    "write_partial_temp",
]
