"""Load-shed accounting: the ``"overload"`` metrics section.

Degradation must be measurable, never silent.  Every guard in
:mod:`repro.runtime` — the memory governor's shed ladder, the deadline
budget, the ingest shed policy, the shutdown drain — records what it
did into one :class:`OverloadMetrics` instance, which both the stream
and batch metrics documents embed as their ``"overload"`` section
(next to ``"faults"`` and ``"quarantine"``).

Schema::

    "overload": {
      "memory_budget_bytes": <int|null>,
      "deadline_seconds": <float|null>,
      "rss_peak_bytes": <int>,
      "rss_samples": <int>,
      "pressure_events": <int>,
      "shed_actions": {"<action>": <count>, ...},
      "shed_units": {"<action>": <units>, ...},
      "ingest_dropped": {"<reason>": <count>, ...},
      "stop_reason": <"signal:SIGTERM"|"deadline"|...|null>,
      "degraded": <bool>
    }

``shed_actions`` counts how often each action fired;
``shed_units`` counts what it shed (table entries evicted, concurrent
shards surrendered).  ``degraded`` is true exactly when output may
differ from an unconstrained run: evidence was shed, ingest records
were dropped, or a deadline ended the run early.  A pure signal drain
(stop, checkpoint, exit) is *not* degraded — the resumed run continues
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["OverloadMetrics", "SHED_ACTIONS"]

#: The shed ladder's action vocabulary (stable, machine-matchable).
SHED_ACTIONS = (
    "identity_cache_clear",
    "early_checkpoint",
    "gc_collect",
    "table_shrink",
    "shard_admission_reduced",
)


@dataclass
class OverloadMetrics:
    """What the runtime guards measured and shed during one run."""

    memory_budget_bytes: Optional[int] = None
    deadline_seconds: Optional[float] = None
    rss_peak_bytes: int = 0
    rss_samples: int = 0
    pressure_events: int = 0
    shed_actions: Dict[str, int] = field(default_factory=dict)
    shed_units: Dict[str, int] = field(default_factory=dict)
    ingest_dropped: Dict[str, int] = field(default_factory=dict)
    stop_reason: Optional[str] = None
    #: set when an early stop left non-resumable work undone (batch
    #: runs have no checkpoint to continue from, so a drain there is
    #: partial output, not a pause)
    partial: bool = False

    def record_sample(self, rss_bytes: int) -> None:
        self.rss_samples += 1
        if rss_bytes > self.rss_peak_bytes:
            self.rss_peak_bytes = rss_bytes

    def record_action(self, name: str, units: int = 0) -> None:
        """Count one shed action and how much it shed."""
        self.shed_actions[name] = self.shed_actions.get(name, 0) + 1
        if units:
            self.shed_units[name] = (
                self.shed_units.get(name, 0) + units
            )

    def record_drops(self, drops: Dict[str, int]) -> None:
        """Fold per-reason ingest drop increments in."""
        for reason, count in drops.items():
            if count:
                self.ingest_dropped[reason] = (
                    self.ingest_dropped.get(reason, 0) + count
                )

    @property
    def entries_shed(self) -> int:
        """State-table entries evicted under memory pressure."""
        return self.shed_units.get("table_shrink", 0)

    @property
    def records_dropped(self) -> int:
        return sum(self.ingest_dropped.values())

    @property
    def degraded(self) -> bool:
        """Output may differ from an unconstrained run."""
        return (
            self.partial
            or self.stop_reason == "deadline"
            or self.entries_shed > 0
            or self.records_dropped > 0
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "memory_budget_bytes": self.memory_budget_bytes,
            "deadline_seconds": self.deadline_seconds,
            "rss_peak_bytes": self.rss_peak_bytes,
            "rss_samples": self.rss_samples,
            "pressure_events": self.pressure_events,
            "shed_actions": dict(sorted(self.shed_actions.items())),
            "shed_units": dict(sorted(self.shed_units.items())),
            "ingest_dropped": dict(
                sorted(self.ingest_dropped.items())
            ),
            "stop_reason": self.stop_reason,
            "degraded": self.degraded,
        }
