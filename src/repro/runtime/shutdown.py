"""Signal-driven graceful shutdown: drain to checkpoint, then exit.

A production detector is killed as a matter of routine — redeploys,
autoscaler downscale, operator Ctrl+C.  The contract this module
provides: the *first* SIGTERM/SIGINT flips a cooperative
:class:`StopToken`; every long-running loop (the stream engine's
record loop, the shard supervisor's admission loop) polls the token at
its next safe boundary, stops starting new work, persists a final
checkpoint, flushes its sinks, and returns.  A drained run resumes
from that checkpoint with an event log byte-identical to an
uninterrupted run — nothing is lost but wall time.

Escalation: a *second* delivery of the same signal restores the
original disposition and re-raises it (an operator hammering Ctrl+C
gets the immediate kill they are asking for), and an optional
``grace`` budget hard-exits the process with
:data:`EXIT_DRAIN_TIMEOUT` if the drain itself wedges — a stuck drain
must not turn a graceful shutdown into an unkillable process.

Exit codes (see README "Graceful shutdown & overload"):

* :data:`EXIT_COMPLETED` (0) — the run consumed its whole input;
* :data:`EXIT_DRAINED` (3) — a signal or deadline ended the run early
  but cleanly: state is checkpointed and ``--resume`` continues it;
* :data:`EXIT_DRAIN_TIMEOUT` (70) — the drain exceeded the
  ``--drain-grace`` budget and the process force-exited.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from typing import Dict, Iterable, Optional

__all__ = [
    "EXIT_COMPLETED",
    "EXIT_DRAINED",
    "EXIT_DRAIN_TIMEOUT",
    "ShutdownCoordinator",
    "StopToken",
    "current_token",
]

EXIT_COMPLETED = 0
EXIT_DRAINED = 3
EXIT_DRAIN_TIMEOUT = 70

#: The process-wide token the active coordinator exposes (see
#: :func:`current_token`).
_CURRENT: Optional["StopToken"] = None


class StopToken:
    """A cooperative, one-way stop request.

    Safe to set from a signal handler or another thread; cheap to poll
    from a hot loop (:meth:`stop_requested` is one ``Event.is_set``).
    The first :meth:`stop` wins — the recorded ``reason`` never
    changes afterwards, so metrics report why the run *started*
    stopping, not the last straw.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def stop(self, reason: str) -> None:
        if self.reason is None:
            self.reason = reason
        self._event.set()

    def stop_requested(self) -> bool:
        return self._event.is_set()

    def __bool__(self) -> bool:
        return self._event.is_set()


def current_token() -> Optional[StopToken]:
    """The active coordinator's token, or ``None``.

    Long-running entry points use this as their default stop token, so
    installing one :class:`ShutdownCoordinator` at the CLI's top level
    makes every loop underneath it drain-aware without threading the
    token through each call signature.
    """
    return _CURRENT


class ShutdownCoordinator:
    """Installs signal handlers that drive a :class:`StopToken`.

    Use as a context manager around the run::

        token = StopToken()
        with ShutdownCoordinator(token, grace=30.0):
            engine.process_flowfile(path)   # polls the token
            engine.drain()                  # final checkpoint + flush

    Handlers are installed on ``__enter__`` and the originals restored
    on ``__exit__``; nesting is a programming error only in that the
    innermost coordinator wins :func:`current_token` until it exits.
    Signal handlers can only be installed from the main thread; off
    the main thread the coordinator degrades to a plain token holder
    (``installed`` stays false) so library use inside worker threads
    keeps working.
    """

    def __init__(
        self,
        token: Optional[StopToken] = None,
        signals: Iterable[int] = (signal.SIGTERM, signal.SIGINT),
        grace: Optional[float] = None,
    ) -> None:
        if grace is not None and grace <= 0:
            raise ValueError("grace must be positive when set")
        self.token = token if token is not None else StopToken()
        self.signals = tuple(signals)
        self.grace = grace
        self.signals_received = 0
        self.installed = False
        self._previous: Dict[int, object] = {}
        self._outer_token: Optional[StopToken] = None
        self._grace_timer: Optional[threading.Timer] = None

    # -- context manager ----------------------------------------------

    def __enter__(self) -> "ShutdownCoordinator":
        global _CURRENT
        self._outer_token = _CURRENT
        _CURRENT = self.token
        if threading.current_thread() is threading.main_thread():
            for signum in self.signals:
                self._previous[signum] = signal.signal(
                    signum, self._handle
                )
            self.installed = True
        return self

    def __exit__(self, *exc_info) -> None:
        global _CURRENT
        _CURRENT = self._outer_token
        if self._grace_timer is not None:
            self._grace_timer.cancel()
            self._grace_timer = None
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
        self.installed = False

    # -- signal path --------------------------------------------------

    def _handle(self, signum: int, frame) -> None:
        self.signals_received += 1
        name = signal.Signals(signum).name
        if self.token.stop_requested():
            # Second delivery: the operator wants out *now*.  Restore
            # the original disposition and re-raise the signal.
            previous = self._previous.pop(signum, signal.SIG_DFL)
            signal.signal(signum, previous)  # type: ignore[arg-type]
            os.kill(os.getpid(), signum)
            return
        self.token.stop(f"signal:{name}")
        sys.stderr.write(
            f"repro: received {name}; draining to checkpoint "
            "(send again to exit immediately)\n"
        )
        if self.grace is not None:
            self._grace_timer = threading.Timer(
                self.grace, self._force_exit
            )
            self._grace_timer.daemon = True
            self._grace_timer.start()

    def _force_exit(self) -> None:  # pragma: no cover - exits process
        os.write(
            2,
            b"repro: drain exceeded the grace budget; force-exiting\n",
        )
        os._exit(EXIT_DRAIN_TIMEOUT)
