"""Shared worker-count resolution.

Three fan-outs size process pools from a user-facing ``--workers``
knob: the sharded batch engine (:mod:`repro.engine.runner`), the
scenario-matrix sweep (:mod:`repro.sweep.runner`), and the stream
fleet (:mod:`repro.fleet`).  They all want the same mapping — default
to the machine, clamp nonsense, never spawn more processes than there
is work — so the mapping lives here, once, in the runtime layer that
all three may import.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["resolve_workers"]


def resolve_workers(
    workers: Optional[int], task_count: Optional[int] = None
) -> int:
    """Map a configured worker count to an effective one.

    ``None`` or ``0`` selects ``os.cpu_count()`` (the engine default);
    explicit negative values clamp to ``1`` rather than silently
    re-selecting the default.  When ``task_count`` is given the result
    is additionally capped at it — ``workers=64`` on a 4-shard plan
    yields 4 processes, not 60 idle ones.
    """
    if workers is None or workers == 0:
        resolved = os.cpu_count() or 1
    else:
        resolved = max(1, workers)
    if task_count is not None:
        resolved = min(resolved, max(1, task_count))
    return resolved
