"""Runtime guards (:mod:`repro.runtime`): drain cleanly, degrade measurably.

PR 3's resilience layer recovers from *faults* — crashed workers,
corrupt checkpoints, flaky backends.  This package handles the
operational pressures that are not faults at all: being told to stop
(SIGTERM on redeploy), running out of memory budget, and running out
of wall clock.  Four modules, one contract each:

* :mod:`~repro.runtime.shutdown` — :class:`StopToken` +
  :class:`ShutdownCoordinator`: the first SIGTERM/SIGINT flips a
  cooperative stop token that every long loop polls at record /
  hour-block boundaries; the run drains to a final checkpoint and a
  flushed event sink, so a killed run resumes bit-identically.
* :mod:`~repro.runtime.memory` — :class:`MemoryGovernor`: samples RSS
  against ``--memory-budget`` and paces a shed ladder (early
  checkpoint, state-table shrink, shard-admission reduction) so the
  process degrades before the kernel OOM-kills it.
* :mod:`~repro.runtime.deadline` — :class:`DeadlineBudget`: a
  wall-clock countdown that ends the run with partial results marked
  ``degraded``.
* :mod:`~repro.runtime.overload` — :class:`OverloadMetrics`: the
  ``"overload"`` section of the metrics document, where every shed
  action, drop, and stop reason is counted.  Degradation is visible,
  never silent.
"""

from repro.runtime.deadline import DeadlineBudget
from repro.runtime.memory import (
    MemoryGovernor,
    parse_memory_size,
    read_rss_bytes,
)
from repro.runtime.overload import OverloadMetrics, SHED_ACTIONS
from repro.runtime.shutdown import (
    EXIT_COMPLETED,
    EXIT_DRAINED,
    EXIT_DRAIN_TIMEOUT,
    ShutdownCoordinator,
    StopToken,
    current_token,
)
from repro.runtime.workers import resolve_workers

__all__ = [
    "DeadlineBudget",
    "MemoryGovernor",
    "OverloadMetrics",
    "SHED_ACTIONS",
    "EXIT_COMPLETED",
    "EXIT_DRAINED",
    "EXIT_DRAIN_TIMEOUT",
    "ShutdownCoordinator",
    "StopToken",
    "current_token",
    "parse_memory_size",
    "read_rss_bytes",
    "resolve_workers",
]
