"""Wall-clock run budgets.

A run given ``--deadline N`` must end within roughly N seconds with
whatever it has — partial results explicitly marked ``degraded`` in
the metrics document — rather than overstay a maintenance window or a
batch-scheduler slot.  :class:`DeadlineBudget` is a monotonic-clock
countdown the long-running loops poll at the same boundaries they poll
the stop token; expiry is sticky and carries the stable stop reason
``"deadline"``.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["DeadlineBudget"]

#: The stop reason a deadline expiry reports everywhere.
REASON = "deadline"


class DeadlineBudget:
    """Sticky wall-clock countdown started at construction."""

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds <= 0:
            raise ValueError("deadline must be positive")
        self.seconds = float(seconds)
        self._clock = clock
        self.started = clock()
        self._expired = False

    @property
    def elapsed(self) -> float:
        return self._clock() - self.started

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.seconds - self.elapsed)

    def expired(self) -> bool:
        """True once the budget is spent (sticky thereafter)."""
        if not self._expired and self.elapsed >= self.seconds:
            self._expired = True
        return self._expired

    reason = REASON
