"""RSS budget enforcement: sample, detect pressure, pace the shedding.

An ISP-scale run pushed past its memory budget must degrade measurably
instead of being OOM-killed.  :class:`MemoryGovernor` is the *when* of
that trade: it samples the process RSS on a record-count stride,
compares it against a configured budget, and tells its caller when to
shed — the *what* (early checkpoint, state-table shrink, shard
admission reduction) stays with the component that owns the memory,
and every action is counted in the shared
:class:`~repro.runtime.overload.OverloadMetrics`.

Pressure is entered above ``headroom × budget`` (default 90%) — the
point of a budget is acting *before* the kernel does.  After each shed
the governor holds a cooldown of further samples so the ladder doesn't
strip all state in one burst while the allocator is still returning
memory.

RSS is read from ``/proc/self/statm`` (current resident pages); where
that is unavailable the fallback is ``resource.getrusage``'s
``ru_maxrss`` — a peak, not a current, value, which makes the governor
strictly more conservative there.
"""

from __future__ import annotations

import gc
import os
import re
import resource
from typing import Callable, Optional

from repro.runtime.overload import OverloadMetrics

__all__ = [
    "MemoryGovernor",
    "parse_memory_size",
    "read_rss_bytes",
]

_PAGE_SIZE = resource.getpagesize()
_STATM = "/proc/self/statm"

_SIZE_RE = re.compile(
    r"^\s*(?P<number>\d+(?:\.\d+)?)\s*(?P<unit>[kmgt]?i?b?)\s*$",
    re.IGNORECASE,
)
_SIZE_UNITS = {
    "": 1,
    "b": 1,
    "k": 1 << 10,
    "m": 1 << 20,
    "g": 1 << 30,
    "t": 1 << 40,
}

#: ``ru_maxrss`` is kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_UNIT = 1 if os.uname().sysname == "Darwin" else 1024


def parse_memory_size(text: str) -> int:
    """``"512M"`` / ``"1.5GiB"`` / ``"1073741824"`` → bytes."""
    match = _SIZE_RE.match(str(text))
    if not match:
        raise ValueError(f"unparseable memory size {text!r}")
    number = float(match.group("number"))
    unit = match.group("unit").lower().rstrip("b").rstrip("i")
    factor = _SIZE_UNITS.get(unit)
    if factor is None:
        raise ValueError(f"unknown memory unit in {text!r}")
    size = int(number * factor)
    if size <= 0:
        raise ValueError("memory size must be positive")
    return size


def read_rss_bytes() -> int:
    """Current resident set size of this process, in bytes."""
    try:
        with open(_STATM, "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            * _RU_MAXRSS_UNIT
        )


class MemoryGovernor:
    """Budget-driven pacing of memory shedding.

    ``tick(records)`` is the hot-path entry: it only samples once per
    ``sample_every`` accumulated records, and returns ``True`` exactly
    when the caller should run its shed ladder (pressure detected and
    the cooldown from the previous shed has elapsed).
    """

    def __init__(
        self,
        budget_bytes: int,
        headroom: float = 0.9,
        sample_every: int = 4096,
        cooldown: int = 4,
        sampler: Optional[Callable[[], int]] = None,
        metrics: Optional[OverloadMetrics] = None,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.budget_bytes = budget_bytes
        self.pressure_bytes = int(budget_bytes * headroom)
        self.sample_every = sample_every
        self.cooldown = cooldown
        self._sampler = sampler if sampler is not None else read_rss_bytes
        self.metrics = metrics if metrics is not None else OverloadMetrics()
        self.metrics.memory_budget_bytes = budget_bytes
        self.last_rss = 0
        self._until_sample = sample_every
        self._cooldown_left = 0

    # -- sampling -----------------------------------------------------

    def sample(self) -> int:
        """Read RSS now, update the peak, and classify pressure."""
        rss = self._sampler()
        self.last_rss = rss
        self.metrics.record_sample(rss)
        if rss > self.pressure_bytes:
            self.metrics.pressure_events += 1
        return rss

    @property
    def under_pressure(self) -> bool:
        """The most recent sample exceeded the pressure threshold."""
        return self.last_rss > self.pressure_bytes

    def tick(self, records: int = 1) -> bool:
        """Account ``records`` of work; true when a shed is due.

        Cheap between samples (one subtraction); at most one RSS read
        per ``sample_every`` records.
        """
        self._until_sample -= records
        if self._until_sample > 0:
            return False
        self._until_sample = self.sample_every
        self.sample()
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return False
        if not self.under_pressure:
            return False
        self._cooldown_left = self.cooldown
        return True

    # -- shared shed actions ------------------------------------------

    def record_action(self, name: str, units: int = 0) -> None:
        self.metrics.record_action(name, units)

    def collect_garbage(self) -> None:
        """The ladder's last unconditional rung: a full GC pass."""
        gc.collect()
        self.metrics.record_action("gc_collect")
