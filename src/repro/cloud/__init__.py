"""Backend infrastructure substrate: IPv4 addressing, autonomous systems,
dedicated clusters, cloud virtual machines, and shared CDNs."""

from repro.cloud.addressing import (
    AddressAllocator,
    AutonomousSystem,
    ASRegistry,
    Prefix,
    ip_to_str,
    str_to_ip,
)
from repro.cloud.infrastructure import (
    BackendHost,
    CdnFleet,
    CloudVmPool,
    DedicatedCluster,
    InfrastructureKind,
)

__all__ = [
    "AddressAllocator",
    "AutonomousSystem",
    "ASRegistry",
    "Prefix",
    "ip_to_str",
    "str_to_ip",
    "BackendHost",
    "CdnFleet",
    "CloudVmPool",
    "DedicatedCluster",
    "InfrastructureKind",
]
