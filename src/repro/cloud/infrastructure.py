"""Simulated backend infrastructures for IoT services.

The paper distinguishes three hosting styles that determine whether a
device is detectable from flow headers (Section 4.2):

* **Dedicated clusters** — address space operated by the IoT vendor
  itself; every service IP serves only domains below the vendor's
  second-level domain.  Fully detectable.
* **Cloud virtual machines** — public IPs rented from a cloud provider.
  The IP reverse-maps to the provider's generic name
  (``<tenant>-vm.compute.cloudsim.example``) but is *exclusively* assigned
  to one tenant while rented, so it still identifies the IoT service.
* **Shared CDNs** — each CDN node serves hundreds of unrelated domains, so
  a flow towards a CDN IP cannot be attributed to an IoT service.  Devices
  relying exclusively on CDNs are undetectable by the methodology.

Each infrastructure answers ``a_records(fqdn, when)`` (the authoritative
answer a resolver would receive at epoch second ``when``, including DNS
churn) and ``cname_chain(fqdn)`` (the CNAME indirection, if any).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cloud.addressing import AutonomousSystem, Prefix
from repro.dns.names import second_level_domain

__all__ = [
    "InfrastructureKind",
    "BackendHost",
    "DedicatedCluster",
    "CloudVmPool",
    "CdnFleet",
]


class InfrastructureKind:
    """String constants naming the hosting styles."""

    DEDICATED = "dedicated"
    CLOUD_VM = "cloud_vm"
    CDN = "cdn"


@dataclass(frozen=True)
class BackendHost:
    """A single server endpoint in some backend infrastructure."""

    address: int
    kind: str
    operator: str


def _stable_hash(*parts: object) -> int:
    """Deterministic cross-run hash used for churn/rotation decisions."""
    digest = hashlib.blake2b(
        "|".join(str(part) for part in parts).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass
class DedicatedCluster:
    """A vendor-operated cluster of service IPs.

    Every hosted FQDN must share the cluster's "second-level" domain with
    the operator; this is the ownership invariant the dedicated/shared
    classifier relies on.  Each hosted domain receives its own disjoint
    *slice* of ``ips_per_domain`` addresses (separate load balancers per
    service), and DNS answers rotate inside the slice every
    ``rotation_seconds`` to model A-record churn.  Because slices are
    disjoint, any single cluster address reverse-maps to exactly one
    domain — which is what lets a flow-header observer attribute traffic
    towards it.
    """

    operator: str
    prefix: Prefix
    autonomous_system: AutonomousSystem
    ips_per_domain: int = 3
    rotation_seconds: int = 6 * 3600
    answers_per_query: int = 3
    domains: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ips_per_domain < 1:
            raise ValueError("need at least one address per domain")
        self._slices: Dict[str, List[int]] = {}
        self._next = self.prefix.first

    @property
    def kind(self) -> str:
        return InfrastructureKind.DEDICATED

    def host_domain(self, fqdn: str, ports: Sequence[int]) -> None:
        """Serve ``fqdn`` from this cluster on the given ports."""
        if second_level_domain(fqdn) != self.operator:
            raise ValueError(
                f"dedicated cluster for {self.operator!r} cannot host "
                f"{fqdn!r}"
            )
        if fqdn in self.domains:
            return
        if self._next + self.ips_per_domain - 1 > self.prefix.last:
            raise RuntimeError(
                f"cluster prefix {self.prefix} of {self.operator!r} "
                "exhausted"
            )
        self._slices[fqdn] = list(
            range(self._next, self._next + self.ips_per_domain)
        )
        self._next += self.ips_per_domain
        self.domains[fqdn] = tuple(ports)

    def cname_chain(self, fqdn: str) -> List[str]:
        """Dedicated domains answer directly with A records."""
        return []

    def a_records(self, fqdn: str, when: int) -> List[int]:
        """Return the rotating authoritative answer for ``fqdn``."""
        if fqdn not in self.domains:
            raise KeyError(f"{fqdn!r} not hosted by {self.operator!r}")
        slice_ = self._slices[fqdn]
        epoch = when // self.rotation_seconds
        count = min(self.answers_per_query, len(slice_))
        start = _stable_hash(self.operator, fqdn, epoch) % len(slice_)
        return [
            slice_[(start + step) % len(slice_)] for step in range(count)
        ]

    def slice_for(self, fqdn: str) -> List[int]:
        """All addresses dedicated to one hosted domain."""
        return list(self._slices[fqdn])

    def all_addresses(self) -> List[int]:
        return [
            address
            for slice_ in self._slices.values()
            for address in slice_
        ]

    def ports_for(self, fqdn: str) -> Tuple[int, ...]:
        return self.domains[fqdn]


@dataclass
class CloudVmPool:
    """A public cloud renting exclusive VM addresses to tenants.

    A tenant domain is CNAMEd to a provider name which resolves to the
    tenant's own VM address(es).  While rented, the address serves only
    that tenant (the property the paper leans on to treat EC2-style VMs as
    dedicated infrastructure).
    """

    provider: str
    prefix: Prefix
    autonomous_system: AutonomousSystem
    compute_suffix: str = "compute"

    def __post_init__(self) -> None:
        self._next = self.prefix.first
        self._tenancies: Dict[str, List[int]] = {}
        self._tenant_ports: Dict[str, Tuple[int, ...]] = {}

    @property
    def kind(self) -> str:
        return InfrastructureKind.CLOUD_VM

    def rent(self, fqdn: str, ports: Sequence[int], count: int = 1) -> List[int]:
        """Assign ``count`` fresh exclusive VM addresses to ``fqdn``."""
        if fqdn in self._tenancies:
            raise ValueError(f"{fqdn!r} already has a tenancy")
        if self._next + count - 1 > self.prefix.last:
            raise RuntimeError(f"cloud {self.provider!r} out of addresses")
        addresses = list(range(self._next, self._next + count))
        self._next += count
        self._tenancies[fqdn] = addresses
        self._tenant_ports[fqdn] = tuple(ports)
        return addresses

    def provider_name(self, fqdn: str) -> str:
        """The provider-side CNAME target for a tenant domain."""
        label = fqdn.replace(".", "-")
        return f"{label}.{self.compute_suffix}.{self.provider}"

    def cname_chain(self, fqdn: str) -> List[str]:
        if fqdn not in self._tenancies:
            raise KeyError(f"{fqdn!r} is not a tenant of {self.provider!r}")
        return [self.provider_name(fqdn)]

    def a_records(self, fqdn: str, when: int) -> List[int]:
        if fqdn not in self._tenancies:
            raise KeyError(f"{fqdn!r} is not a tenant of {self.provider!r}")
        return list(self._tenancies[fqdn])

    @property
    def domains(self) -> Dict[str, Tuple[int, ...]]:
        return dict(self._tenant_ports)

    def all_addresses(self) -> List[int]:
        return [
            address
            for addresses in self._tenancies.values()
            for address in addresses
        ]

    def ports_for(self, fqdn: str) -> Tuple[int, ...]:
        return self._tenant_ports[fqdn]


@dataclass
class CdnFleet:
    """A shared content-delivery network.

    Every node serves *all* onboarded domains; answers map a domain to a
    handful of nodes that rotate with time, so over any observation window
    a CDN address reverse-maps to many unrelated second-level domains.
    """

    provider: str
    prefix: Prefix
    autonomous_system: AutonomousSystem
    node_count: int
    edge_suffix: str = "edge"
    rotation_seconds: int = 1800
    answers_per_query: int = 4

    def __post_init__(self) -> None:
        if self.node_count > self.prefix.size:
            raise ValueError("CDN node count exceeds prefix size")
        self.nodes: List[int] = [
            self.prefix.first + offset for offset in range(self.node_count)
        ]
        self._onboarded: Dict[str, Tuple[int, ...]] = {}

    @property
    def kind(self) -> str:
        return InfrastructureKind.CDN

    def onboard(self, fqdn: str, ports: Sequence[int]) -> None:
        """Start serving ``fqdn`` from the CDN."""
        self._onboarded[fqdn] = tuple(ports)

    def edge_name(self, fqdn: str) -> str:
        """The CDN-side CNAME target for an onboarded domain."""
        return f"{fqdn}.{self.edge_suffix}.{self.provider}"

    def cname_chain(self, fqdn: str) -> List[str]:
        if fqdn not in self._onboarded:
            raise KeyError(f"{fqdn!r} not onboarded at {self.provider!r}")
        return [self.edge_name(fqdn)]

    def a_records(self, fqdn: str, when: int) -> List[int]:
        if fqdn not in self._onboarded:
            raise KeyError(f"{fqdn!r} not onboarded at {self.provider!r}")
        epoch = when // self.rotation_seconds
        count = min(self.answers_per_query, self.node_count)
        start = _stable_hash(self.provider, fqdn, epoch) % self.node_count
        stride = 1 + _stable_hash(fqdn) % max(1, self.node_count // 7)
        return [
            self.nodes[(start + step * stride) % self.node_count]
            for step in range(count)
        ]

    @property
    def domains(self) -> Dict[str, Tuple[int, ...]]:
        return dict(self._onboarded)

    def all_addresses(self) -> List[int]:
        return list(self.nodes)

    def ports_for(self, fqdn: str) -> Tuple[int, ...]:
        return self._onboarded[fqdn]

    def domains_on_node(
        self, address: int, domains: Optional[Iterable[str]] = None
    ) -> List[str]:
        """Domains that an observer could see served from ``address``.

        Because node selection rotates, any onboarded domain will
        eventually be served by any node; this returns all onboarded
        domains (optionally filtered), matching what a passive-DNS
        database accumulates over time.
        """
        pool = self._onboarded if domains is None else domains
        return [fqdn for fqdn in pool if fqdn in self._onboarded]
