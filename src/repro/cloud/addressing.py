"""IPv4 addressing, prefixes, and autonomous-system bookkeeping.

Addresses are plain ``int`` values throughout the simulation for speed; the
helpers here convert to and from dotted-quad strings and group addresses
into prefixes and autonomous systems.  The :class:`AddressAllocator` hands
out non-overlapping prefixes so every simulated infrastructure (dedicated
clusters, clouds, CDNs, ISP subscriber pools, IXP members) receives globally
unique address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "ip_to_str",
    "str_to_ip",
    "Prefix",
    "AutonomousSystem",
    "ASRegistry",
    "AddressAllocator",
]


def ip_to_str(address: int) -> str:
    """Render an integer IPv4 address as a dotted quad."""
    if not 0 <= address <= 0xFFFFFFFF:
        raise ValueError(f"not an IPv4 address: {address!r}")
    return ".".join(
        str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def str_to_ip(text: str) -> int:
    """Parse a dotted quad into an integer IPv4 address."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    address = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        address = (address << 8) | octet
    return address


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (``network/length``)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"invalid prefix length: {self.length}")
        if self.network & ~self.mask:
            raise ValueError(
                f"network {ip_to_str(self.network)} has host bits set "
                f"for /{self.length}"
            )

    @property
    def mask(self) -> int:
        """The integer netmask of this prefix."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network + self.size - 1

    def __contains__(self, address: int) -> bool:
        return (address & self.mask) == self.network

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.first, self.last + 1))

    def slash24(self, address: int) -> int:
        """Return the /24 network containing ``address`` (which must be in
        this prefix)."""
        if address not in self:
            raise ValueError(
                f"{ip_to_str(address)} not in {self}"
            )
        return address & 0xFFFFFF00

    def __str__(self) -> str:
        return f"{ip_to_str(self.network)}/{self.length}"

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` into a :class:`Prefix`."""
        network_text, _, length_text = text.partition("/")
        if not length_text:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(str_to_ip(network_text), int(length_text))


@dataclass
class AutonomousSystem:
    """A simulated autonomous system.

    ``kind`` captures the coarse role the AS plays in the topology and is
    used by the ethics-motivated server-IP heuristics and by the IXP
    eyeball analysis:

    * ``"eyeball"`` — residential access network,
    * ``"cloud"`` — public-cloud provider (exclusive VM tenancy),
    * ``"cdn"`` — shared content-delivery network,
    * ``"hosting"`` — dedicated hosting / colocation,
    * ``"transit"`` — everything else.
    """

    asn: int
    name: str
    kind: str
    prefixes: List[Prefix] = field(default_factory=list)

    def announce(self, prefix: Prefix) -> None:
        """Record that this AS originates ``prefix``."""
        self.prefixes.append(prefix)

    def __contains__(self, address: int) -> bool:
        return any(address in prefix for prefix in self.prefixes)


class ASRegistry:
    """Registry mapping addresses to their originating AS.

    Lookups are answered from a sorted list of (network, mask-length, asn)
    entries with longest-prefix-match semantics.  The registry is the
    simulation's stand-in for a BGP routing table / IP-to-AS database.
    """

    def __init__(self) -> None:
        self._by_asn: Dict[int, AutonomousSystem] = {}
        self._routes: List[tuple] = []  # (first, last, length, asn)
        self._sorted = True

    def register(self, autonomous_system: AutonomousSystem) -> None:
        """Add an AS and index all of its prefixes."""
        if autonomous_system.asn in self._by_asn:
            raise ValueError(f"duplicate ASN {autonomous_system.asn}")
        self._by_asn[autonomous_system.asn] = autonomous_system
        for prefix in autonomous_system.prefixes:
            self.announce(autonomous_system.asn, prefix)

    def announce(self, asn: int, prefix: Prefix) -> None:
        """Index an additional prefix for an already-registered AS."""
        if asn not in self._by_asn:
            raise KeyError(f"unknown ASN {asn}")
        self._routes.append((prefix.first, prefix.last, prefix.length, asn))
        self._sorted = False

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._routes.sort()
            self._sorted = True

    def lookup(self, address: int) -> Optional[AutonomousSystem]:
        """Longest-prefix-match an address to its origin AS, or ``None``."""
        self._ensure_sorted()
        best: Optional[tuple] = None
        # Linear scan over candidate routes whose range covers the address.
        # The registry holds at most a few hundred routes, so binary search
        # plus a short backward walk keeps this cheap.
        import bisect

        position = bisect.bisect_right(
            self._routes, (address, 0xFFFFFFFF, 33, 0)
        )
        for route in reversed(self._routes[:position]):
            first, last, length, _ = route
            if first <= address <= last:
                if best is None or length > best[2]:
                    best = route
            # Routes are sorted by first address; once the first address of
            # a candidate is below any possible covering /0 we could stop,
            # but supernets may start much earlier, so walk the whole list
            # prefix-length-aware only when needed.
        if best is None:
            return None
        return self._by_asn[best[3]]

    def get(self, asn: int) -> AutonomousSystem:
        """Return the AS with number ``asn``."""
        return self._by_asn[asn]

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._by_asn.values())

    def __len__(self) -> int:
        return len(self._by_asn)


class AddressAllocator:
    """Sequential allocator of non-overlapping IPv4 prefixes.

    The allocator carves prefixes out of a configurable super-block
    (default ``10.0.0.0/8`` is *not* used — the simulation pretends to be
    the public Internet, so we allocate from ``1.0.0.0/8`` upward, skipping
    well-known reserved blocks).
    """

    _RESERVED = (
        Prefix.parse("0.0.0.0/8"),
        Prefix.parse("10.0.0.0/8"),
        Prefix.parse("127.0.0.0/8"),
        Prefix.parse("169.254.0.0/16"),
        Prefix.parse("172.16.0.0/12"),
        Prefix.parse("192.168.0.0/16"),
        Prefix.parse("224.0.0.0/3"),
    )

    def __init__(self, start: int = 0x01000000) -> None:
        self._cursor = start

    def allocate(self, length: int) -> Prefix:
        """Return the next free prefix of the requested length."""
        if not 8 <= length <= 32:
            raise ValueError(f"unsupported prefix length {length}")
        size = 1 << (32 - length)
        cursor = self._cursor
        # Align the cursor to the prefix size.
        if cursor % size:
            cursor += size - (cursor % size)
        while True:
            candidate = Prefix(cursor, length)
            clash = next(
                (
                    reserved
                    for reserved in self._RESERVED
                    if candidate.first <= reserved.last
                    and reserved.first <= candidate.last
                ),
                None,
            )
            if clash is None:
                break
            cursor = clash.last + 1
            if cursor % size:
                cursor += size - (cursor % size)
        if cursor + size - 1 > 0xFFFFFFFF:
            raise RuntimeError("IPv4 space exhausted in simulation")
        self._cursor = cursor + size
        return Prefix(cursor, length)
