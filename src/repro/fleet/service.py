"""The fleet router: admit, route, supervise, rebalance, merge.

One process — the router — reads the flow stream once, assigns every
record to a ring slot through the pipeline's memoised keying
(:class:`~repro.pipeline.flow.RecordRouter`), and fans indexed batches
out to N worker processes over bounded queues.  Each worker is a full
single-stream assembly (`repro.stream`); the router holds **no
detection state** — everything it knows is recomputable from the
keying salt, the persisted ``ring.json``, and the workers' checkpoint
lineage, which is what makes a router crash recoverable by a
whole-fleet resume.

**One replay mechanism.**  Worker restart, quarantine rebalance, and
whole-fleet resume are the same operation: read each target worker's
checkpointed per-slot fold counts, re-read the source from record
zero, skip each slot's counted prefix, and send the remainder (up to
the router's admitted position).  Because routing is deterministic and
per-slot delivery is in admission order, a checkpoint's slot counts
always describe an exact prefix of each slot's substream — no offsets,
no double counting.

**Supervision** follows the shard-supervisor semantics: capped-backoff
restarts first (:class:`~repro.resilience.supervisor.RestartTracker`),
quarantine when the budget is exhausted.  Quarantine rebalances the
ring — the dead worker's slots move wholesale to the deterministic
successor, its *checkpointed* evidence is adopted into the successor's
table, its event log is truncated to the checkpointed byte position,
and the post-checkpoint remainder is replayed.  Hangs are detected by
ack progress (a hung fold keeps heartbeating, so heartbeats prove the
wrong thing) and resolved by SIGKILL into the same death path.

**Drain ordering** is fan-out aware: the router stops admitting, then
every worker drains (final checkpoint + sink flush) behind its queued
backlog, and only then does the merger interleave the per-worker logs
— a stable sort by global ``record_index`` that the equivalence tests
prove byte-identical to the single-engine run.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.faults.fleet import FleetPlan
from repro.fleet.merge import merge_event_logs, truncate_log
from repro.fleet.metrics import FleetMetrics
from repro.fleet.ring import DEFAULT_RING_SLOTS, HashRing
from repro.fleet.worker import (
    WorkerSpec,
    worker_checkpoint_dir,
    worker_log_path,
    worker_main,
)
from repro.netflow.parse import ColumnarDecodeStage, DEFAULT_CHUNK_SIZE
from repro.netflow.replay import iter_flow_tuples
from repro.pipeline.flow import RecordRouter, SubscriberKeying
from repro.pipeline.metrics import StreamMetrics
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import RestartTracker
from repro.runtime.shutdown import (
    EXIT_COMPLETED,
    EXIT_DRAINED,
    StopToken,
    current_token,
)
from repro.stream.checkpoint import load_latest

__all__ = [
    "FleetConfig",
    "FleetService",
    "RouterCrash",
    "run_fleet",
]

#: How many admitted records between router housekeeping passes (ack
#: drain, death/hang scan, stop-token poll).
_PUMP_STRIDE = 2048


class RouterCrash(RuntimeError):
    """Raised by the injected ``router_crash`` fault (simulated death).

    The in-process stand-in for the router process dying: workers are
    SIGKILLed (as the kernel would reap the process group) and the
    exception propagates.  Recovery is a whole-fleet resume —
    ``ring.json`` plus worker checkpoint lineage rebuild everything.
    """


@dataclass(frozen=True)
class FleetConfig:
    """Router + worker knobs for one fleet run."""

    workers: int = 2
    ring_slots: int = DEFAULT_RING_SLOTS
    #: per-record path: records buffered per worker before a send
    batch_size: int = 2048
    #: bounded command-queue depth per worker (backpressure)
    queue_depth: int = 8
    #: worker-owned checkpoint cadence (records); 0 = drain/adopt only
    checkpoint_every: int = 0
    #: route decoded column chunks instead of per-record tuples
    columnar: bool = False
    chunk_size: int = DEFAULT_CHUNK_SIZE
    # -- engine knobs (mirrored into every WorkerSpec) ----------------
    threshold: float = 0.4
    require_established: bool = False
    #: the *full* single-engine bound, per worker — adoption must be
    #: lossless, so no worker may evict what another accumulated
    max_subscribers: int = 1 << 16
    ttl_seconds: Optional[int] = None
    salt: str = "haystack"
    rules_version: int = 0
    # -- supervision --------------------------------------------------
    #: restarts before quarantine (0 = quarantine on first death)
    max_restarts: int = 1
    backoff_base: float = 0.05
    backoff_cap: float = 0.5
    #: seconds without ack progress (with batches outstanding) before
    #: a worker is declared hung and killed
    hang_timeout: float = 5.0
    drain_timeout: float = 120.0
    #: fault harness (mirrors the single-engine ``SignalPlan``): the
    #: router sends itself a real SIGTERM just before admitting this
    #: global record index, driving the drain path deterministically
    inject_sigterm_at: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.ring_slots < self.workers:
            raise ValueError("ring_slots must be >= workers")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.max_restarts,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            jitter=False,
        )


class _WorkerHandle:
    """The router's side of one worker incarnation."""

    __slots__ = (
        "worker_id",
        "incarnation",
        "process",
        "queue",
        "seq",
        "sent",
        "acked",
        "last_progress",
        "buffer",
        "buffer_slots",
        "dead",
        "drain_sent",
        "drained",
        "error",
    )

    def __init__(self, worker_id, incarnation, process, queue) -> None:
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.process = process
        self.queue = queue
        self.seq = 0
        self.sent = 0
        self.acked = 0
        self.last_progress = time.monotonic()
        self.buffer: List[tuple] = []
        self.buffer_slots: Dict[int, int] = {}
        self.dead = False
        self.drain_sent = False
        self.drained = False
        self.error: Optional[str] = None

    @property
    def outstanding(self) -> int:
        return self.sent - self.acked


def _lineage_counts(payload: Optional[dict]) -> Dict[int, int]:
    """Normalised per-slot fold counts from a checkpoint payload."""
    if not payload:
        return {}
    lineage = payload.get("lineage") or {}
    counts = lineage.get("slot_counts") or {}
    return {int(slot): int(count) for slot, count in counts.items()}


class FleetService:
    """Router-side orchestration of one sharded streaming run."""

    def __init__(
        self,
        rules,
        hitlist,
        fleet_dir: Union[str, pathlib.Path],
        config: Optional[FleetConfig] = None,
        *,
        staged: Optional[Tuple[object, int]] = None,
        plan: Optional[FleetPlan] = None,
        stop_token: Optional[StopToken] = None,
    ) -> None:
        self.rules = rules
        self.hitlist = hitlist
        self.fleet_dir = pathlib.Path(fleet_dir)
        self.fleet_dir.mkdir(parents=True, exist_ok=True)
        self.config = config if config is not None else FleetConfig()
        self.staged = staged
        self.plan = plan
        self.stop_token = (
            stop_token if stop_token is not None else current_token()
        )
        keying = SubscriberKeying(
            salt=self.config.salt, shards=self.config.ring_slots
        )
        self.router = RecordRouter(keying)
        self.metrics = FleetMetrics(
            workers=self.config.workers,
            ring_slots=self.config.ring_slots,
        )
        self.ring: Optional[HashRing] = None
        self.exit_code: Optional[int] = None
        self._ctx = multiprocessing.get_context("fork")
        self._status = self._ctx.Queue()
        self._handles: Dict[int, _WorkerHandle] = {}
        self._trackers: Dict[int, RestartTracker] = {}
        self._drained_stats: Dict[int, dict] = {}
        self._flow_path: Optional[pathlib.Path] = None
        self._position = 0
        self._batches_sent = 0

    @property
    def ring_path(self) -> pathlib.Path:
        return self.fleet_dir / "ring.json"

    # -- top level -----------------------------------------------------

    def run(
        self,
        flow_path: Union[str, pathlib.Path],
        out_path: Union[str, pathlib.Path],
        resume: bool = False,
    ) -> int:
        """Route the whole stream; drain; merge.  Returns exit code.

        ``resume=True`` continues a previous fleet over the same
        directory: ring assignment reloads from ``ring.json``, per-slot
        skip offsets rebuild from worker checkpoint lineage, and any
        adoption a quarantine recorded but its successor never
        checkpointed is re-sent before admission starts.
        """
        self._flow_path = pathlib.Path(flow_path)
        self.ring = self._load_or_create_ring(resume)
        self.metrics.ring_epoch = self.ring.epoch
        skips = self._initial_skips() if resume else {}
        self._spawn_all(resume)
        try:
            stopped = self._admit(skips)
            self._drain_all()
        except RouterCrash:
            self._kill_all()
            raise
        self._merge(out_path)
        self.ring.save(self.ring_path)
        self.exit_code = EXIT_DRAINED if stopped else EXIT_COMPLETED
        return self.exit_code

    # -- push mode (live collector) ------------------------------------

    def start_push(
        self,
        source_path: Union[str, pathlib.Path],
        resume: bool = False,
    ) -> int:
        """Begin push-mode admission; returns the starting position.

        ``source_path`` is the *replayable source* — for the live
        collector, the delivered-set journal, which the caller must
        keep written **ahead of** every :meth:`admit_tuples` call (the
        unified replay mechanism re-reads it on worker death).  With
        ``resume=True`` the persisted ring reloads and the whole
        journal is replayed through normal admission with per-slot
        checkpoint skips — the fleet collector therefore re-folds
        journaled records a crash left uncheckpointed instead of
        dropping them.
        """
        self._flow_path = pathlib.Path(source_path)
        self.ring = self._load_or_create_ring(resume)
        self.metrics.ring_epoch = self.ring.epoch
        self._spawn_all(resume)
        if resume:
            self._admit(self._initial_skips())
        return self._position

    def admit_tuples(self, tuples) -> int:
        """Push-mode admission of pre-parsed flow tuples.

        Safe to buffer across calls: the caller journals records
        before admitting them, so a death replay always finds every
        admitted record in the source.
        """
        assert self.ring is not None
        identity = self.router.keying.identity
        assignment = self.ring.assignment
        handles = self._handles
        count = 0
        for record in tuples:
            slot = identity(record[1])[1]
            handle = handles[assignment[slot]]
            handle.buffer.append((self._position, record))
            handle.buffer_slots[slot] = (
                handle.buffer_slots.get(slot, 0) + 1
            )
            self._position += 1
            self.metrics.records_routed += 1
            count += 1
            if len(handle.buffer) >= self.config.batch_size:
                self._flush(handle)
        self._pump()
        return count

    def flush_partials(self) -> None:
        """Send buffered sub-batches now (idle collector socket)."""
        self._flush_all()
        self._pump()

    def broadcast_checkpoint(self) -> None:
        """Ask every live worker to checkpoint at its next queue slot.

        The push-mode analogue of the collector's service-owned
        cadence: batches already queued fold first, so each worker's
        checkpoint lands on a batch boundary with exact slot counts.
        """
        self._flush_all()
        for worker_id in sorted(self._handles):
            self._put(self._handles[worker_id], ("checkpoint",))
        self._pump()

    def finish_push(
        self, out_path: Union[str, pathlib.Path], stopped: bool
    ) -> int:
        """Drain the fleet, merge the logs, persist the ring."""
        assert self.ring is not None
        self._flush_all()
        self._pump()
        self._drain_all()
        self._merge(out_path)
        self.ring.save(self.ring_path)
        self.exit_code = EXIT_DRAINED if stopped else EXIT_COMPLETED
        return self.exit_code

    # -- ring / resume -------------------------------------------------

    def _load_or_create_ring(self, resume: bool) -> HashRing:
        if resume:
            ring = HashRing.load(self.ring_path)
            if ring is not None:
                if (
                    ring.slots != self.config.ring_slots
                    or ring.workers != self.config.workers
                ):
                    raise ValueError(
                        f"ring.json is {ring.workers} workers x "
                        f"{ring.slots} slots; config says "
                        f"{self.config.workers} x "
                        f"{self.config.ring_slots}"
                    )
                return ring
        ring = HashRing(self.config.ring_slots, self.config.workers)
        ring.save(self.ring_path)
        return ring

    def _worker_counts(self, worker_id: int) -> Dict[int, int]:
        loaded = load_latest(
            worker_checkpoint_dir(self.fleet_dir, worker_id)
        )
        return _lineage_counts(loaded.payload if loaded else None)

    def _initial_skips(self) -> Dict[int, int]:
        """Per-slot skip counts for a whole-fleet resume.

        The max across all workers' checkpointed counts: after an
        adoption the successor's count for a moved slot is a superset
        of (or equal to) the dead worker's, so the max is always the
        true folded prefix of that slot.
        """
        skips: Dict[int, int] = {}
        for worker_id in range(self.config.workers):
            for slot, count in self._worker_counts(worker_id).items():
                if count > skips.get(slot, 0):
                    skips[slot] = count
        return skips

    def _pending_adoptions(
        self, worker_id: int, persisted: Dict[int, int]
    ) -> List[Tuple[list, Dict[int, int]]]:
        """Adoptions owed to ``worker_id`` that it never checkpointed.

        A quarantine sends the dead worker's state to its successor,
        and the successor checkpoints immediately on adoption — so if
        a slot is assigned to this worker, a quarantined worker folded
        it, and this worker's checkpoint has *no* count for it, the
        adopt message died in a queue.  The dead worker's checkpoint is
        still on disk; re-derive the adoption from it.  (Absorption is
        digest-idempotent, but this path only fires when nothing was
        absorbed — the count dichotomy is all-or-nothing because adopt
        and its checkpoint are one atomic step on the worker.)
        """
        repairs: List[Tuple[list, Dict[int, int]]] = []
        assert self.ring is not None
        for dead in self.ring.quarantined:
            dead_counts = self._worker_counts(dead)
            owed = {
                slot: count
                for slot, count in dead_counts.items()
                if self.ring.assignment[slot] == worker_id
                and slot not in persisted
            }
            if not owed:
                continue
            loaded = load_latest(
                worker_checkpoint_dir(self.fleet_dir, dead)
            )
            tables = (
                loaded.payload.get("tables") or [] if loaded else []
            )
            repairs.append((tables, owed))
        return repairs

    def _prepare_resumed(self, worker_id: int) -> Dict[int, int]:
        """Re-send unpersisted adoptions; return effective counts."""
        counts = self._worker_counts(worker_id)
        handle = self._handles[worker_id]
        for tables, owed in self._pending_adoptions(worker_id, counts):
            assert self.ring is not None
            self._put(
                handle, ("adopt", tables, owed, self.ring.epoch)
            )
            counts.update(owed)
        return counts

    # -- worker lifecycle ----------------------------------------------

    def _spawn(
        self, worker_id: int, incarnation: int, resume: bool
    ) -> _WorkerHandle:
        assert self.ring is not None
        command_queue = self._ctx.Queue(
            maxsize=self.config.queue_depth
        )
        spec = WorkerSpec(
            worker_id=worker_id,
            incarnation=incarnation,
            fleet_dir=str(self.fleet_dir),
            ring_epoch=self.ring.epoch,
            threshold=self.config.threshold,
            require_established=self.config.require_established,
            max_subscribers=self.config.max_subscribers,
            ttl_seconds=self.config.ttl_seconds,
            salt=self.config.salt,
            checkpoint_every=self.config.checkpoint_every,
            rules_version=self.config.rules_version,
            resume=resume,
            plan=self.plan,
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(
                spec,
                self.rules,
                self.hitlist,
                self.staged,
                command_queue,
                self._status,
            ),
            daemon=True,
            name=f"fleet-worker-{worker_id:02d}",
        )
        process.start()
        handle = _WorkerHandle(
            worker_id, incarnation, process, command_queue
        )
        self._handles[worker_id] = handle
        stats = self.metrics.worker(worker_id)
        stats.incarnation = incarnation
        stats.slots = len(self.ring.slots_of(worker_id))
        return handle

    def _spawn_all(self, resume: bool) -> None:
        assert self.ring is not None
        for worker_id in self.ring.live_workers():
            self._spawn(worker_id, incarnation=0, resume=resume)
            if resume:
                self._prepare_resumed(worker_id)

    def _kill_all(self) -> None:
        for handle in self._handles.values():
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=5)
            self._discard_queue(handle)
        self._handles.clear()

    @staticmethod
    def _discard_queue(handle: _WorkerHandle) -> None:
        """Release a dead worker's command queue.

        A killed worker leaves queued batches nobody will read; the
        queue's feeder thread would block forever on the full pipe and
        hang interpreter shutdown.  ``cancel_join_thread`` tells it to
        drop the unflushed data — replay-to-position re-derives every
        dropped batch, so nothing is lost.
        """
        handle.queue.cancel_join_thread()
        handle.queue.close()

    # -- sends ---------------------------------------------------------

    def _put(self, handle: _WorkerHandle, message: tuple) -> bool:
        """Backpressured put; False if the worker died while we waited
        (the message is dropped — replay-to-position covers it)."""
        while True:
            if handle.dead:
                return False
            try:
                handle.queue.put(message, timeout=0.2)
                return True
            except queue_module.Full:
                self._pump()

    def _send_batch(
        self,
        handle: _WorkerHandle,
        kind: str,
        body,
        slot_counts: Dict[int, int],
        records: int,
    ) -> bool:
        if self.plan is not None and self.plan.router_crashes_at(
            self._batches_sent
        ):
            raise RouterCrash(
                f"injected router crash after "
                f"{self._batches_sent} batches"
            )
        if not self._put(
            handle, (kind, handle.seq, body, slot_counts)
        ):
            return False
        handle.seq += 1
        handle.sent += 1
        self._batches_sent += 1
        stats = self.metrics.worker(handle.worker_id)
        stats.batches_sent += 1
        stats.records_sent += records
        depth = handle.outstanding
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        return True

    def _flush(self, handle: _WorkerHandle) -> None:
        if not handle.buffer or handle.dead:
            return
        items = handle.buffer
        slot_counts = handle.buffer_slots
        handle.buffer = []
        handle.buffer_slots = {}
        self._send_batch(
            handle, "batch", items, slot_counts, len(items)
        )

    def _flush_all(self) -> None:
        for worker_id in sorted(self._handles):
            self._flush(self._handles[worker_id])

    # -- status / supervision ------------------------------------------

    def _pump(self) -> None:
        """Drain acks; scan for deaths and hangs."""
        while True:
            try:
                status = self._status.get_nowait()
            except queue_module.Empty:
                break
            kind, worker_id, incarnation = status[0], status[1], status[2]
            handle = self._handles.get(worker_id)
            if handle is None or handle.incarnation != incarnation:
                continue  # stale: a previous incarnation's message
            if kind == "ack":
                _, _, _, seq, processed, emitted, seconds = status
                handle.acked += 1
                handle.last_progress = time.monotonic()
                stats = self.metrics.worker(worker_id)
                stats.batches_acked += 1
                stats.records_processed = processed
                stats.events_emitted = emitted
                stats.process_seconds = seconds
            elif kind == "drained":
                handle.drained = True
                self._drained_stats[worker_id] = status[3]
                stats = self.metrics.worker(worker_id)
                stats.records_processed = status[3][
                    "records_processed"
                ]
                stats.events_emitted = status[3]["events_emitted"]
                stats.process_seconds = status[3]["process_seconds"]
            elif kind == "adopted":
                handle.last_progress = time.monotonic()
            elif kind == "error":
                handle.error = status[3]
        now = time.monotonic()
        for worker_id in list(self._handles):
            handle = self._handles.get(worker_id)
            if handle is None or handle.dead or handle.drained:
                continue
            process = handle.process
            if not process.is_alive():
                if process.exitcode == 0:
                    # exited cleanly post-drain; the "drained" status
                    # is still in flight — not a death
                    continue
                self._handle_death(worker_id)
            elif (
                handle.outstanding > 0
                and now - handle.last_progress
                > self.config.hang_timeout
            ):
                self.metrics.hangs_detected += 1
                process.kill()
                process.join(timeout=5)
                self._handle_death(worker_id)

    def _handle_death(self, worker_id: int) -> None:
        """Restart with capped backoff, or quarantine + rebalance."""
        started = time.perf_counter()
        handle = self._handles.pop(worker_id)
        handle.dead = True
        handle.process.join(timeout=5)
        self._discard_queue(handle)
        tracker = self._trackers.get(worker_id)
        if tracker is None:
            tracker = RestartTracker(self.config.retry_policy())
            self._trackers[worker_id] = tracker
        delay = tracker.next_delay()
        if delay is not None:
            time.sleep(delay)
            self.metrics.restarts += 1
            self.metrics.worker(worker_id).restarts += 1
            reborn = self._spawn(
                worker_id,
                incarnation=handle.incarnation + 1,
                resume=True,
            )
            counts = self._prepare_resumed(worker_id)
            assert self.ring is not None
            self._replay(
                reborn, set(self.ring.slots_of(worker_id)), counts
            )
            if handle.drain_sent:
                self._put(reborn, ("drain",))
                reborn.drain_sent = True
        else:
            self._quarantine(worker_id)
        elapsed = time.perf_counter() - started
        self.metrics.rebalance_seconds += elapsed

    def _quarantine(self, worker_id: int) -> None:
        """Rebalance the dead worker's slots onto its successor."""
        assert self.ring is not None
        loaded = load_latest(
            worker_checkpoint_dir(self.fleet_dir, worker_id)
        )
        payload = loaded.payload if loaded else None
        sink_position = (
            int(payload.get("sink_position", 0)) if payload else 0
        )
        dead_counts = _lineage_counts(payload)
        tables = payload.get("tables") or [] if payload else []
        move = self.ring.quarantine(worker_id)
        self.metrics.rebalances += 1
        self.metrics.ring_epoch = self.ring.epoch
        self.metrics.worker(worker_id).quarantined = True
        self.ring.save(self.ring_path)
        truncate_log(
            worker_log_path(self.fleet_dir, worker_id), sink_position
        )
        successor = self._handles[int(move["successor"])]
        self._put(
            handle=successor,
            message=("adopt", tables, dead_counts, self.ring.epoch),
        )
        stats = self.metrics.worker(successor.worker_id)
        stats.slots = len(self.ring.slots_of(successor.worker_id))
        self._replay(
            successor, set(move["slots"]), dict(dead_counts)
        )

    def _replay(
        self,
        handle: _WorkerHandle,
        slots: set,
        skips: Dict[int, int],
    ) -> None:
        """Re-send ``slots``' records past their checkpointed prefix.

        Reads the source from record zero up to the router's admitted
        position; rows outside ``slots`` are other workers' and rows
        inside the per-slot ``skips`` prefix are already folded in the
        target's (or adopted) checkpoint.  Everything the dead worker
        had in flight — queued, buffered, or folded-but-never-
        checkpointed — lands in this window, which is why the router
        never tracks in-flight batches.
        """
        assert self._flow_path is not None
        identity = self.router.keying.identity
        position = self._position
        buffer: List[tuple] = []
        buffer_slots: Dict[int, int] = {}
        index = 0
        for record in iter_flow_tuples(self._flow_path):
            if index >= position:
                break
            slot = identity(record[1])[1]
            current = index
            index += 1
            if slot not in slots:
                continue
            remaining = skips.get(slot, 0)
            if remaining:
                skips[slot] = remaining - 1
                continue
            buffer.append((current, record))
            buffer_slots[slot] = buffer_slots.get(slot, 0) + 1
            if len(buffer) >= self.config.batch_size:
                if not self._send_batch(
                    handle, "batch", buffer, buffer_slots, len(buffer)
                ):
                    return  # target died; its death path re-replays
                buffer, buffer_slots = [], {}
        if buffer:
            self._send_batch(
                handle, "batch", buffer, buffer_slots, len(buffer)
            )

    # -- admission -----------------------------------------------------

    def _stop_requested(self) -> bool:
        return (
            self.stop_token is not None
            and self.stop_token.stop_requested()
        )

    def _inject_sigterm(self) -> None:
        import os
        import signal

        os.kill(os.getpid(), signal.SIGTERM)

    def _admit(self, skips: Dict[int, int]) -> bool:
        """Route the stream; returns True if a stop token ended it."""
        if self.config.columnar:
            return self._admit_columnar(skips)
        assert self.ring is not None and self._flow_path is not None
        identity = self.router.keying.identity
        # the ring mutates this list in place on rebalance, so the
        # local binding stays current across quarantines
        assignment = self.ring.assignment
        batch_size = self.config.batch_size
        handles = self._handles
        stopped = False
        since_pump = 0
        inject_at = self.config.inject_sigterm_at
        for record in iter_flow_tuples(self._flow_path):
            if inject_at is not None and self._position >= inject_at:
                inject_at = None
                self._inject_sigterm()
                self._pump()
                if self._stop_requested():
                    stopped = True
                    break
            slot = identity(record[1])[1]
            if skips:
                remaining = skips.get(slot, 0)
                if remaining:
                    skips[slot] = remaining - 1
                    self._position += 1
                    self.metrics.records_skipped += 1
                    continue
            handle = handles[assignment[slot]]
            handle.buffer.append((self._position, record))
            handle.buffer_slots[slot] = (
                handle.buffer_slots.get(slot, 0) + 1
            )
            self._position += 1
            self.metrics.records_routed += 1
            since_pump += 1
            if len(handle.buffer) >= batch_size:
                self._flush(handle)
            if since_pump >= _PUMP_STRIDE:
                since_pump = 0
                self._pump()
                if self._stop_requested():
                    stopped = True
                    break
        self._flush_all()
        self._pump()
        return stopped or self._stop_requested()

    def _admit_columnar(self, skips: Dict[int, int]) -> bool:
        """Columnar admission: decode once, slice per worker.

        The router decodes column chunks exactly as a single columnar
        engine would, computes each row's ring slot through the same
        memoised keying (one digest per distinct source), and ships
        each worker its rows as an indexed sub-chunk — explicit global
        indices, so the worker's events carry single-stream
        ``record_index`` values.
        """
        assert self.ring is not None and self._flow_path is not None
        identity = self.router.keying.identity
        decode = ColumnarDecodeStage(self.config.chunk_size)
        stopped = False
        inject_at = self.config.inject_sigterm_at
        for chunk in decode.iter_chunks(self._flow_path):
            count = len(chunk)
            if count == 0:
                continue
            if (
                inject_at is not None
                and self._position + count > inject_at
            ):
                # chunk granularity, like the single engine's chunked
                # guard polling
                inject_at = None
                self._inject_sigterm()
                self._pump()
                if self._stop_requested():
                    stopped = True
                    break
            uniques, inverse = np.unique(
                chunk.src, return_inverse=True
            )
            unique_slots = np.fromiter(
                (identity(int(value))[1] for value in uniques),
                dtype=np.int64,
                count=len(uniques),
            )
            row_slots = unique_slots[inverse]
            indices = np.arange(
                self._position,
                self._position + count,
                dtype=np.int64,
            )
            keep = None
            if skips:
                keep = np.ones(count, dtype=bool)
                for slot in list(skips):
                    rows = np.nonzero(row_slots == slot)[0]
                    take = min(skips[slot], len(rows))
                    if take:
                        keep[rows[:take]] = False
                        self.metrics.records_skipped += take
                    if take == skips[slot]:
                        del skips[slot]
                    else:
                        skips[slot] -= take
            self._position += count
            if keep is not None:
                kept = np.nonzero(keep)[0]
                if len(kept) == 0:
                    continue
                indices = indices[kept]
                row_slots = row_slots[kept]
                columns = (
                    chunk.first[kept],
                    chunk.src[kept],
                    chunk.dst[kept],
                    chunk.proto[kept],
                    chunk.dport[kept],
                    chunk.flags[kept],
                )
            else:
                columns = (
                    chunk.first,
                    chunk.src,
                    chunk.dst,
                    chunk.proto,
                    chunk.dport,
                    chunk.flags,
                )
            assignment = np.asarray(
                self.ring.assignment, dtype=np.int64
            )
            row_workers = assignment[row_slots]
            for worker_id in np.unique(row_workers):
                rows = np.nonzero(row_workers == worker_id)[0]
                handle = self._handles[int(worker_id)]
                if handle.dead:  # pragma: no cover - replay covers
                    continue
                slot_values, slot_counts_arr = np.unique(
                    row_slots[rows], return_counts=True
                )
                slot_counts = {
                    int(slot): int(n)
                    for slot, n in zip(slot_values, slot_counts_arr)
                }
                body = (indices[rows],) + tuple(
                    column[rows] for column in columns
                )
                self._send_batch(
                    handle, "chunk", body, slot_counts, len(rows)
                )
                self.metrics.records_routed += len(rows)
            self._pump()
            if self._stop_requested():
                stopped = True
                break
        self._pump()
        return stopped or self._stop_requested()

    # -- drain / merge -------------------------------------------------

    def _drain_all(self) -> None:
        """Stop-admit → drain every worker → collect final stats."""
        deadline = time.monotonic() + self.config.drain_timeout
        while True:
            for worker_id in sorted(self._handles):
                handle = self._handles[worker_id]
                if not handle.drain_sent and not handle.dead:
                    if self._put(handle, ("drain",)):
                        handle.drain_sent = True
            self._pump()
            pending = [
                handle
                for handle in self._handles.values()
                if not handle.drained
            ]
            if not pending:
                break
            if time.monotonic() > deadline:
                errors = {
                    handle.worker_id: handle.error
                    for handle in pending
                }
                raise RuntimeError(
                    f"fleet drain timed out; pending={errors!r}"
                )
            time.sleep(0.02)
        for handle in self._handles.values():
            handle.process.join(timeout=10)

    def _merge(self, out_path: Union[str, pathlib.Path]) -> None:
        started = time.perf_counter()
        logs = [
            worker_log_path(self.fleet_dir, worker_id)
            for worker_id in range(self.config.workers)
        ]
        self.metrics.merged_events = merge_event_logs(logs, out_path)
        self.metrics.merge_seconds = time.perf_counter() - started

    # -- reporting -----------------------------------------------------

    def stream_metrics(self) -> StreamMetrics:
        """A stream-metrics document carrying the ``"fleet"`` section.

        Top-level counters aggregate the workers' drained stats so the
        fleet run renders through the same reporting path as a single
        engine, with the fleet table alongside.
        """
        doc = StreamMetrics()
        doc.fleet = self.metrics
        doc.records_processed = (
            self.metrics.records_routed + self.metrics.records_skipped
        )
        # before the merge (live snapshots), fall back to worker acks
        doc.events_emitted = self.metrics.merged_events or sum(
            stats.events_emitted
            for stats in self.metrics.worker_stats.values()
        )
        doc.subscribers_tracked = sum(
            stats.get("subscribers_tracked", 0)
            for stats in self._drained_stats.values()
        )
        doc.tmp_only_fallbacks = sum(
            stats.get("tmp_only_fallbacks", 0)
            for stats in self._drained_stats.values()
        )
        return doc


def run_fleet(
    rules,
    hitlist,
    flow_path: Union[str, pathlib.Path],
    fleet_dir: Union[str, pathlib.Path],
    out_path: Union[str, pathlib.Path],
    config: Optional[FleetConfig] = None,
    *,
    resume: bool = False,
    staged: Optional[Tuple[object, int]] = None,
    plan: Optional[FleetPlan] = None,
    stop_token: Optional[StopToken] = None,
) -> Tuple[int, FleetService]:
    """One-call fleet run; returns ``(exit_code, service)``."""
    service = FleetService(
        rules,
        hitlist,
        fleet_dir,
        config,
        staged=staged,
        plan=plan,
        stop_token=stop_token,
    )
    code = service.run(flow_path, out_path, resume=resume)
    return code, service
