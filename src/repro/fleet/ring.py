"""The consistent-hash ring: slots, assignment, epochs, rebalance.

The fleet partitions the subscriber key space into a fixed number of
*ring slots* — many more slots than workers — and assigns each slot to
a worker.  Records hash to slots via the pipeline's memoised keying
(:class:`~repro.pipeline.flow.RecordRouter`), so the record → slot
mapping is a pure function of the keying salt and never changes; only
the slot → worker mapping moves.  That split is what makes rebalance
cheap and deterministic: when a worker is quarantined, its slots are
reassigned wholesale to a successor and the ring *epoch* increments —
checkpoint lineage records the epoch, so a resumed fleet can audit
which assignment its evidence accumulated under.

The assignment is persisted as ``ring.json`` in the fleet directory
(atomic replace), because a router crash must not forget a rebalance:
the replacement router has to know which worker owns each slot before
it can rebuild per-slot replay offsets from worker checkpoints.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional, Union

__all__ = ["DEFAULT_RING_SLOTS", "HashRing"]

#: Default slot count.  Record → slot assignment depends on this (and
#: the keying salt) alone, so every fleet width N ∈ {1..slots} of the
#: same corpus shares one routing function — the property the
#: N-vs-single-engine equivalence proof rides on.
DEFAULT_RING_SLOTS = 64


class HashRing:
    """Slot → worker assignment with epoch-counted rebalance."""

    def __init__(self, slots: int, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if slots < workers:
            raise ValueError(
                f"{slots} slots cannot cover {workers} workers"
            )
        self.slots = slots
        self.workers = workers
        #: slot index -> worker id (round-robin start: balanced and
        #: deterministic for any worker count)
        self.assignment: List[int] = [
            slot % workers for slot in range(slots)
        ]
        self.epoch = 0
        self.quarantined: List[int] = []

    # -- queries ------------------------------------------------------

    def worker_of(self, slot: int) -> int:
        return self.assignment[slot]

    def slots_of(self, worker: int) -> List[int]:
        return [
            slot
            for slot, owner in enumerate(self.assignment)
            if owner == worker
        ]

    def live_workers(self) -> List[int]:
        return [
            worker
            for worker in range(self.workers)
            if worker not in self.quarantined
        ]

    # -- rebalance ----------------------------------------------------

    def successor_of(self, worker: int) -> int:
        """The live worker that inherits ``worker``'s slots.

        The next live worker in cyclic id order — deterministic, so a
        rerun of the same fault schedule rebalances identically.
        """
        for step in range(1, self.workers):
            candidate = (worker + step) % self.workers
            if (
                candidate not in self.quarantined
                and candidate != worker
            ):
                return candidate
        raise RuntimeError("no live worker left to inherit the slots")

    def quarantine(self, worker: int) -> Dict[str, object]:
        """Quarantine ``worker``; reassign its slots; bump the epoch.

        Returns ``{"successor", "slots", "epoch"}`` — everything the
        router needs to drive adoption and replay.
        """
        if worker in self.quarantined:
            raise ValueError(f"worker {worker} already quarantined")
        successor = self.successor_of(worker)
        moved = self.slots_of(worker)
        for slot in moved:
            self.assignment[slot] = successor
        self.quarantined.append(worker)
        self.epoch += 1
        return {
            "successor": successor,
            "slots": moved,
            "epoch": self.epoch,
        }

    # -- persistence --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "slots": self.slots,
            "workers": self.workers,
            "assignment": list(self.assignment),
            "epoch": self.epoch,
            "quarantined": list(self.quarantined),
        }

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Atomically persist the assignment (router-crash safety)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(self.to_dict(), sort_keys=True), encoding="ascii"
        )
        os.replace(tmp, path)

    @classmethod
    def load(
        cls, path: Union[str, pathlib.Path]
    ) -> Optional["HashRing"]:
        path = pathlib.Path(path)
        if not path.exists():
            return None
        state = json.loads(path.read_text(encoding="ascii"))
        ring = cls(int(state["slots"]), int(state["workers"]))
        ring.assignment = [int(w) for w in state["assignment"]]
        ring.epoch = int(state["epoch"])
        ring.quarantined = [int(w) for w in state["quarantined"]]
        return ring
