"""Fleet mode (:mod:`repro.fleet`): horizontally sharded streaming.

One router process consistent-hashes the flow stream by the pipeline's
memoised subscriber keying onto N supervised worker processes, each
running the *unmodified* single-stream assembly — own evidence table,
own checkpoint lineage, own JSONL event sink — and a deterministic
merge interleaves the per-worker logs back into one stream that is
**byte-identical** to what a single engine would have written.  The
pieces:

* :mod:`repro.fleet.ring` — the consistent-hash ring: fixed slot
  count, slot → worker assignment, epoch-counted rebalance, persisted
  as ``ring.json`` so a router crash cannot forget a rebalance;
* :mod:`repro.fleet.worker` — the worker process: command-queue
  protocol (batches, adoption, staged rule swaps, drain), worker-owned
  checkpoint cadence, per-slot fold counts in checkpoint lineage;
* :mod:`repro.fleet.service` — the router: admission (per-record or
  columnar), supervision (capped-backoff restart, ack-progress hang
  detection, quarantine + rebalance), the unified replay mechanism,
  fan-out-aware drain ordering, and the merge;
* :mod:`repro.fleet.metrics` — the ``"fleet"`` section of the metrics
  document (per-worker rec/s, queue depths, rebalance counters).

Layering: the fleet sits on ``repro.pipeline``, ``repro.stream``,
``repro.resilience``, and ``repro.runtime``.  It never imports
``repro.engine`` or ``repro.collector`` internals — the collector's
fleet adapter lives on the collector side.
"""

from repro.fleet.merge import merge_event_logs, truncate_log
from repro.fleet.metrics import FleetMetrics, WorkerStats
from repro.fleet.ring import DEFAULT_RING_SLOTS, HashRing
from repro.fleet.service import (
    FleetConfig,
    FleetService,
    RouterCrash,
    run_fleet,
)
from repro.fleet.worker import (
    WorkerSpec,
    worker_checkpoint_dir,
    worker_dir,
    worker_log_path,
)

__all__ = [
    "DEFAULT_RING_SLOTS",
    "FleetConfig",
    "FleetMetrics",
    "FleetService",
    "HashRing",
    "RouterCrash",
    "WorkerSpec",
    "WorkerStats",
    "merge_event_logs",
    "run_fleet",
    "truncate_log",
    "worker_checkpoint_dir",
    "worker_dir",
    "worker_log_path",
]
