"""Deterministic merge of per-worker event logs.

**The ordering contract.**  A single-engine run writes its event log in
fold order: ascending global ``record_index``, with one record's events
(possibly several rule classes completing on the same fold) emitted
consecutively in rule-evaluation order.  In the fleet, every record is
folded by exactly one worker — the ring keys each subscriber to one
slot, each slot to one worker, and a rebalance moves whole slots with
their checkpointed evidence — so each ``record_index`` appears in
exactly *one* worker log, with its intra-record event order intact.
The merge is therefore a stable sort of all worker-log lines by
``record_index``: between records it recovers the global fold order,
within a record the stable sort preserves the worker's emission order,
and the line bytes are never re-serialised — which is how an N-worker
fleet's merged log is *byte*-identical to the single-engine log, the
equivalence the tests pin for N ∈ {1, 2, 4, 8}.

This realises the (event_time, subscriber digest, seq) interleaving
contract through one integer: the global arrival index already
totally orders events by arrival, and arrival order is the stream
engine's emission order.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Iterable, List, Tuple, Union

__all__ = ["merge_event_logs", "truncate_log"]

#: Fast path for the compact sorted-key event line; any line it does
#: not match falls back to a full JSON parse.
_INDEX_RE = re.compile(rb'"record_index":\s*(\d+)')


def _record_index(line: bytes) -> int:
    match = _INDEX_RE.search(line)
    if match:
        return int(match.group(1))
    return int(json.loads(line.decode("utf-8"))["record_index"])


def merge_event_logs(
    log_paths: Iterable[Union[str, pathlib.Path]],
    out_path: Union[str, pathlib.Path],
) -> int:
    """Merge worker logs into ``out_path``; returns events written.

    ``log_paths`` must be supplied in a deterministic order (the fleet
    passes worker-id order) — the sort is stable, so the relative order
    of equal keys is the concatenation order.  Equal keys across *two*
    logs cannot happen in a correct fleet (one record folds on one
    worker); determinism is preserved even if they did.  Missing logs
    (a worker that never matched a record) are skipped.  A trailing
    partial line — a worker killed mid-write after its last checkpoint
    — is dropped, mirroring the byte-position truncation a resuming
    sink performs.
    """
    keyed: List[Tuple[int, bytes]] = []
    for log_path in log_paths:
        log_path = pathlib.Path(log_path)
        if not log_path.exists():
            continue
        raw = log_path.read_bytes()
        if not raw:
            continue
        complete = raw if raw.endswith(b"\n") else (
            raw[: raw.rfind(b"\n") + 1] if b"\n" in raw else b""
        )
        for line in complete.splitlines(keepends=True):
            if line.strip():
                keyed.append((_record_index(line), line))
    keyed.sort(key=lambda item: item[0])  # Timsort: stable
    out_path = pathlib.Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "wb") as fh:
        for _, line in keyed:
            fh.write(line)
    return len(keyed)


def truncate_log(path: Union[str, pathlib.Path], position: int) -> None:
    """Cut a dead worker's event log back to its checkpointed bytes.

    Quarantine migrates the worker's *checkpointed* state to the
    successor and replays everything after the checkpoint into it —
    events the dead worker emitted past its checkpoint will be
    re-emitted by the successor, so they must leave the dead log or the
    merge would double-count them.  Exactly the truncation a resuming
    engine performs on its own sink, applied post-mortem.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return
    with open(path, "r+b") as fh:
        fh.truncate(position)
