"""Fleet counters: the ``"fleet"`` section of the metrics document.

The router owns one :class:`FleetMetrics`; per-worker numbers are
updated from batch acks (the worker reports its own fold counters with
every ack, so the router's view lags the workers by at most the
outstanding queue depth).  The document lands as the ``"fleet"``
section of the standard stream metrics
(:attr:`repro.pipeline.metrics.StreamMetrics.fleet`), next to the
``"collector"`` section the live collector adds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["FleetMetrics", "WorkerStats"]


@dataclass
class WorkerStats:
    """The router's view of one worker (latest ack wins)."""

    worker_id: int
    incarnation: int = 0
    slots: int = 0
    batches_sent: int = 0
    records_sent: int = 0
    batches_acked: int = 0
    #: the worker's own fold counters, as of its latest ack
    records_processed: int = 0
    events_emitted: int = 0
    process_seconds: float = 0.0
    restarts: int = 0
    quarantined: bool = False
    #: largest sent-minus-acked batch backlog observed
    max_queue_depth: int = 0

    @property
    def queue_depth(self) -> int:
        return self.batches_sent - self.batches_acked

    @property
    def records_per_second(self) -> float:
        if self.process_seconds <= 0:
            return 0.0
        return self.records_processed / self.process_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "incarnation": self.incarnation,
            "slots": self.slots,
            "batches_sent": self.batches_sent,
            "records_sent": self.records_sent,
            "batches_acked": self.batches_acked,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "records_processed": self.records_processed,
            "events_emitted": self.events_emitted,
            "records_per_second": self.records_per_second,
            "restarts": self.restarts,
            "quarantined": self.quarantined,
        }


@dataclass
class FleetMetrics:
    """Router-level counters plus the per-worker table."""

    workers: int = 0
    ring_slots: int = 0
    ring_epoch: int = 0
    #: records the router admitted (routed or skipped as replayed)
    records_routed: int = 0
    #: records skipped during replay (already in worker checkpoints)
    records_skipped: int = 0
    rebalances: int = 0
    #: wall seconds spent detecting death → adoption → replay complete
    rebalance_seconds: float = 0.0
    restarts: int = 0
    hangs_detected: int = 0
    #: wall seconds the deterministic merge took
    merge_seconds: float = 0.0
    merged_events: int = 0
    worker_stats: Dict[int, WorkerStats] = field(default_factory=dict)

    def worker(self, worker_id: int) -> WorkerStats:
        stats = self.worker_stats.get(worker_id)
        if stats is None:
            stats = WorkerStats(worker_id)
            self.worker_stats[worker_id] = stats
        return stats

    def to_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "ring_slots": self.ring_slots,
            "ring_epoch": self.ring_epoch,
            "records_routed": self.records_routed,
            "records_skipped": self.records_skipped,
            "rebalances": self.rebalances,
            "rebalance_seconds": self.rebalance_seconds,
            "restarts": self.restarts,
            "hangs_detected": self.hangs_detected,
            "merge_seconds": self.merge_seconds,
            "merged_events": self.merged_events,
            "per_worker": [
                self.worker_stats[worker_id].to_dict()
                for worker_id in sorted(self.worker_stats)
            ],
        }
