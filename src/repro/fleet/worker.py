"""The fleet worker process: one routed engine, supervised.

Each worker runs the *existing* stream assembly — a
:class:`~repro.stream.processor.StreamDetectionEngine` with its own
:class:`~repro.pipeline.state.EvidenceStateTable`, JSONL event sink,
and checkpoint directory — fed routed ``(global index, tuple)`` batches
(or routed columnar sub-chunks) from its command queue instead of a
file.  Design points:

**The worker owns checkpoint cadence** (engine built with
``checkpoint_every=0``), exactly like the live collector service:
checkpoints land at batch boundaries every ``checkpoint_every`` folded
records, so the checkpoint's per-slot lineage counts are exact batch
prefixes and the router can rebuild replay offsets from them.

**Lineage rides in the checkpoint payload**: ``{"worker_id",
"ring_epoch", "slot_counts"}``, where ``slot_counts[slot]`` is how many
records of that ring slot this worker has folded.  Slot counts — not a
single offset — are what make restart, rebalance, and whole-fleet
resume one mechanism: the router re-reads the replayable source from
record zero and skips each slot's checkpointed prefix.

**Signals are the router's job.**  Workers ignore SIGTERM/SIGINT; a
drain arrives as a queued ``("drain",)`` message *after* every
in-flight batch, giving the fan-out-aware drain ordering (router stops
admitting → workers drain → merger flushes).  A worker that loses its
parent (router crash) exits without draining — whole-fleet resume
recovers from its last checkpoint.

**Liveness** is reported two ways: heartbeat files (the shard
supervisor's :class:`~repro.resilience.supervisor.HeartbeatWriter`,
beating from a daemon thread) prove the process is alive, and per-batch
acks prove it is *folding* — a hung fold keeps heartbeating, so the
router's hang detection watches ack progress, not heartbeats.
"""

from __future__ import annotations

import os
import pathlib
import queue as queue_module
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.netflow.parse import IndexedFlowChunk
from repro.pipeline.events import JsonlEventSink
from repro.resilience.supervisor import HeartbeatWriter
from repro.stream.checkpoint import load_latest, tmp_leftover_count
from repro.stream.processor import StreamConfig, StreamDetectionEngine

__all__ = [
    "WorkerSpec",
    "worker_main",
    "worker_dir",
    "worker_checkpoint_dir",
    "worker_log_path",
]

#: Exit codes a worker process ends with (the router reads these).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_ORPHANED = 2


def worker_dir(fleet_dir, worker_id: int) -> pathlib.Path:
    """Per-worker subdirectory (``worker-NN``) of the fleet directory."""
    return pathlib.Path(fleet_dir) / f"worker-{worker_id:02d}"


def worker_checkpoint_dir(fleet_dir, worker_id: int) -> pathlib.Path:
    """Where worker ``worker_id`` writes its lineage checkpoints."""
    return worker_dir(fleet_dir, worker_id) / "checkpoints"


def worker_log_path(fleet_dir, worker_id: int) -> pathlib.Path:
    """Worker ``worker_id``'s own JSONL event log (pre-merge)."""
    return worker_dir(fleet_dir, worker_id) / "events.jsonl"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker incarnation needs (crosses the fork)."""

    worker_id: int
    incarnation: int
    fleet_dir: str
    ring_epoch: int
    threshold: float = 0.4
    require_established: bool = False
    #: per-worker table bound — the fleet passes the *full* single-
    #: engine bound so adoption after a rebalance is lossless
    max_subscribers: int = 1 << 16
    ttl_seconds: Optional[int] = None
    salt: str = "haystack"
    #: worker-owned checkpoint cadence in folded records; 0 = only on
    #: drain/adoption
    checkpoint_every: int = 0
    rules_version: int = 0
    resume: bool = False
    #: duck-typed fault plan (see repro.faults.fleet.FleetPlan)
    plan: Optional[object] = None


def worker_main(
    spec: WorkerSpec,
    rules,
    hitlist,
    staged: Optional[Tuple[object, int]],
    command_queue,
    status_queue,
) -> None:
    """Process entry point (fork): serve the command queue until drain."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        code = _serve(
            spec, rules, hitlist, staged, command_queue, status_queue
        )
    except BaseException:
        try:
            status_queue.put(
                (
                    "error",
                    spec.worker_id,
                    spec.incarnation,
                    traceback.format_exc(),
                )
            )
            time.sleep(0.05)  # let the queue feeder flush
        finally:
            os._exit(EXIT_ERROR)
    os._exit(code)


def _build_engine(
    spec: WorkerSpec, rules, hitlist, staged
) -> Tuple[StreamDetectionEngine, Dict[str, object]]:
    """Resume-or-fresh engine plus its live lineage dict."""
    ckpt_dir = worker_checkpoint_dir(spec.fleet_dir, spec.worker_id)
    log_path = worker_log_path(spec.fleet_dir, spec.worker_id)
    log_path.parent.mkdir(parents=True, exist_ok=True)
    config = StreamConfig(
        threshold=spec.threshold,
        require_established=spec.require_established,
        max_subscribers=spec.max_subscribers,
        ttl_seconds=spec.ttl_seconds,
        workers=1,
        salt=spec.salt,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=0,  # the worker owns the cadence
    )
    loaded = load_latest(ckpt_dir) if spec.resume else None
    if loaded is None:
        engine = StreamDetectionEngine(
            rules,
            hitlist,
            config,
            sink=JsonlEventSink(log_path, resume=False),
            rules_version=spec.rules_version,
        )
        if spec.resume:
            # A directory holding only torn-write .tmp leftovers means
            # the worker died mid-first-checkpoint, not a fresh start —
            # the lineage audit reads this counter to tell them apart.
            engine.metrics.tmp_only_fallbacks = tmp_leftover_count(
                ckpt_dir
            )
        if staged is not None:
            generation, activate_at = staged
            if generation.version > engine.rules_version:
                engine.stage_rules(generation, activate_at)
    else:
        ckpt_rules = loaded.payload.get("rules") or {}
        ckpt_version = int(ckpt_rules.get("active_version", 0))
        if ckpt_version == spec.rules_version:
            resume_rules, resume_hitlist = rules, hitlist
        elif staged is not None and staged[0].version == ckpt_version:
            # the worker died after applying a swap the base rules
            # predate — resume under the generation it checkpointed
            resume_rules = staged[0].rules
            resume_hitlist = staged[0].hitlist
        else:
            raise RuntimeError(
                f"worker {spec.worker_id} checkpointed rules version "
                f"{ckpt_version}, fleet has {spec.rules_version} and "
                f"no matching staged generation"
            )
        engine = StreamDetectionEngine.resume(
            resume_rules,
            resume_hitlist,
            config,
            sink=JsonlEventSink(log_path, resume=True),
            rules_version=ckpt_version,
        )
        pending = engine.checkpoint_pending_rules
        if (
            pending is not None
            and staged is not None
            and staged[0].version == pending[0]
        ):
            # re-stage at the checkpointed boundary, not a new one
            engine.stage_rules(staged[0], pending[1])
        elif (
            staged is not None
            and staged[0].version > engine.rules_version
        ):
            engine.stage_rules(staged[0], staged[1])
    lineage: Dict[str, object] = {
        "worker_id": spec.worker_id,
        "ring_epoch": spec.ring_epoch,
        "slot_counts": {},
    }
    if engine.lineage is not None:
        restored = engine.lineage.get("slot_counts") or {}
        # JSON round-trips dict keys as strings
        lineage["slot_counts"] = {
            int(slot): int(count) for slot, count in restored.items()
        }
        lineage["ring_epoch"] = max(
            spec.ring_epoch, int(engine.lineage.get("ring_epoch", 0))
        )
    engine.lineage = lineage
    return engine, lineage


def _serve(
    spec: WorkerSpec,
    rules,
    hitlist,
    staged,
    command_queue,
    status_queue,
) -> int:
    engine, lineage = _build_engine(spec, rules, hitlist, staged)
    slot_counts: Dict[int, int] = lineage["slot_counts"]  # type: ignore[assignment]
    heartbeat_dir = pathlib.Path(spec.fleet_dir) / "heartbeats"
    heartbeat_dir.mkdir(parents=True, exist_ok=True)
    parent = os.getppid()
    plan = spec.plan

    def checkpoint() -> None:
        engine.write_checkpoint()

    def ack(seq: int) -> None:
        status_queue.put(
            (
                "ack",
                spec.worker_id,
                spec.incarnation,
                seq,
                engine.records_processed,
                engine.metrics.events_emitted,
                engine.metrics.process_seconds,
            )
        )

    with HeartbeatWriter(str(heartbeat_dir), spec.worker_id):
        while True:
            try:
                message = command_queue.get(timeout=0.5)
            except queue_module.Empty:
                if os.getppid() != parent:
                    # the router died; a whole-fleet resume will replay
                    # anything past our last checkpoint
                    return EXIT_ORPHANED
                continue
            kind = message[0]
            if kind in ("batch", "chunk"):
                seq = message[1]
                if plan is not None:
                    action = plan.worker_action(
                        spec.worker_id, spec.incarnation, seq
                    )
                    if action is not None:
                        if action[0] == "crash":
                            os._exit(EXIT_ERROR)
                        time.sleep(action[1])  # hang; router kills us
                if kind == "batch":
                    items = message[2]
                    folded = engine.process_pairs(iter(items))
                    expected = len(items)
                else:
                    columns = message[2]
                    chunk = IndexedFlowChunk(*columns)
                    folded = engine.process_chunks(iter([chunk]))
                    expected = len(chunk)
                if folded != expected:  # pragma: no cover - no guards
                    raise RuntimeError(
                        f"worker folded {folded}/{expected} records"
                    )
                for slot, count in message[3].items():
                    slot_counts[slot] = slot_counts.get(slot, 0) + count
                if (
                    spec.checkpoint_every
                    and engine.metrics.records_since_checkpoint
                    >= spec.checkpoint_every
                ):
                    checkpoint()
                ack(seq)
            elif kind == "adopt":
                table_states, adopted_counts, epoch = message[1:]
                absorbed = 0
                table = engine._tables[0]
                for state in table_states:
                    absorbed += table.absorb(state)
                for slot, count in adopted_counts.items():
                    slot_counts[slot] = (
                        slot_counts.get(slot, 0) + int(count)
                    )
                lineage["ring_epoch"] = int(epoch)
                # Persist immediately: the adopted evidence and slot
                # counts must be atomic with each other in lineage, or
                # a later resume would re-fold records whose evidence
                # was already absorbed.
                checkpoint()
                status_queue.put(
                    (
                        "adopted",
                        spec.worker_id,
                        spec.incarnation,
                        absorbed,
                    )
                )
            elif kind == "stage":
                generation, activate_at = message[1:]
                if generation.version > engine.rules_version and (
                    engine.pending_rules is None
                    or engine.pending_rules.generation.version
                    != generation.version
                ):
                    engine.stage_rules(generation, activate_at)
            elif kind == "checkpoint":
                if engine.metrics.records_since_checkpoint:
                    checkpoint()
            elif kind == "drain":
                engine.drain()
                engine.sink.close()
                status_queue.put(
                    (
                        "drained",
                        spec.worker_id,
                        spec.incarnation,
                        {
                            "records_processed": (
                                engine.records_processed
                            ),
                            "events_emitted": (
                                engine.metrics.events_emitted
                            ),
                            "process_seconds": (
                                engine.metrics.process_seconds
                            ),
                            "tmp_only_fallbacks": (
                                engine.metrics.tmp_only_fallbacks
                            ),
                            "subscribers_tracked": (
                                engine.metrics.subscribers_tracked
                            ),
                        },
                    )
                )
                time.sleep(0.05)  # let the queue feeder flush
                return EXIT_OK
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown fleet command {kind!r}")
