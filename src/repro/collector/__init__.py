"""Live collector mode: detection as a long-running network service.

The paper's detection runs over NetFlow continuously exported by ISP
border routers — a lossy, reordering UDP feed.  This package is that
deployment mode: a UDP NetFlow v9 / IPFIX socket source with
per-exporter template caches and sequence-gap accounting
(:mod:`repro.collector.exporters`), a never-raising ingest front that
quarantines undecodable datagrams under typed reasons
(:mod:`repro.collector.source`), a service loop feeding the streaming
engine with service-owned checkpoint cadence and a delivered-set
journal (:mod:`repro.collector.service`), and a threaded HTTP control
plane for health, metrics, and per-subscriber queries
(:mod:`repro.collector.control`).  With ``--fleet-workers N`` the same
socket front feeds a horizontally sharded worker fleet instead of one
in-process engine (:mod:`repro.collector.fleetmode`), with the journal
doubling as the fleet's rebalance/resume replay source.

Layering: sits on :mod:`repro.pipeline`, :mod:`repro.netflow`,
:mod:`repro.stream`, :mod:`repro.runtime`, :mod:`repro.resilience` —
never on :mod:`repro.engine` or :mod:`repro.ixp` (enforced by
``tools/check_layering.py``).
"""

from repro.collector.control import ControlPlane
from repro.collector.exporters import ExporterState, ExporterTable
from repro.collector.metrics import CollectorMetrics
from repro.collector.service import (
    CollectorConfig,
    CollectorService,
    JOURNAL_HEADER,
    truncate_journal,
)
from repro.collector.fleetmode import (
    FleetCollectorService,
    trim_torn_tail,
)
from repro.collector.source import CollectorSource

__all__ = [
    "CollectorConfig",
    "CollectorMetrics",
    "CollectorService",
    "CollectorSource",
    "ControlPlane",
    "ExporterState",
    "ExporterTable",
    "FleetCollectorService",
    "JOURNAL_HEADER",
    "trim_torn_tail",
    "truncate_journal",
]
