"""Collector-plane counters: the ``"collector"`` metrics section.

Everything the UDP ingest path counts that the stream engine cannot
see from inside: datagrams and their fates, per-exporter sequence-gap
accounting (expected vs received), the data-before-template pending
buffer, and exporter lifecycle.  The document is rendered into the
``repro.engine.metrics/1`` stream document as a ``"collector"``
section (see :class:`repro.pipeline.metrics.StreamMetrics`).

These counters are *per process*: they describe the live socket's
health, are not part of detection identity, and are deliberately not
checkpointed — a resumed collector starts them at zero while the
engine's detection state carries over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CollectorMetrics"]


@dataclass
class CollectorMetrics:
    """Counters of one live collector's ingest plane."""

    # -- datagram fates ------------------------------------------------
    datagrams_received: int = 0
    datagrams_decoded: int = 0
    #: datagrams rejected with a typed DatagramError (see the
    #: ``datagram_*`` quarantine reasons for the breakdown)
    datagrams_quarantined: int = 0
    quarantined_by_reason: Dict[str, int] = field(default_factory=dict)
    #: flow records decoded from delivered datagrams
    records_decoded: int = 0
    #: records that passed semantic validation and were folded
    records_folded: int = 0
    #: records dropped by semantic validation (impossible tuples)
    records_invalid: int = 0

    # -- per-exporter sequence accounting ------------------------------
    #: distinct sequence-number gaps observed (datagrams lost in flight)
    sequence_gaps: int = 0
    #: records the gaps say we never received
    records_missed: int = 0
    #: datagrams whose sequence we had already accepted
    duplicate_datagrams: int = 0
    #: datagrams that arrived behind an already-accepted sequence
    reordered_datagrams: int = 0
    #: exporter restarts detected (sequence rebaselined, not a gap)
    sequence_resets: int = 0

    # -- data-before-template pending buffer ---------------------------
    pending_buffered_sets: int = 0
    pending_flushed_sets: int = 0
    pending_flushed_records: int = 0
    #: sets evicted because the per-exporter pending bound was hit
    pending_overflow_sets: int = 0
    #: sets dropped because their template never arrived within the TTL
    pending_expired_sets: int = 0

    # -- exporter lifecycle --------------------------------------------
    exporters_active: int = 0
    exporters_seen: int = 0
    #: exporters dropped after ``exporter_timeout`` of silence
    exporters_expired: int = 0
    #: templates learned across all exporters (re-sends included)
    templates_learned: int = 0

    def to_dict(self) -> Dict[str, object]:
        """Render the ``"collector"`` metrics section."""
        return {
            "datagrams": {
                "received": self.datagrams_received,
                "decoded": self.datagrams_decoded,
                "quarantined": self.datagrams_quarantined,
                "quarantined_by_reason": dict(
                    sorted(self.quarantined_by_reason.items())
                ),
            },
            "records": {
                "decoded": self.records_decoded,
                "folded": self.records_folded,
                "invalid": self.records_invalid,
            },
            "sequence": {
                "gaps": self.sequence_gaps,
                "records_missed": self.records_missed,
                "duplicates": self.duplicate_datagrams,
                "reordered": self.reordered_datagrams,
                "resets": self.sequence_resets,
            },
            "pending": {
                "buffered_sets": self.pending_buffered_sets,
                "flushed_sets": self.pending_flushed_sets,
                "flushed_records": self.pending_flushed_records,
                "overflow_sets": self.pending_overflow_sets,
                "expired_sets": self.pending_expired_sets,
            },
            "exporters": {
                "active": self.exporters_active,
                "seen": self.exporters_seen,
                "expired": self.exporters_expired,
                "templates_learned": self.templates_learned,
            },
        }
