"""The collector's threaded HTTP control plane.

Three read-only endpoints, served from daemon threads so they respond
*throughout* ingest (the acceptance criterion) without ever touching
the socket loop's latency budget:

``GET /healthz``
    Liveness: status (``ok`` while ingesting, ``draining`` once a stop
    is requested), bound ports, records folded, datagrams seen.

``GET /metrics``
    The full ``repro.engine.metrics/1`` stream document — overload,
    quarantine, throughput — plus the live ``"collector"`` section
    (datagram fates, sequence gaps, pending buffer, exporters).

``GET /subscribers/<digest>``
    Per-subscriber detection state straight out of the
    :class:`~repro.pipeline.state.EvidenceStateTable`: the salted
    digest's rule progress snapshot, or ``found: false``.

Handlers only call the three ``*_snapshot`` methods the service
exposes; the service serialises them against the ingest loop with its
own lock, so a query observes a datagram boundary, never a half-folded
batch.  Everything is stdlib (``http.server``) — no new dependencies.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

__all__ = ["ControlPlane"]


def _build_handler(service):
    class _Handler(BaseHTTPRequestHandler):
        # keep the soak's stderr clean; failures surface as HTTP codes
        def log_message(self, fmt, *args):  # pragma: no cover
            pass

        def do_GET(self):  # noqa: N802 (http.server contract)
            try:
                if self.path == "/healthz":
                    self._reply(200, service.health_snapshot())
                elif self.path == "/metrics":
                    self._reply(200, service.metrics_snapshot())
                elif self.path.startswith("/subscribers/"):
                    digest = self.path[len("/subscribers/") :]
                    if not digest or "/" in digest:
                        self._reply(404, {"error": "bad subscriber path"})
                        return
                    self._reply(200, service.subscriber_snapshot(digest))
                else:
                    self._reply(404, {"error": f"no route {self.path}"})
            except Exception as exc:  # never kill the server thread
                self._reply(500, {"error": repr(exc)})

        def _reply(self, status: int, document) -> None:
            body = json.dumps(document, sort_keys=True).encode("ascii")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    return _Handler


class ControlPlane:
    """Threaded HTTP server bound next to the UDP data plane."""

    def __init__(
        self, service, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._server = ThreadingHTTPServer(
            (host, port), _build_handler(service)
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-collector-control",
            daemon=True,
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port) — port 0 resolves here."""
        return self._server.server_address[:2]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
