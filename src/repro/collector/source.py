"""The collector ingest front: arbitrary bytes in, valid records out.

:class:`CollectorSource` is the pure (socket-free) half of the live
collector: hand it one datagram payload plus its peer address and it
returns the flow records that are safe to fold — decoded in the right
exporter's template context, sequence-accounted, semantically
validated.  It **never raises**: a datagram that cannot be decoded is
quarantined under a typed ``datagram_<reason>`` slug (see
:class:`~repro.netflow.datagram.DatagramError`) and yields no records;
a decodable record with an impossible tuple is quarantined under the
shared semantic reasons (``bad_port``, ``time_travel``, …) exactly as
the file-replay path would.  That last property is what makes a live
run comparable to a file replay of the delivered-and-decodable set —
both paths apply the same validation to the same records.

The socket loop, engine fold, journal, and control plane live in
:mod:`repro.collector.service`; keeping ingest pure makes the fault
matrix in ``tests/test_collector_faults.py`` a function call, not a
network exercise.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.collector.exporters import ExporterTable
from repro.collector.metrics import CollectorMetrics
from repro.netflow.datagram import DatagramError, peek_header
from repro.netflow.records import FlowRecord
from repro.resilience.quarantine import (
    QuarantineSink,
    validate_flow_record,
)

__all__ = ["CollectorSource"]


class CollectorSource:
    """Datagram → validated flow records, with full fault accounting."""

    def __init__(
        self,
        metrics: Optional[CollectorMetrics] = None,
        quarantine: Optional[QuarantineSink] = None,
        pending_max_sets: int = 64,
        pending_ttl: float = 60.0,
        reset_window: int = 64,
        exporter_timeout: float = 300.0,
    ) -> None:
        self.metrics = metrics if metrics is not None else CollectorMetrics()
        self.quarantine = (
            quarantine if quarantine is not None else QuarantineSink()
        )
        self.exporters = ExporterTable(
            self.metrics,
            pending_max_sets=pending_max_sets,
            pending_ttl=pending_ttl,
            reset_window=reset_window,
            timeout=exporter_timeout,
        )

    def ingest(
        self,
        payload: bytes,
        addr: Tuple[str, int] = ("", 0),
        now: float = 0.0,
    ) -> List[FlowRecord]:
        """Fold one datagram; returns the records safe to detect on.

        ``now`` is caller-supplied wall time (monotonic or epoch — it
        only feeds pending-TTL and exporter-expiry arithmetic), which
        keeps the fault matrix deterministic.
        """
        metrics = self.metrics
        metrics.datagrams_received += 1
        try:
            header = peek_header(payload)
            state = self.exporters.state_for(
                addr, header.exporter_id, header.version
            )
            records = state.ingest(payload, now)
        except DatagramError as exc:
            reason = f"datagram_{exc.reason}"
            metrics.datagrams_quarantined += 1
            metrics.quarantined_by_reason[reason] = (
                metrics.quarantined_by_reason.get(reason, 0) + 1
            )
            self.quarantine.record(reason, payload)
            return []
        metrics.datagrams_decoded += 1
        metrics.records_decoded += len(records)
        kept: List[FlowRecord] = []
        for record in records:
            reason = validate_flow_record(record)
            if reason is not None:
                metrics.records_invalid += 1
                self.quarantine.record(reason, record)
                continue
            kept.append(record)
        metrics.records_folded += len(kept)
        return kept

    def expire_exporters(self, now: float) -> int:
        """Drop exporters idle past the timeout; returns how many."""
        return self.exporters.expire(now)
