"""The long-running collector service: socket loop, fold, journal,
drain.

:class:`CollectorService` ties the pure ingest front
(:class:`~repro.collector.source.CollectorSource`) to the streaming
engine (:class:`~repro.stream.processor.StreamDetectionEngine`): one
UDP socket, one fold loop, one lock shared with the HTTP control
plane.  Design points that carry the robustness guarantees:

**Checkpoint cadence is service-owned.**  The engine is built with
``checkpoint_every=0`` — the per-call cadence reset inside
:class:`~repro.pipeline.flow.FlowPipeline` is designed for long file
replays, and a collector folds thousands of datagram-sized batches.
The service instead watches the engine's ``records_since_checkpoint``
(which accumulates across batches when the pipeline cadence is off)
and calls :meth:`~repro.stream.processor.StreamDetectionEngine.
write_checkpoint` itself every ``checkpoint_every`` folded records.

**The journal is the delivered-set oracle.**  Every record that was
delivered, decodable, and valid is appended — *after* the fold
accepted it — to an ordinary flow file.  Replaying the journal through
a fresh engine must reproduce the live run's event log byte for byte;
the fault matrix proves exactly that for every datagram fault.  The
journal is fsynced before every checkpoint so the invariant
``journal records >= checkpoint records`` holds across kills, and
:func:`truncate_journal` restores equality on resume (dropping the
uncheckpointed tail that the resumed socket loop will not re-receive).

**Drain.**  A stop request (SIGTERM via the CLI's
:class:`~repro.runtime.shutdown.ShutdownCoordinator`, or a deadline)
is honoured at the next datagram boundary: the loop exits, the journal
is flushed, and :meth:`~repro.stream.processor.StreamDetectionEngine.
drain` persists the final checkpoint — the service returns
:data:`~repro.runtime.shutdown.EXIT_DRAINED` (3).  Consuming a bounded
input (``max_datagrams`` / ``idle_exit``) returns
:data:`~repro.runtime.shutdown.EXIT_COMPLETED` (0).
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import threading
import time
from dataclasses import dataclass
from typing import IO, List, Optional

from repro.collector.control import ControlPlane
from repro.collector.source import CollectorSource
from repro.netflow.flowfile import format_flow
from repro.netflow.records import FlowRecord
from repro.pipeline.metrics import StreamMetrics
from repro.runtime.shutdown import EXIT_COMPLETED, EXIT_DRAINED

__all__ = [
    "CollectorConfig",
    "CollectorService",
    "truncate_journal",
    "JOURNAL_HEADER",
]

#: Journal files are ordinary flow files; sampling is per-record
#: irrelevant to the detection tuple, so the header pins 1.
JOURNAL_HEADER = "# haystack-flows v1 sampling=1\n"

_MAX_DATAGRAM = 65535


@dataclass(frozen=True)
class CollectorConfig:
    """Tuning of one collector service run."""

    bind_host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (resolved port lands in the ready file)
    bind_port: int = 0
    control_host: str = "127.0.0.1"
    #: ``None`` disables the control plane; 0 binds ephemeral
    control_port: Optional[int] = 0
    #: drop an exporter's templates + pending after this much silence
    exporter_timeout: float = 300.0
    #: bound on buffered data-before-template sets per exporter
    pending_max_sets: int = 64
    #: seconds a pending set may wait for its template
    pending_ttl: float = 60.0
    #: sequence-reset detection window (see repro.collector.exporters)
    reset_window: int = 64
    #: SO_RCVBUF request; ``None`` keeps the OS default
    recv_buffer: Optional[int] = None
    #: exit 0 after this many seconds without a datagram; ``None`` runs
    #: until stopped
    idle_exit: Optional[float] = None
    #: exit 0 after receiving this many datagrams; ``None`` unbounded
    max_datagrams: Optional[int] = None
    #: service-owned checkpoint cadence in folded records; 0 disables
    checkpoint_every: int = 0
    #: delivered-set journal (flow file) path; ``None`` disables
    journal: Optional[pathlib.Path] = None
    #: written (atomically) after both sockets are bound:
    #: ``{"udp_port": …, "control_port": …, "pid": …}``
    ready_file: Optional[pathlib.Path] = None
    #: socket timeout — the idle/stop/expiry poll cadence
    poll_interval: float = 0.2


def truncate_journal(path: pathlib.Path, records: int) -> int:
    """Cut the journal back to its first ``records`` data lines.

    Called on resume: the checkpoint is authoritative about how many
    records the continued run starts from, and the journal must agree
    or the delivered-set oracle would claim records the resumed engine
    never folded.  Comment/header lines are preserved.  Returns the
    data lines kept.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return 0
    kept: List[str] = []
    data = 0
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                kept.append(line)
                continue
            if data < records:
                kept.append(line)
                data += 1
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="ascii") as fh:
        fh.writelines(kept)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return data


class CollectorService:
    """One bound socket feeding one streaming engine."""

    def __init__(
        self,
        engine,
        source: Optional[CollectorSource] = None,
        config: Optional[CollectorConfig] = None,
    ) -> None:
        config = config or CollectorConfig()
        if not isinstance(engine.metrics, StreamMetrics):
            raise TypeError(
                "collector needs a stream-assembly engine (its metrics "
                "document carries the 'collector' section)"
            )
        if engine.config.checkpoint_every:
            raise ValueError(
                "collector engines must be built with "
                "checkpoint_every=0; the service owns the cadence "
                "(CollectorConfig.checkpoint_every)"
            )
        if (
            config.checkpoint_every
            and engine.config.checkpoint_dir is None
        ):
            raise ValueError(
                "checkpoint_every needs an engine checkpoint_dir"
            )
        self.engine = engine
        self.config = config
        self.source = source if source is not None else CollectorSource(
            quarantine=engine.quarantine,
            pending_max_sets=config.pending_max_sets,
            pending_ttl=config.pending_ttl,
            reset_window=config.reset_window,
            exporter_timeout=config.exporter_timeout,
        )
        # surface the collector counters in the stream document
        engine.metrics.collector = self.source.metrics
        self._lock = threading.Lock()
        self._journal: Optional[IO[str]] = None
        self.udp_port: Optional[int] = None
        self.control_port: Optional[int] = None
        self.datagrams_seen = 0
        self._draining = False

    # -- control-plane snapshots (called from handler threads) ---------

    def health_snapshot(self) -> dict:
        with self._lock:
            return {
                "status": "draining" if self._draining else "ok",
                "mode": "collector",
                "udp_port": self.udp_port,
                "control_port": self.control_port,
                "datagrams_received": (
                    self.source.metrics.datagrams_received
                ),
                "records_processed": self.engine.records_processed,
                "events_emitted": self.engine.metrics.events_emitted,
                "exporters_active": (
                    self.source.metrics.exporters_active
                ),
            }

    def metrics_snapshot(self) -> dict:
        with self._lock:
            return self.engine.metrics_dict()

    def subscriber_snapshot(self, digest: str) -> dict:
        with self._lock:
            for table in self.engine._tables:
                progress = table.progress_of(digest)
                if progress is not None:
                    return {
                        "digest": digest,
                        "found": True,
                        "progress": progress.to_state(),
                    }
            return {"digest": digest, "found": False, "progress": None}

    # -- the loop ------------------------------------------------------

    def run(self) -> int:
        """Bind, serve, drain; returns the process exit code."""
        config = self.config
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        control: Optional[ControlPlane] = None
        try:
            if config.recv_buffer is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_RCVBUF,
                    config.recv_buffer,
                )
            sock.bind((config.bind_host, config.bind_port))
            sock.settimeout(config.poll_interval)
            self.udp_port = sock.getsockname()[1]
            if config.control_port is not None:
                control = ControlPlane(
                    self, config.control_host, config.control_port
                )
                control.start()
                self.control_port = control.port
            self._open_journal()
            self._write_ready_file()
            exit_code = self._serve(sock)
            with self._lock:
                self._draining = exit_code == EXIT_DRAINED
                self._drain()
            return exit_code
        finally:
            if control is not None:
                control.stop()
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            sock.close()

    def _serve(self, sock: socket.socket) -> int:
        config = self.config
        engine = self.engine
        token = engine.stop_token
        last_data = time.monotonic()
        while True:
            if token is not None and token.stop_requested():
                return EXIT_DRAINED
            try:
                payload, addr = sock.recvfrom(_MAX_DATAGRAM)
            except socket.timeout:
                now = time.monotonic()
                with self._lock:
                    self.source.expire_exporters(now)
                if (
                    config.idle_exit is not None
                    and now - last_data >= config.idle_exit
                ):
                    return EXIT_COMPLETED
                continue
            now = time.monotonic()
            last_data = now
            self.datagrams_seen += 1
            with self._lock:
                records = self.source.ingest(payload, addr, now)
                if records:
                    self._fold(records)
            if engine.stopped:
                return EXIT_DRAINED
            if (
                config.max_datagrams is not None
                and self.datagrams_seen >= config.max_datagrams
            ):
                return EXIT_COMPLETED

    def _fold(self, records: List[FlowRecord]) -> None:
        """Fold one datagram's validated records into the engine.

        Holds the service lock (caller-acquired).  Journals exactly the
        prefix the engine accepted — a guard stop mid-batch must not
        journal records that were never folded.
        """
        engine = self.engine
        tuples = [
            (
                record.first_switched,
                record.src_ip,
                record.dst_ip,
                record.protocol,
                record.dst_port,
                record.tcp_flags,
            )
            for record in records
        ]
        processed = engine.process_tuples(
            iter(tuples), start_index=engine.records_processed
        )
        if self._journal is not None and processed:
            for record in records[:processed]:
                self._journal.write(format_flow(record) + "\n")
        if (
            self.config.checkpoint_every
            and engine.metrics.records_since_checkpoint
            >= self.config.checkpoint_every
        ):
            self._flush_journal()
            engine.write_checkpoint()

    def _drain(self) -> None:
        """Journal before checkpoint, so resume truncation never loses
        a checkpointed record."""
        self._flush_journal()
        self.engine.drain()

    # -- journal -------------------------------------------------------

    def _open_journal(self) -> None:
        if self.config.journal is None:
            return
        path = pathlib.Path(self.config.journal)
        path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not path.exists() or path.stat().st_size == 0
        self._journal = open(path, "a", encoding="ascii")
        if fresh:
            self._journal.write(JOURNAL_HEADER)
            self._journal.flush()

    def _flush_journal(self) -> None:
        if self._journal is None:
            return
        self._journal.flush()
        os.fsync(self._journal.fileno())

    # -- readiness -----------------------------------------------------

    def _write_ready_file(self) -> None:
        """Atomically publish the bound ports (tests/CI poll this)."""
        if self.config.ready_file is None:
            return
        path = pathlib.Path(self.config.ready_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "udp_port": self.udp_port,
                "control_port": self.control_port,
                "pid": os.getpid(),
            },
            sort_keys=True,
        )
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(payload, encoding="ascii")
        os.replace(tmp, path)
