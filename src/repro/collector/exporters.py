"""Per-exporter collector state: template caches, sequence accounting,
and the data-before-template pending buffer.

A production collector multiplexes many exporters (border routers)
onto one socket.  Templates, options templates, sequence numbers, and
pending data sets are all *per exporter* — RFC 3954 scopes them by
(source address, source id), RFC 7011 by (source address, observation
domain).  :class:`ExporterTable` keys exactly that way and owns the
lifecycle: states appear on first datagram and are expired after
``timeout`` seconds of silence (dropping their template caches, the
way nfcapd does).

Sequence accounting answers "how much did the network lose?" without
ever *suppressing* a delivered datagram: duplicates and reordered
arrivals are counted but still decoded and folded, because the
evidence fold is min-merge idempotent (see
:class:`~repro.core.detector.SubscriberProgress`) and the
delivered-set oracle demands that detections reflect exactly what was
delivered and decodable.

Restart heuristic: an exporter reboot resets its sequence counter to
(near) zero.  A new sequence at most ``reset_window`` with an
expectation more than ``reset_window`` ahead is classified as a
``sequence_reset`` and rebaselined — *not* reported as a huge gap or
a pile of reordered datagrams.  A displacement that large is
indistinguishable from a restart on the wire; real collectors use the
same heuristic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.collector.metrics import CollectorMetrics
from repro.netflow.datagram import DatagramError, DecodedDatagram
from repro.netflow.ipfix import IpfixCodec
from repro.netflow.records import FlowRecord
from repro.netflow.v9 import NetflowV9Codec

__all__ = ["ExporterState", "ExporterTable"]

_SEQ_MASK = 0xFFFFFFFF
#: sequence numbers remembered per exporter for duplicate detection
_RECENT_SEQUENCES = 64


class ExporterState:
    """Decode context of one (address, exporter id, version) peer."""

    def __init__(
        self,
        version: int,
        metrics: CollectorMetrics,
        pending_max_sets: int = 64,
        pending_ttl: float = 60.0,
        reset_window: int = 64,
    ) -> None:
        self.version = version
        self.codec = NetflowV9Codec() if version == 9 else IpfixCodec()
        self.metrics = metrics
        self.pending_max_sets = pending_max_sets
        self.pending_ttl = pending_ttl
        self.reset_window = reset_window
        self.last_seen = 0.0
        self._next_seq: Optional[int] = None
        self._recent: Deque[int] = deque(maxlen=_RECENT_SEQUENCES)
        #: (template id) → [(arrival no, wall stamp, raw body), ...]
        self._pending: Dict[int, List[Tuple[int, float, bytes]]] = {}
        self._pending_total = 0
        self._arrival = 0

    # -- ingest --------------------------------------------------------

    def ingest(self, payload: bytes, now: float) -> List[FlowRecord]:
        """Decode one datagram in this exporter's context.

        Returns the folded-record set in delivery order: pending sets
        whose template this datagram (re-)sent first (they arrived
        earlier), then the datagram's own records.  Raises
        :class:`~repro.netflow.datagram.DatagramError` on structural
        damage — sequence/pending state is only advanced for datagrams
        that decoded.
        """
        message = self.codec.decode_message(payload)
        self.last_seen = now
        self._expire_pending(now)
        learned = (
            len(message.templates_learned)
            + len(message.options_learned)
        )
        if learned:
            self.metrics.templates_learned += learned
        flushed = self._flush_pending(message.templates_learned)
        self._buffer_pending(message, now)
        self._account_sequence(message)
        return flushed + message.flows

    # -- sequence accounting -------------------------------------------

    def _account_sequence(self, message: DecodedDatagram) -> None:
        header = message.header
        seq = header.sequence
        if header.count is not None:
            count = header.count  # v9: header says how many records
        else:
            # IPFIX sequences count *data* records; sets we had to
            # buffer have an unknown record count until their template
            # arrives, so accounting rebaselines at the next message
            # instead of guessing (and mis-reporting a gap).  Records
            # flushed from the pending buffer belong to the earlier
            # messages that carried them, never to this one.
            if message.pending:
                self._recent.append(seq)
                self._next_seq = None
                return
            count = len(message.flows)
        metrics = self.metrics
        if self._next_seq is None:
            self._next_seq = (seq + count) & _SEQ_MASK
            self._recent.append(seq)
            return
        delta = ((seq - self._next_seq + (1 << 31)) & _SEQ_MASK) - (
            1 << 31
        )
        if delta == 0:
            self._next_seq = (seq + count) & _SEQ_MASK
        elif delta > 0:
            metrics.sequence_gaps += 1
            metrics.records_missed += delta
            self._next_seq = (seq + count) & _SEQ_MASK
        elif seq in self._recent:
            metrics.duplicate_datagrams += 1
        elif seq <= self.reset_window and -delta > self.reset_window:
            metrics.sequence_resets += 1
            self._next_seq = (seq + count) & _SEQ_MASK
            self._recent.clear()
        else:
            metrics.reordered_datagrams += 1
        self._recent.append(seq)

    # -- data-before-template buffering --------------------------------

    def _buffer_pending(
        self, message: DecodedDatagram, now: float
    ) -> None:
        for set_id, body in message.pending:
            while self._pending_total >= self.pending_max_sets:
                self._drop_oldest_pending()
                self.metrics.pending_overflow_sets += 1
            self._arrival += 1
            self._pending.setdefault(set_id, []).append(
                (self._arrival, now, body)
            )
            self._pending_total += 1
            self.metrics.pending_buffered_sets += 1

    def _flush_pending(
        self, templates_learned: List[int]
    ) -> List[FlowRecord]:
        """Decode queued sets whose template just landed, in arrival
        order across templates."""
        if not templates_learned or not self._pending:
            return []
        ready: List[Tuple[int, int, bytes]] = []
        for template_id in templates_learned:
            queue = self._pending.pop(template_id, None)
            if not queue:
                continue
            self._pending_total -= len(queue)
            ready.extend(
                (arrival, template_id, body)
                for arrival, _stamp, body in queue
            )
        ready.sort()
        flows: List[FlowRecord] = []
        for _arrival, template_id, body in ready:
            try:
                decoded = self.codec.decode_data_body(template_id, body)
            except DatagramError:
                # template re-send changed the layout under the queued
                # body; drop it as expired rather than crash the loop
                self.metrics.pending_expired_sets += 1
                continue
            flows.extend(decoded)
            self.metrics.pending_flushed_sets += 1
            self.metrics.pending_flushed_records += len(decoded)
        return flows

    def _expire_pending(self, now: float) -> None:
        if not self._pending or self.pending_ttl is None:
            return
        for set_id in list(self._pending):
            queue = self._pending[set_id]
            kept = [
                item
                for item in queue
                if now - item[1] <= self.pending_ttl
            ]
            expired = len(queue) - len(kept)
            if expired:
                self.metrics.pending_expired_sets += expired
                self._pending_total -= expired
                if kept:
                    self._pending[set_id] = kept
                else:
                    del self._pending[set_id]

    def _drop_oldest_pending(self) -> None:
        oldest_set = None
        oldest = None
        for set_id, queue in self._pending.items():
            if queue and (oldest is None or queue[0][0] < oldest):
                oldest = queue[0][0]
                oldest_set = set_id
        if oldest_set is None:
            return
        queue = self._pending[oldest_set]
        queue.pop(0)
        self._pending_total -= 1
        if not queue:
            del self._pending[oldest_set]

    @property
    def pending_sets(self) -> int:
        """Sets currently buffered awaiting their template."""
        return self._pending_total


class ExporterTable:
    """All live exporter states, keyed (address, exporter id, version)."""

    def __init__(
        self,
        metrics: CollectorMetrics,
        pending_max_sets: int = 64,
        pending_ttl: float = 60.0,
        reset_window: int = 64,
        timeout: float = 300.0,
    ) -> None:
        self.metrics = metrics
        self.pending_max_sets = pending_max_sets
        self.pending_ttl = pending_ttl
        self.reset_window = reset_window
        self.timeout = timeout
        self._states: Dict[Tuple, ExporterState] = {}

    def state_for(
        self, addr, exporter_id: int, version: int
    ) -> ExporterState:
        key = (addr, exporter_id, version)
        state = self._states.get(key)
        if state is None:
            state = ExporterState(
                version,
                self.metrics,
                pending_max_sets=self.pending_max_sets,
                pending_ttl=self.pending_ttl,
                reset_window=self.reset_window,
            )
            self._states[key] = state
            self.metrics.exporters_seen += 1
            self.metrics.exporters_active = len(self._states)
        return state

    def expire(self, now: float) -> int:
        """Drop exporters silent longer than ``timeout``; count dropped.

        Expiry forgets the exporter's template caches and pending
        buffer — exactly what a restarting production collector does —
        so a returning exporter re-learns from its next template
        refresh (data-only datagrams in between are buffered again).
        """
        dead = [
            key
            for key, state in self._states.items()
            if now - state.last_seen > self.timeout
        ]
        for key in dead:
            del self._states[key]
        if dead:
            self.metrics.exporters_expired += len(dead)
            self.metrics.exporters_active = len(self._states)
        return len(dead)

    def __len__(self) -> int:
        return len(self._states)
