"""Fleet collector mode: one UDP socket feeding a worker fleet.

:class:`FleetCollectorService` reuses the collector's pure ingest
front (:class:`~repro.collector.source.CollectorSource` — templates,
decode, datagram quarantine) and the HTTP control plane, but folds
into a :class:`~repro.fleet.service.FleetService` in push mode instead
of a single in-process engine.  Two ordering rules differ from the
single-engine :class:`~repro.collector.service.CollectorService`, and
both exist because the journal doubles as the fleet's *replay source*:

**Journal ahead of admission.**  The single-engine service journals
after the fold accepted a record; here every decoded record is
journaled (and the journal flushed to the OS) *before* it is admitted
to the router.  Worker death triggers a replay that re-reads the
journal up to the router's admitted position — journal-ahead ordering
guarantees the replay can always see every admitted record.  The
journal is only fsynced at checkpoint/drain boundaries, which is
enough: replay needs read-back visibility (page cache), not crash
durability.

**Resume re-folds the journal tail.**  The single-engine service
truncates the journal back to the checkpoint on resume (the socket
will not re-receive the tail).  The fleet resume instead *replays the
whole journal* through normal admission with per-slot checkpoint
skips (:meth:`~repro.fleet.service.FleetService.start_push`), so
journaled records a crash left uncheckpointed are re-folded rather
than dropped — the only truncation is a torn final line from an
unclean stop (:func:`trim_torn_tail`).

The control plane serves the same three endpoints; ``/subscriber``
reports ``found: false`` with a note — evidence lives in the worker
processes, and the router deliberately holds no detection state.
"""

from __future__ import annotations

import os
import pathlib
import socket
import threading
import time
from typing import IO, List, Optional

from repro.collector.control import ControlPlane
from repro.collector.service import JOURNAL_HEADER, _MAX_DATAGRAM
from repro.collector.source import CollectorSource
from repro.netflow.flowfile import format_flow
from repro.netflow.records import FlowRecord
from repro.runtime.shutdown import EXIT_COMPLETED, EXIT_DRAINED

__all__ = ["FleetCollectorService", "trim_torn_tail"]


def trim_torn_tail(path: pathlib.Path) -> int:
    """Drop a torn (newline-less) final journal line; returns bytes cut.

    The journal is appended with buffered writes, so an unclean stop
    can leave a partial last line that the resume replay would reject
    as malformed.  Complete lines are never touched.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return 0
    size = path.stat().st_size
    if size == 0:
        return 0
    with open(path, "rb+") as fh:
        fh.seek(-1, os.SEEK_END)
        if fh.read(1) == b"\n":
            return 0
        fh.seek(0)
        data = fh.read()
        keep = data.rfind(b"\n") + 1
        fh.truncate(keep)
    return size - keep


class FleetCollectorService:
    """One bound socket routing into N supervised fleet workers."""

    def __init__(
        self,
        fleet,
        config,
        events_out,
        source: Optional[CollectorSource] = None,
    ) -> None:
        if config.journal is None:
            raise ValueError(
                "fleet collector mode needs a journal — it is the "
                "replay source for worker rebalance and resume"
            )
        self.fleet = fleet
        self.config = config
        self.events_out = pathlib.Path(events_out)
        self.source = source if source is not None else CollectorSource(
            pending_max_sets=config.pending_max_sets,
            pending_ttl=config.pending_ttl,
            reset_window=config.reset_window,
            exporter_timeout=config.exporter_timeout,
        )
        self._lock = threading.Lock()
        self._journal: Optional[IO[str]] = None
        self._last_checkpoint = 0
        self.udp_port: Optional[int] = None
        self.control_port: Optional[int] = None
        self.datagrams_seen = 0
        self._draining = False

    # -- control-plane snapshots (called from handler threads) ---------

    @property
    def records_admitted(self) -> int:
        metrics = self.fleet.metrics
        return metrics.records_routed + metrics.records_skipped

    def health_snapshot(self) -> dict:
        with self._lock:
            fleet = self.fleet.metrics
            return {
                "status": "draining" if self._draining else "ok",
                "mode": "fleet-collector",
                "udp_port": self.udp_port,
                "control_port": self.control_port,
                "datagrams_received": (
                    self.source.metrics.datagrams_received
                ),
                "records_processed": self.records_admitted,
                "events_emitted": sum(
                    stats.events_emitted
                    for stats in fleet.worker_stats.values()
                ),
                "exporters_active": (
                    self.source.metrics.exporters_active
                ),
                "workers": fleet.workers,
                "ring_epoch": fleet.ring_epoch,
                "restarts": fleet.restarts,
                "rebalances": fleet.rebalances,
            }

    def metrics_snapshot(self) -> dict:
        with self._lock:
            metrics = self.fleet.stream_metrics()
            metrics.collector = self.source.metrics
            return metrics.to_dict()

    def subscriber_snapshot(self, digest: str) -> dict:
        # Evidence lives in the worker processes; the router holds no
        # detection state by design (that is what makes it restartable
        # from the ring + journal alone).
        return {
            "digest": digest,
            "found": False,
            "progress": None,
            "note": "per-subscriber progress is worker-local in "
            "fleet mode",
        }

    # -- the loop ------------------------------------------------------

    def run(self, resume: bool = False) -> int:
        """Bind, serve, drain the fleet, merge; returns exit code."""
        config = self.config
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        control: Optional[ControlPlane] = None
        started = False
        try:
            if config.recv_buffer is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_RCVBUF,
                    config.recv_buffer,
                )
            sock.bind((config.bind_host, config.bind_port))
            sock.settimeout(config.poll_interval)
            self.udp_port = sock.getsockname()[1]
            if config.control_port is not None:
                control = ControlPlane(
                    self, config.control_host, config.control_port
                )
                control.start()
                self.control_port = control.port
            if resume:
                trim_torn_tail(config.journal)
            self.fleet.start_push(config.journal, resume=resume)
            started = True
            self._last_checkpoint = self.records_admitted
            self._open_journal()
            self._write_ready_file()
            stopped = self._serve(sock)
            with self._lock:
                self._draining = stopped
            self._flush_journal(sync=True)
            return self.fleet.finish_push(self.events_out, stopped)
        except BaseException:
            if started:
                self.fleet._kill_all()
            raise
        finally:
            if control is not None:
                control.stop()
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            sock.close()

    def _serve(self, sock: socket.socket) -> bool:
        """Socket loop; returns True when drained by a stop request."""
        config = self.config
        token = self.fleet.stop_token
        last_data = time.monotonic()
        while True:
            if token is not None and token.stop_requested():
                return True
            try:
                payload, addr = sock.recvfrom(_MAX_DATAGRAM)
            except socket.timeout:
                now = time.monotonic()
                with self._lock:
                    self.source.expire_exporters(now)
                    # don't let sub-batches sit while the socket idles
                    self.fleet.flush_partials()
                if (
                    config.idle_exit is not None
                    and now - last_data >= config.idle_exit
                ):
                    return False
                continue
            now = time.monotonic()
            last_data = now
            self.datagrams_seen += 1
            with self._lock:
                records = self.source.ingest(payload, addr, now)
                if records:
                    self._fold(records)
            if (
                config.max_datagrams is not None
                and self.datagrams_seen >= config.max_datagrams
            ):
                return False

    def _fold(self, records: List[FlowRecord]) -> None:
        """Journal one datagram's records, then admit them.

        Holds the service lock (caller-acquired).  The flush makes the
        lines visible to a concurrent death replay before any worker
        can have received them.
        """
        assert self._journal is not None
        for record in records:
            self._journal.write(format_flow(record) + "\n")
        self._journal.flush()
        self.fleet.admit_tuples(
            (
                record.first_switched,
                record.src_ip,
                record.dst_ip,
                record.protocol,
                record.dst_port,
                record.tcp_flags,
            )
            for record in records
        )
        if (
            self.config.checkpoint_every
            and self.records_admitted - self._last_checkpoint
            >= self.config.checkpoint_every
        ):
            self._flush_journal(sync=True)
            self.fleet.broadcast_checkpoint()
            self._last_checkpoint = self.records_admitted

    # -- journal -------------------------------------------------------

    def _open_journal(self) -> None:
        path = pathlib.Path(self.config.journal)
        path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not path.exists() or path.stat().st_size == 0
        self._journal = open(path, "a", encoding="ascii")
        if fresh:
            self._journal.write(JOURNAL_HEADER)
            self._journal.flush()

    def _flush_journal(self, sync: bool = False) -> None:
        if self._journal is None:
            return
        self._journal.flush()
        if sync:
            os.fsync(self._journal.fileno())

    # -- readiness -----------------------------------------------------

    def _write_ready_file(self) -> None:
        """Atomically publish the bound ports (tests/CI poll this)."""
        if self.config.ready_file is None:
            return
        import json

        path = pathlib.Path(self.config.ready_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "udp_port": self.udp_port,
                "control_port": self.control_port,
                "pid": os.getpid(),
            },
            sort_keys=True,
        )
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(payload, encoding="ascii")
        os.replace(tmp, path)
