"""IXP substrate: member ASes (eyeball vs non-eyeball), the switching
fabric with IPFIX sampling, routing asymmetry, and the anti-spoofing
filter of Section 6.3.

Flow-level detection at the fabric is a :mod:`repro.pipeline`
assembly — :func:`~repro.ixp.detect.detect_fabric_flows` keys by
source address and keeps the anti-spoofing Validate stage on."""

from repro.ixp.detect import IxpDetectionResult, detect_fabric_flows
from repro.ixp.members import IxpMember, build_members
from repro.ixp.fabric import (
    IxpConfig,
    IxpFabricTap,
    IxpResult,
    run_wild_ixp,
    make_spoofed_flows,
)

__all__ = [
    "IxpDetectionResult",
    "detect_fabric_flows",
    "IxpMember",
    "build_members",
    "IxpConfig",
    "IxpFabricTap",
    "IxpResult",
    "run_wild_ixp",
    "make_spoofed_flows",
]
