"""IXP substrate: member ASes (eyeball vs non-eyeball), the switching
fabric with IPFIX sampling, routing asymmetry, and the anti-spoofing
filter of Section 6.3."""

from repro.ixp.members import IxpMember, build_members
from repro.ixp.fabric import (
    IxpConfig,
    IxpFabricTap,
    IxpResult,
    run_wild_ixp,
    make_spoofed_flows,
)

__all__ = [
    "IxpMember",
    "build_members",
    "IxpConfig",
    "IxpFabricTap",
    "IxpResult",
    "run_wild_ixp",
    "make_spoofed_flows",
]
