"""IXP membership.

The paper's IXP has over 800 member ASes, but only a few are large
eyeball (residential access) networks — most members are content,
cloud, and transit networks that originate almost no consumer IoT
traffic.  That skew is what Figure 16 measures.  Member sizes follow a
Zipf-like law; each eyeball member carries a population of subscriber
addresses that can host IoT devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.cloud.addressing import (
    AddressAllocator,
    ASRegistry,
    AutonomousSystem,
    Prefix,
)

__all__ = ["IxpMember", "build_members"]


@dataclass(frozen=True)
class IxpMember:
    """One IXP member AS."""

    autonomous_system: AutonomousSystem
    kind: str  # "eyeball" | "content" | "cloud" | "transit"
    #: addresses behind this member that could host consumer IoT
    iot_population: int

    @property
    def asn(self) -> int:
        return self.autonomous_system.asn

    @property
    def name(self) -> str:
        return self.autonomous_system.name

    @property
    def is_eyeball(self) -> bool:
        return self.kind == "eyeball"


def build_members(
    allocator: AddressAllocator,
    registry: ASRegistry,
    count: int = 120,
    large_eyeballs: int = 8,
    small_eyeballs: int = 32,
    population_scale: float = 1.0,
    seed: int = 23,
    base_asn: int = 65000,
) -> List[IxpMember]:
    """Create the member list.

    ``population_scale`` scales every member's IoT-capable population so
    experiments run at laptop scale (1.0 ≈ a few hundred thousand
    addresses across all eyeballs).
    """
    if large_eyeballs + small_eyeballs > count:
        raise ValueError("more eyeballs than members")
    rng = np.random.default_rng(seed)
    members: List[IxpMember] = []
    kinds_pool = ["content", "cloud", "transit"]
    for index in range(count):
        if index < large_eyeballs:
            kind = "eyeball"
            population = int(
                (80_000 / (index + 1) ** 0.7)
                * population_scale
                * (0.8 + 0.4 * rng.random())
            )
        elif index < large_eyeballs + small_eyeballs:
            kind = "eyeball"
            population = int(
                (1_500 / (index - large_eyeballs + 1) ** 0.9)
                * population_scale
                * (0.6 + 0.8 * rng.random())
            )
        else:
            kind = kinds_pool[index % len(kinds_pool)]
            # Non-eyeballs still leak a trickle of IoT traffic (devices
            # in offices, VPN egress, mobile gateways) — the long tail
            # of Figure 16.
            population = int(30 * population_scale * rng.random())
        autonomous_system = AutonomousSystem(
            base_asn + index, f"member{index:03d}", kind
        )
        prefix_length = 16 if population > 10_000 else 20
        prefix = allocator.allocate(prefix_length)
        autonomous_system.announce(prefix)
        registry.register(autonomous_system)
        members.append(
            IxpMember(
                autonomous_system=autonomous_system,
                kind=kind,
                iot_population=max(0, population),
            )
        )
    return members
