"""The IXP switching fabric — Section 6.3.

Differences from the ISP vantage point, all modelled here:

* the IPFIX sampling rate is an order of magnitude lower;
* the vantage point sits in the middle of the network: routing
  asymmetry means only a fraction of each flow's packets transit the
  fabric (``routing_visibility``);
* spoofing prevention is not possible at the fabric, so TCP flows only
  count once a packet shows evidence of an established connection
  (:func:`repro.netflow.records.FlowRecord.has_established_evidence`).

Detection is per *IP address* per day (the IXP cannot tell subscriber
lines apart), with each member's IoT population partitioned across the
detection classes by penetration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.detection_model import estimate_detection_probabilities
from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet
from repro.ixp.members import IxpMember
from repro.netflow.records import (
    PROTO_TCP,
    TCP_ACK,
    TCP_SYN,
    FlowKey,
    FlowRecord,
)
from repro.scenario import Scenario
from repro.timeutil import STUDY_START

__all__ = [
    "IxpConfig",
    "IxpResult",
    "IxpFabricTap",
    "run_wild_ixp",
    "make_spoofed_flows",
]


@dataclass
class IxpConfig:
    """Parameters of the in-the-wild IXP run."""

    sampling_interval: int = 1000  # order of magnitude below the ISP
    days: int = 14
    threshold: float = 0.4
    routing_visibility: float = 0.55  # asymmetry / partial routes
    seed: int = 77
    monte_carlo_samples: int = 2000
    #: fraction of each member's population emitting spoofed-SYN noise
    spoofed_fraction: float = 0.15
    require_established: bool = True
    #: fold fabric flows through the vectorized columnar path
    columnar: bool = False
    #: rows per decoded column chunk on the columnar path
    chunk_size: int = 65536


@dataclass
class IxpResult:
    """Per-day detected-IP counts and per-member distribution."""

    config: IxpConfig
    #: group -> per-day unique detected IPs ("Alexa Enabled",
    #: "Samsung IoT", "Other 32 IoT Device types")
    daily_ip_counts: Dict[str, np.ndarray]
    #: group -> {asn: detected IPs on day 0} (Figure 16)
    per_member_day0: Dict[str, Dict[int, int]]
    #: spoofed candidate IPs suppressed by the established filter
    spoofed_suppressed: int
    #: spoofed IPs that would have been (wrongly) counted without it
    spoofed_would_count: int

    def member_share_ecdf(self, group: str) -> List[float]:
        """Per-member percentage shares of unique IPs (Figure 16)."""
        counts = self.per_member_day0[group]
        total = sum(counts.values())
        if total == 0:
            return []
        return sorted(
            100.0 * count / total for count in counts.values() if count
        )


_GROUP_ALEXA = "Alexa Enabled"
_GROUP_SAMSUNG = "Samsung IoT"
_GROUP_OTHER = "Other 32 IoT Device types"


def _group_of(class_name: str) -> Optional[str]:
    if class_name in ("Alexa Enabled",):
        return _GROUP_ALEXA
    if class_name in ("Samsung IoT",):
        return _GROUP_SAMSUNG
    if class_name in (
        "Amazon Product", "Fire TV", "Samsung TV",
    ):
        return None  # subclasses are folded into their superclass group
    return _GROUP_OTHER


def run_wild_ixp(
    scenario: Scenario,
    rules: RuleSet,
    hitlist: Hitlist,
    members: Sequence[IxpMember],
    config: Optional[IxpConfig] = None,
) -> IxpResult:
    """Run the in-the-wild IXP detection study."""
    config = config or IxpConfig()
    rng = np.random.default_rng(config.seed)
    catalog = scenario.catalog

    # Daily detection probability per class at IXP sampling/visibility.
    class_probabilities: Dict[str, float] = {}
    for rule in rules:
        probabilities = estimate_detection_probabilities(
            scenario,
            rules,
            rule.class_name,
            sampling_interval=config.sampling_interval,
            visibility=config.routing_visibility,
            threshold=config.threshold,
            samples=config.monte_carlo_samples,
            seed=config.seed
            + sum(ord(ch) for ch in rule.class_name) % 1000,
        )
        class_probabilities[rule.class_name] = probabilities.daily

    groups = (_GROUP_ALEXA, _GROUP_SAMSUNG, _GROUP_OTHER)
    daily_ip_counts = {
        group: np.zeros(config.days, dtype=np.int64) for group in groups
    }
    per_member_day0 = {group: {} for group in groups}

    for member in members:
        # Partition the member's IoT population across classes by
        # penetration (each address hosts at most one class here).
        for rule in rules:
            group = _group_of(rule.class_name)
            if group is None:
                continue
            spec = catalog.detection_class(rule.class_name)
            hosts = int(round(member.iot_population * spec.penetration))
            if hosts == 0:
                per_member_day0[group].setdefault(member.asn, 0)
                continue
            p_day = class_probabilities[rule.class_name]
            detected = rng.binomial(hosts, p_day, size=config.days)
            daily_ip_counts[group] += detected
            per_member_day0[group][member.asn] = per_member_day0[
                group
            ].get(member.asn, 0) + int(detected[0])

    # Spoofed-traffic accounting: SYN-only flows towards hitlist
    # addresses would create phantom IoT hosts at single-domain classes;
    # the established-evidence filter drops them all.
    spoofed_candidates = int(
        sum(member.iot_population for member in members)
        * config.spoofed_fraction
    )
    if config.require_established:
        suppressed = spoofed_candidates
        would_count = 0
    else:
        suppressed = 0
        would_count = spoofed_candidates
        daily_ip_counts[_GROUP_OTHER] = (
            daily_ip_counts[_GROUP_OTHER] + spoofed_candidates
        )

    return IxpResult(
        config=config,
        daily_ip_counts=daily_ip_counts,
        per_member_day0=per_member_day0,
        spoofed_suppressed=suppressed,
        spoofed_would_count=would_count,
    )


def make_spoofed_flows(
    hitlist: Hitlist,
    count: int,
    seed: int = 5,
    day: int = 0,
) -> List[FlowRecord]:
    """Generate SYN-only spoofed flows towards hitlist endpoints.

    Used by tests and the anti-spoofing example: every record targets a
    real monitored (address, port) but carries only a SYN flag, so the
    established-evidence filter must reject all of them.
    """
    endpoints = sorted(hitlist.endpoints_for_day(day))
    if not endpoints:
        raise ValueError(f"hitlist has no endpoints for day {day}")
    rng = np.random.default_rng(seed)
    flows: List[FlowRecord] = []
    for index in range(count):
        address, port = endpoints[int(rng.integers(0, len(endpoints)))]
        flows.append(
            FlowRecord(
                key=FlowKey(
                    src_ip=int(rng.integers(1 << 24, 1 << 31)),
                    dst_ip=address,
                    protocol=PROTO_TCP,
                    src_port=int(rng.integers(1024, 65535)),
                    dst_port=port,
                ),
                first_switched=STUDY_START + day * 86400 + index,
                last_switched=STUDY_START + day * 86400 + index,
                packets=1,
                bytes=40,
                tcp_flags=TCP_SYN,
            )
        )
    return flows


class IxpFabricTap:
    """Flow-level capture at one member's IXP port.

    Complements the statistical :func:`run_wild_ixp`: real IPFIX
    records from one member's port, with the fabric's low sampling
    rate and routing asymmetry applied per packet.  Used by tests and
    demos that need actual flow records rather than aggregate counts.
    """

    def __init__(
        self,
        member: IxpMember,
        sampling_interval: int = 1000,
        routing_visibility: float = 0.55,
        seed: int = 3,
    ) -> None:
        from repro.netflow.collector import FlowCollector
        from repro.netflow.sampler import PacketSampler

        if not 0.0 < routing_visibility <= 1.0:
            raise ValueError(
                f"routing visibility must be in (0, 1]: "
                f"{routing_visibility}"
            )
        self.member = member
        self.routing_visibility = routing_visibility
        self._sampler = PacketSampler(
            sampling_interval, mode="random", seed=seed
        )
        self._collector = FlowCollector(
            sampling_interval=sampling_interval
        )
        import random

        self._route_rng = random.Random(seed * 31 + 7)
        self._routed_flows: dict = {}
        self.packets_seen = 0
        self.packets_bypassed = 0

    def _flow_transits_fabric(self, packet) -> bool:
        """Routing asymmetry: a flow either transits this fabric or
        takes a private interconnect — decided per 5-tuple, sticky."""
        key = (
            packet.src_ip, packet.dst_ip, packet.protocol,
            packet.src_port, packet.dst_port,
        )
        decision = self._routed_flows.get(key)
        if decision is None:
            decision = (
                self._route_rng.random() < self.routing_visibility
            )
            self._routed_flows[key] = decision
        return decision

    def observe(self, packet) -> bool:
        """One member-port packet; returns True if it was sampled."""
        self.packets_seen += 1
        if not self._flow_transits_fabric(packet):
            self.packets_bypassed += 1
            return False
        if not self._sampler.sample(packet):
            return False
        self._collector.observe(packet)
        return True

    def export(self):
        """Flush and return the exported flow records."""
        self._collector.flush()
        return self._collector.drain()
