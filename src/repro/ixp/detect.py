"""Flow-level IXP detection — the fabric's pipeline assembly.

The statistical :func:`~repro.ixp.fabric.run_wild_ixp` answers the
Section 6 questions at population scale; this module is its flow-level
counterpart for *actual* IPFIX records captured at the fabric (e.g.
through an :class:`~repro.ixp.fabric.IxpFabricTap`).  It assembles the
shared staged pipeline (:mod:`repro.pipeline`) with the two choices
that make the vantage point an IXP rather than an ISP:

* **keying by address** (:class:`~repro.pipeline.flow.AddressKeying`):
  the fabric cannot tell subscriber lines apart, so detection is per
  source IP;
* **anti-spoofing on by default**: spoofing prevention is impossible at
  the fabric, so the Validate stage drops TCP flows without
  established-connection evidence (``require_established``), exactly
  the filter :func:`~repro.ixp.fabric.make_spoofed_flows` exists to
  exercise.

Everything else — the fused hot loop, guard polling, metrics document —
is the same code the ISP batch and stream paths run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.detector import Detection
from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet
from repro.ixp.fabric import IxpConfig
from repro.netflow.parse import chunks_from_records
from repro.netflow.records import FlowRecord
from repro.pipeline.columnar import ColumnarFlowPipeline
from repro.pipeline.core import GuardSet
from repro.pipeline.flow import AddressKeying, BatchDetectStage, FlowPipeline
from repro.pipeline.metrics import StreamMetrics

__all__ = ["IxpDetectionResult", "detect_fabric_flows"]


@dataclass
class IxpDetectionResult:
    """Per-address detections from one batch of fabric flows."""

    #: earliest detection per (address, class), batch semantics
    detections: List[Detection]
    #: the ``repro.engine.metrics/1``-family document of the run
    metrics: StreamMetrics

    @property
    def detected_addresses(self) -> List[str]:
        """Unique detected source addresses (dotted quads), sorted."""
        return sorted({d.subscriber for d in self.detections})

    @property
    def flows_rejected_spoof(self) -> int:
        """TCP flows dropped by the established-evidence filter."""
        return self.metrics.flows_rejected_spoof


def detect_fabric_flows(
    rules: RuleSet,
    hitlist: Hitlist,
    flows: Iterable[FlowRecord],
    config: Optional[IxpConfig] = None,
    guards: Optional[GuardSet] = None,
) -> IxpDetectionResult:
    """Run per-address detection over exported fabric flows.

    ``config`` supplies the threshold and the anti-spoofing switch
    (:class:`~repro.ixp.fabric.IxpConfig` defaults keep
    ``require_established`` on) plus the ``columnar`` toggle, which
    folds the same flows through the vectorized chunk path with
    identical output.  Guards are optional; a guarded stop leaves the
    result partial, with the reason recorded in the metrics overload
    section like every other assembly.
    """
    config = config or IxpConfig()
    keying = AddressKeying()
    stage = BatchDetectStage(
        rules,
        hitlist,
        keying,
        threshold=config.threshold,
        require_established=config.require_established,
        metrics=StreamMetrics(threshold=config.threshold),
    )
    if config.columnar:
        ColumnarFlowPipeline(stage, guards=guards).run_chunks(
            chunks_from_records(flows, config.chunk_size)
        )
    else:
        pipeline = FlowPipeline(stage, guards=guards)
        pipeline.run_records(enumerate(flows))
    return IxpDetectionResult(
        detections=stage.detections(), metrics=stage.metrics
    )
