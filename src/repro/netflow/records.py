"""Packet and flow record types.

A :class:`PacketRecord` is what a monitoring tap sees on the wire (header
fields only — the simulation never materialises payload, matching the
paper's NetFlow/IPFIX data).  A :class:`FlowRecord` is the aggregate the
collector exports for one sampled 5-tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple

__all__ = [
    "PROTO_TCP",
    "PROTO_UDP",
    "TCP_SYN",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_RST",
    "WEB_PORTS",
    "NTP_PORT",
    "DNS_PORT",
    "SERVER_PORTS",
    "classify_port",
    "PacketRecord",
    "FlowKey",
    "FlowRecord",
]

PROTO_TCP = 6
PROTO_UDP = 17

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_ACK = 0x10

#: Ports the paper groups as "Web Services" (Section 3, Figure 5(c)).
WEB_PORTS: FrozenSet[int] = frozenset({80, 443, 8080})
NTP_PORT = 123
DNS_PORT = 53

#: Well-known server ports used by the ethics-driven heuristic that
#: separates server IPs from user IPs (Section 2.1).
SERVER_PORTS: FrozenSet[int] = frozenset(
    {80, 443, 8080, 123, 53, 8443, 853, 993, 5223, 8883, 1883}
)


def classify_port(port: int) -> str:
    """Bucket a destination port the way Figure 5(c) does."""
    if port in WEB_PORTS:
        return "web"
    if port == NTP_PORT:
        return "ntp"
    return "other"


@dataclass(frozen=True)
class PacketRecord:
    """One packet header as seen at a capture point."""

    timestamp: int
    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int
    dst_port: int
    size: int = 120
    tcp_flags: int = 0

    def reversed(self) -> "PacketRecord":
        """The same packet with endpoints swapped (response direction)."""
        return replace(
            self,
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )


@dataclass(frozen=True)
class FlowKey:
    """The 5-tuple that identifies a unidirectional flow."""

    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int
    dst_port: int

    @classmethod
    def of(cls, packet: PacketRecord) -> "FlowKey":
        return cls(
            packet.src_ip,
            packet.dst_ip,
            packet.protocol,
            packet.src_port,
            packet.dst_port,
        )


@dataclass
class FlowRecord:
    """One exported (sampled) flow.

    ``packets``/``bytes`` count *sampled* packets; multiply by the
    sampling rate's inverse to estimate wire totals.  ``tcp_flags`` is
    the OR of the flags of all sampled packets, which is what the IXP
    anti-spoofing filter inspects (it requires evidence of an
    established connection — an ACK-only packet — before trusting a
    TCP flow).
    """

    key: FlowKey
    first_switched: int
    last_switched: int
    packets: int
    bytes: int
    tcp_flags: int = 0
    sampling_interval: int = 1

    @property
    def src_ip(self) -> int:
        return self.key.src_ip

    @property
    def dst_ip(self) -> int:
        return self.key.dst_ip

    @property
    def protocol(self) -> int:
        return self.key.protocol

    @property
    def src_port(self) -> int:
        return self.key.src_port

    @property
    def dst_port(self) -> int:
        return self.key.dst_port

    @property
    def estimated_packets(self) -> int:
        """Wire-packet estimate under the configured sampling."""
        return self.packets * self.sampling_interval

    @property
    def estimated_bytes(self) -> int:
        return self.bytes * self.sampling_interval

    def has_established_evidence(self) -> bool:
        """True when at least one sampled packet carries no SYN/FIN/RST
        (i.e. a mid-connection packet), the paper's IXP spoofing filter.
        UDP flows carry no flags and pass by definition of the filter
        only when the caller chooses to accept UDP."""
        if self.protocol != PROTO_TCP:
            return False
        return bool(self.tcp_flags & TCP_ACK) and not bool(
            self.tcp_flags & TCP_SYN
        )

    def merge(self, other: "FlowRecord") -> None:
        """Fold another record for the same key into this one."""
        if other.key != self.key:
            raise ValueError("cannot merge flows with different keys")
        self.first_switched = min(self.first_switched, other.first_switched)
        self.last_switched = max(self.last_switched, other.last_switched)
        self.packets += other.packets
        self.bytes += other.bytes
        self.tcp_flags |= other.tcp_flags
