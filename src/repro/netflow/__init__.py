"""Flow-measurement substrate: packet and flow records, packet sampling,
a flow cache (collector), and binary NetFlow v9 / IPFIX codecs."""

from repro.netflow.records import (
    FlowKey,
    FlowRecord,
    PacketRecord,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    WEB_PORTS,
    NTP_PORT,
    classify_port,
)
from repro.netflow.sampler import PacketSampler, sample_packet_counts
from repro.netflow.collector import FlowCollector
from repro.netflow.v9 import NetflowV9Codec
from repro.netflow.flowfile import (
    read_flow_file,
    write_flow_file,
)
from repro.netflow.ipfix import IpfixCodec
from repro.netflow.replay import FlowReplaySource, iter_flow_tuples

__all__ = [
    "FlowKey",
    "FlowRecord",
    "PacketRecord",
    "PROTO_TCP",
    "PROTO_UDP",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_RST",
    "TCP_SYN",
    "WEB_PORTS",
    "NTP_PORT",
    "classify_port",
    "PacketSampler",
    "sample_packet_counts",
    "FlowCollector",
    "NetflowV9Codec",
    "read_flow_file",
    "write_flow_file",
    "IpfixCodec",
    "FlowReplaySource",
    "iter_flow_tuples",
]
