"""Flow-measurement substrate: packet and flow records, packet sampling,
a flow cache (collector), binary NetFlow v9 / IPFIX codecs, and the
memoised CSV line parser shared by the record and tuple read paths."""

from repro.netflow.parse import (
    FLOW_FILE_COLUMNS,
    FlowLineParser,
    FlowTuple,
    SHARED_PARSER,
)
from repro.netflow.records import (
    FlowKey,
    FlowRecord,
    PacketRecord,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    WEB_PORTS,
    NTP_PORT,
    classify_port,
)
from repro.netflow.sampler import PacketSampler, sample_packet_counts
from repro.netflow.collector import FlowCollector
from repro.netflow.datagram import (
    DatagramError,
    DatagramHeader,
    DecodedDatagram,
    peek_header,
)
from repro.netflow.v9 import NetflowV9Codec
from repro.netflow.flowfile import (
    parse_flow_line,
    read_flow_file,
    write_flow_file,
)
from repro.netflow.ipfix import IpfixCodec
from repro.netflow.replay import FlowReplaySource, iter_flow_tuples

__all__ = [
    "FLOW_FILE_COLUMNS",
    "FlowLineParser",
    "FlowTuple",
    "SHARED_PARSER",
    "parse_flow_line",
    "FlowKey",
    "FlowRecord",
    "PacketRecord",
    "PROTO_TCP",
    "PROTO_UDP",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_RST",
    "TCP_SYN",
    "WEB_PORTS",
    "NTP_PORT",
    "classify_port",
    "PacketSampler",
    "sample_packet_counts",
    "FlowCollector",
    "DatagramError",
    "DatagramHeader",
    "DecodedDatagram",
    "peek_header",
    "NetflowV9Codec",
    "read_flow_file",
    "write_flow_file",
    "IpfixCodec",
    "FlowReplaySource",
    "iter_flow_tuples",
]
