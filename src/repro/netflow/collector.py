"""Flow cache / collector.

Models the router-side flow cache: sampled packets are aggregated per
5-tuple; a flow record is expired (exported) when it has been idle for
``inactive_timeout`` seconds, has been open for ``active_timeout``
seconds, or the cache is flushed.  The exported records are what the
ISP-VP and IXP-VP analyses consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.netflow.records import FlowKey, FlowRecord, PacketRecord

__all__ = ["FlowCollector"]


class FlowCollector:
    """Aggregates sampled packets into exported flow records."""

    def __init__(
        self,
        sampling_interval: int = 1,
        active_timeout: int = 120,
        inactive_timeout: int = 15,
    ) -> None:
        if active_timeout <= 0 or inactive_timeout <= 0:
            raise ValueError("timeouts must be positive")
        self.sampling_interval = sampling_interval
        self.active_timeout = active_timeout
        self.inactive_timeout = inactive_timeout
        self._cache: Dict[FlowKey, FlowRecord] = {}
        self._exported: List[FlowRecord] = []
        self._last_expiry_scan: Optional[int] = None

    def observe(self, packet: PacketRecord) -> None:
        """Fold one *already sampled* packet into the cache."""
        self._expire(packet.timestamp)
        key = FlowKey.of(packet)
        record = self._cache.get(key)
        if record is None:
            self._cache[key] = FlowRecord(
                key=key,
                first_switched=packet.timestamp,
                last_switched=packet.timestamp,
                packets=1,
                bytes=packet.size,
                tcp_flags=packet.tcp_flags,
                sampling_interval=self.sampling_interval,
            )
            return
        record.last_switched = packet.timestamp
        record.packets += 1
        record.bytes += packet.size
        record.tcp_flags |= packet.tcp_flags

    def observe_all(self, packets: Iterable[PacketRecord]) -> None:
        for packet in packets:
            self.observe(packet)

    def _expire(self, now: int) -> None:
        """Export cache entries that have timed out by ``now``.

        Scans at most once per second of simulated time so per-packet
        observation stays O(1) amortised.
        """
        if (
            self._last_expiry_scan is not None
            and now <= self._last_expiry_scan
        ):
            return
        self._last_expiry_scan = now
        expired = [
            key
            for key, record in self._cache.items()
            if now - record.last_switched > self.inactive_timeout
            or now - record.first_switched > self.active_timeout
        ]
        for key in expired:
            self._exported.append(self._cache.pop(key))

    def flush(self, now: Optional[int] = None) -> None:
        """Export everything still cached (end of capture)."""
        if now is not None:
            self._expire(now)
        self._exported.extend(self._cache.values())
        self._cache.clear()

    def drain(self) -> List[FlowRecord]:
        """Return and clear the exported records."""
        exported, self._exported = self._exported, []
        return exported

    @property
    def cached_flows(self) -> int:
        return len(self._cache)

    @property
    def exported_flows(self) -> int:
        return len(self._exported)
