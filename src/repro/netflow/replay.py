"""Replay sources: feed recorded flows to the streaming detector.

A :class:`FlowReplaySource` adapts any batch-producing flow source — a
flow file, a stream of binary NetFlow v9 / IPFIX export packets — into
the ordered, indexed, *backpressure-aware* record iterator the
:mod:`repro.stream` engine consumes:

* **ordered + indexed**: records carry a global stream index, the
  coordinate system checkpoints are expressed in (``skip`` fast-forwards
  to a checkpointed index on resume);
* **backpressure-aware**: the source is pull-based and holds at most
  one producer batch; a producer batch larger than ``max_pending`` is a
  contract violation and raises instead of buffering unboundedly.  The
  observed ``high_watermark`` is exported through the stream metrics.
* **shed-capable**: under declared overload a source can *drop* instead
  of raising — ``overflow_policy`` bounds ingest by shedding the
  overflowing part of an oversized batch, and an attached
  :class:`~repro.runtime.deadline.DeadlineBudget` sheds everything past
  expiry.  Every dropped record is counted per reason in ``drops``
  (surfaced as ``overload.ingest_dropped`` in the stream metrics) —
  shedding is visible, never silent.  Dropped records are gone from the
  stream's index space, so a shedding run is marked ``degraded`` and
  is not bit-identical to an unshedded one by design.

:func:`iter_flow_tuples` is the hot-path variant for flow files: it
parses only the columns detection consumes and skips
:class:`~repro.netflow.records.FlowRecord` object construction
entirely, which is what lets the streaming engine beat the batch
path's per-record throughput.
"""

from __future__ import annotations

import pathlib
import struct
from collections import deque
from typing import (
    IO,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.netflow.flowfile import FLOW_FILE_COLUMNS, read_flow_file
from repro.netflow.parse import SHARED_PARSER, FlowLineParser, FlowTuple
from repro.netflow.records import FlowRecord
from repro.resilience.quarantine import (
    QuarantineSink,
    validate_flow_record,
    validate_flow_tuple,
)

__all__ = [
    "FlowReplaySource",
    "ReplayTruncated",
    "iter_flow_tuples",
    "FlowTuple",
]

#: Flow-file records pulled per batch by :meth:`from_flowfile`.
_FILE_CHUNK = 256

#: Valid ``overflow_policy`` values: raise on an oversized producer
#: batch (historical contract), or shed its newest/oldest records.
OVERFLOW_POLICIES = ("raise", "drop_newest", "drop_oldest")


class ReplayTruncated(RuntimeError):
    """The flow source ended mid-record.

    Raised when the producer dies partway through a record — a flow
    file truncated by a concurrent writer, or a binary export packet
    cut short on the wire (which the codecs surface as a bare
    ``struct.error``).  Sources constructed with a
    :class:`~repro.resilience.quarantine.QuarantineSink` feed the event
    there and end the stream cleanly instead of raising.
    """


class FlowReplaySource:
    """Bounded-buffer iterator of ``(index, FlowRecord)`` pairs.

    With a ``quarantine`` sink attached, impossible records are
    counted/sampled and skipped, and a truncated producer ends the
    stream after accounting instead of raising
    :class:`ReplayTruncated`.
    """

    def __init__(
        self,
        batches: Iterable[List[FlowRecord]],
        start_index: int = 0,
        max_pending: int = 8192,
        quarantine: Optional[QuarantineSink] = None,
        overflow_policy: str = "raise",
        deadline=None,
    ) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow_policy {overflow_policy!r}; "
                f"expected one of {OVERFLOW_POLICIES}"
            )
        self._batches = iter(batches)
        self._pending: Deque[FlowRecord] = deque()
        self.next_index = start_index
        self.max_pending = max_pending
        self.quarantine = quarantine
        self.overflow_policy = overflow_policy
        #: optional :class:`~repro.runtime.deadline.DeadlineBudget`;
        #: once expired the source sheds everything still unread
        self.deadline = deadline
        #: per-reason shed counters (the ``ingest_dropped`` metrics)
        self.drops: Dict[str, int] = {}
        #: Largest buffer occupancy seen — the backpressure signal.
        self.high_watermark = 0

    # -- construction helpers -----------------------------------------

    @classmethod
    def from_flows(
        cls,
        flows: Iterable[FlowRecord],
        start_index: int = 0,
        max_pending: int = 8192,
        quarantine: Optional[QuarantineSink] = None,
        overflow_policy: str = "raise",
        deadline=None,
    ) -> "FlowReplaySource":
        """Replay an in-memory flow iterable (chunked internally)."""
        return cls(
            _chunked(flows, min(_FILE_CHUNK, max_pending)),
            start_index=start_index,
            max_pending=max_pending,
            quarantine=quarantine,
            overflow_policy=overflow_policy,
            deadline=deadline,
        )

    @classmethod
    def from_flowfile(
        cls,
        path: Union[str, pathlib.Path, IO[str]],
        start_index: int = 0,
        max_pending: int = 8192,
        quarantine: Optional[QuarantineSink] = None,
        overflow_policy: str = "raise",
        deadline=None,
    ) -> "FlowReplaySource":
        """Replay a haystack-flows CSV file."""
        return cls.from_flows(
            read_flow_file(path),
            start_index=start_index,
            max_pending=max_pending,
            quarantine=quarantine,
            overflow_policy=overflow_policy,
            deadline=deadline,
        )

    @classmethod
    def from_export_packets(
        cls,
        payloads: Iterable[bytes],
        codec,
        start_index: int = 0,
        max_pending: int = 8192,
        quarantine: Optional[QuarantineSink] = None,
        overflow_policy: str = "raise",
        deadline=None,
    ) -> "FlowReplaySource":
        """Replay binary NetFlow v9 / IPFIX export packets.

        ``codec`` is a :class:`~repro.netflow.v9.NetflowV9Codec` or
        :class:`~repro.netflow.ipfix.IpfixCodec`; its template cache
        persists across packets, so data-only packets (template
        refresh intervals) decode correctly mid-stream.
        """
        return cls(
            (codec.decode(payload) for payload in payloads),
            start_index=start_index,
            max_pending=max_pending,
            quarantine=quarantine,
            overflow_policy=overflow_policy,
            deadline=deadline,
        )

    # -- iteration ----------------------------------------------------

    def __iter__(self) -> "FlowReplaySource":
        return self

    def __next__(self) -> Tuple[int, FlowRecord]:
        if self.deadline is not None and self.deadline.expired():
            # Shed whatever is still buffered — those are the only
            # records this source verifiably held at expiry — and end
            # the stream.
            self._shed("deadline_exceeded", len(self._pending))
            self._pending.clear()
            raise StopIteration
        if not self._pending and not self._fill():
            raise StopIteration
        flow = self._pending.popleft()
        index = self.next_index
        self.next_index += 1
        return index, flow

    def skip(self, count: int) -> int:
        """Consume ``count`` records without yielding (resume path).

        Returns how many records were actually skipped (fewer if the
        stream ends first).
        """
        skipped = 0
        while skipped < count:
            if not self._pending and not self._fill():
                break
            self._pending.popleft()
            self.next_index += 1
            skipped += 1
        return skipped

    def _shed(self, reason: str, count: int) -> None:
        if count > 0:
            self.drops[reason] = self.drops.get(reason, 0) + count

    def _fill(self) -> bool:
        """Pull producer batches until a record is buffered."""
        if self.deadline is not None and self.deadline.expired():
            # Shed everything already buffered and stop pulling; only
            # the records this source actually held are countable.
            self._shed("deadline_exceeded", len(self._pending))
            self._pending.clear()
            return False
        while not self._pending:
            try:
                batch = next(self._batches, None)
            except (struct.error, ValueError) as exc:
                # The producer died mid-record: a concurrently
                # truncated flow file (ValueError from the parser) or a
                # short binary export packet (struct.error from the
                # codec).
                if self.quarantine is not None:
                    self.quarantine.record("truncated_source", str(exc))
                    return False
                raise ReplayTruncated(
                    f"flow source truncated mid-record: {exc}"
                ) from exc
            if batch is None:
                return False
            if len(batch) > self.max_pending:
                if self.overflow_policy == "raise":
                    raise ValueError(
                        f"producer batch of {len(batch)} records exceeds "
                        f"max_pending={self.max_pending}; split the batch "
                        "or raise the buffer bound"
                    )
                excess = len(batch) - self.max_pending
                if self.overflow_policy == "drop_newest":
                    batch = batch[: self.max_pending]
                else:  # drop_oldest
                    batch = batch[excess:]
                self._shed("batch_overflow", excess)
            if self.quarantine is None:
                self._pending.extend(batch)
            else:
                for record in batch:
                    reason = validate_flow_record(record)
                    if reason is None:
                        self._pending.append(record)
                    else:
                        self.quarantine.record(reason, record)
            if len(self._pending) > self.high_watermark:
                self.high_watermark = len(self._pending)
        return True


def _chunked(
    flows: Iterable[FlowRecord], size: int
) -> Iterator[List[FlowRecord]]:
    chunk: List[FlowRecord] = []
    for flow in flows:
        chunk.append(flow)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def iter_flow_tuples(
    source: Union[str, pathlib.Path, IO[str]],
    quarantine: Optional[QuarantineSink] = None,
    parser: Optional[FlowLineParser] = None,
) -> Iterator[FlowTuple]:
    """Stream ``(first, src, dst, proto, dport, flags)`` from a flow
    file, parsing only the detection-relevant columns.

    Yields the same records in the same order as
    :func:`~repro.netflow.flowfile.read_flow_file`, minus the fields
    the detector never reads (``last``, ``sport``, ``packets``,
    ``bytes``) and minus per-record object construction.  Field parsing
    goes through the shared memoised
    :class:`~repro.netflow.parse.FlowLineParser`, the same
    implementation the record path uses.

    With a ``quarantine`` sink attached, malformed lines and impossible
    tuples are counted/sampled there and skipped; without one they
    raise ``ValueError`` exactly as before.
    """
    owns = isinstance(source, (str, pathlib.Path))
    stream: IO[str] = (
        open(source, "r", encoding="ascii") if owns else source
    )
    parser = parser if parser is not None else SHARED_PARSER
    expected = len(FLOW_FILE_COLUMNS)
    parse = parser.tuple
    try:
        for line in stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != expected:
                if quarantine is not None:
                    quarantine.record("malformed_line", line)
                    continue
                raise ValueError(
                    f"flow line has {len(parts)} fields, expected "
                    f"{expected}: {line!r}"
                )
            try:
                record = parse(parts)
            except ValueError:
                if quarantine is not None:
                    quarantine.record("unparseable_field", line)
                    continue
                raise
            if quarantine is not None:
                reason = validate_flow_tuple(*record)
                if reason is not None:
                    quarantine.record(reason, line)
                    continue
            yield record
    finally:
        if owns:
            stream.close()
