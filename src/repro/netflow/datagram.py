"""Typed datagram decode errors and export-packet header peeking.

A live collector feeds the NetFlow v9 / IPFIX codecs *arbitrary bytes*
— truncated datagrams, bit-corrupted payloads, garbage aimed at the
port.  The codecs therefore promise exactly one failure mode:
:class:`DatagramError`, carrying a stable machine-matchable ``reason``
plus the exporter/offset context an operator needs to attribute the
damage.  Anything else escaping ``decode`` is a codec bug (the seeded
mutation-fuzz suite in ``tests/test_netflow_codecs.py`` enforces
this).

:class:`DatagramError` subclasses :class:`ValueError` so historical
callers catching ``ValueError`` around ``decode`` keep working.

:func:`peek_header` reads just enough of a datagram to route it — the
protocol version and the exporter identity (NetFlow v9 source id /
IPFIX observation domain) plus the sequence number and record count a
collector's per-exporter gap accounting consumes — without touching
any template state.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "DatagramError",
    "DatagramHeader",
    "DecodedDatagram",
    "peek_header",
]

_V9_HEADER = struct.Struct("!HHIIII")
_IPFIX_HEADER = struct.Struct("!HHIII")


class DatagramError(ValueError):
    """One export datagram could not be (fully) decoded.

    ``reason`` is a stable slug (``truncated_header``, ``bad_version``,
    ``truncated_set``, ``zero_length_field``, ``corrupt_set_length``,
    ``length_mismatch``, ``truncated_template``, ``unknown_template``)
    quarantine accounting keys on; ``exporter`` and ``offset`` locate
    the damage for an operator.
    """

    def __init__(
        self,
        reason: str,
        detail: str = "",
        exporter: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> None:
        self.reason = reason
        self.exporter = exporter
        self.offset = offset
        where = []
        if exporter is not None:
            where.append(f"exporter={exporter}")
        if offset is not None:
            where.append(f"offset={offset}")
        suffix = f" ({', '.join(where)})" if where else ""
        message = f"{reason}: {detail}{suffix}" if detail else (
            f"{reason}{suffix}"
        )
        super().__init__(message)


@dataclass(frozen=True)
class DatagramHeader:
    """The routing fields of one export datagram."""

    version: int  # 9 (NetFlow v9) or 10 (IPFIX)
    exporter_id: int  # v9 source id / IPFIX observation domain
    sequence: int
    export_time: int
    #: v9: records in this packet (header ``count`` field);
    #: IPFIX: not carried — ``None`` (derive from the decoded body)
    count: Optional[int]


def peek_header(payload: bytes) -> DatagramHeader:
    """Parse only the datagram header (version routing + sequencing).

    Raises :class:`DatagramError` (``truncated_header`` /
    ``bad_version``) — never anything else — on damaged input.
    """
    if len(payload) < 2:
        raise DatagramError(
            "truncated_header", f"{len(payload)} bytes"
        )
    version = struct.unpack_from("!H", payload)[0]
    if version == 9:
        if len(payload) < _V9_HEADER.size:
            raise DatagramError(
                "truncated_header",
                f"{len(payload)} bytes < v9 header {_V9_HEADER.size}",
            )
        _, count, _uptime, secs, seq, source = _V9_HEADER.unpack_from(
            payload
        )
        return DatagramHeader(
            version=9,
            exporter_id=source,
            sequence=seq,
            export_time=secs,
            count=count,
        )
    if version == 10:
        if len(payload) < _IPFIX_HEADER.size:
            raise DatagramError(
                "truncated_header",
                f"{len(payload)} bytes < IPFIX header "
                f"{_IPFIX_HEADER.size}",
            )
        _, _length, secs, seq, odid = _IPFIX_HEADER.unpack_from(payload)
        return DatagramHeader(
            version=10,
            exporter_id=odid,
            sequence=seq,
            export_time=secs,
            count=None,
        )
    raise DatagramError("bad_version", f"version {version}")


@dataclass
class DecodedDatagram:
    """Everything one export datagram yielded.

    ``flows`` are the data records whose templates were known;
    ``pending`` holds the raw bodies of data sets that referenced a
    template this decoder has not seen yet — a collector buffers them
    (bounded, TTL'd) and re-decodes when the template re-send lands.
    """

    header: DatagramHeader
    flows: List = field(default_factory=list)
    #: ``(set id, raw body)`` of data sets without a known template
    pending: List[Tuple[int, bytes]] = field(default_factory=list)
    #: template ids (re)defined by this datagram
    templates_learned: List[int] = field(default_factory=list)
    #: options-template ids (re)defined by this datagram
    options_learned: List[int] = field(default_factory=list)
