"""Binary IPFIX (RFC 7011) export and parsing.

The IXP in the paper collects IPFIX across its switching fabric.  The
message layout differs from NetFlow v9 in the header (no uptime; a
16-bit total length) and in the template set ID (2 instead of 0); the
information elements used here carry the same numbers as their NetFlow
v9 ancestors, plus ``flowStartSeconds``/``flowEndSeconds`` (150/151)
in place of the sysuptime-relative switch times.

Decode hardening mirrors :mod:`repro.netflow.v9`: arbitrary bytes fail
with one typed :class:`~repro.netflow.datagram.DatagramError`, the
template cache is persistent across messages (live collectors see
data-only messages between template refreshes), and
:meth:`IpfixCodec.decode_message` returns unknown-template data sets
for buffering instead of raising.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional, Tuple

from repro.netflow.datagram import (
    DatagramError,
    DatagramHeader,
    DecodedDatagram,
)
from repro.netflow.records import FlowKey, FlowRecord

__all__ = ["IpfixCodec"]

_HEADER = struct.Struct("!HHIII")  # version, length, export time, seq, odid
_SET_HEADER = struct.Struct("!HH")
_TEMPLATE_HEADER = struct.Struct("!HH")

_ELEMENTS: Tuple[Tuple[int, int], ...] = (
    (8, 4),  # sourceIPv4Address
    (12, 4),  # destinationIPv4Address
    (7, 2),  # sourceTransportPort
    (11, 2),  # destinationTransportPort
    (4, 1),  # protocolIdentifier
    (6, 1),  # tcpControlBits
    (2, 8),  # packetDeltaCount
    (1, 8),  # octetDeltaCount
    (150, 4),  # flowStartSeconds
    (151, 4),  # flowEndSeconds
)
_RECORD = struct.Struct("!IIHHBBQQII")
_TEMPLATE_ID = 300
_TEMPLATE_SET_ID = 2


class IpfixCodec:
    """Encode and decode IPFIX messages."""

    def __init__(
        self, observation_domain: int = 1, sampling_interval: int = 1
    ) -> None:
        self.observation_domain = observation_domain
        self.sampling_interval = sampling_interval
        self._sequence = 0
        # Collector-side template cache, persistent across messages.
        self._templates: dict = {}

    # ------------------------------------------------------------------
    # encoding

    def encode(self, flows: List[FlowRecord], export_time: int) -> bytes:
        template = self._encode_template_set()
        data = self._encode_data_set(flows)
        length = _HEADER.size + len(template) + len(data)
        header = _HEADER.pack(
            10, length, export_time, self._sequence, self.observation_domain
        )
        self._sequence = (self._sequence + len(flows)) & 0xFFFFFFFF
        return header + template + data

    def _encode_template_set(self) -> bytes:
        body = _TEMPLATE_HEADER.pack(_TEMPLATE_ID, len(_ELEMENTS))
        for element_id, length in _ELEMENTS:
            body += struct.pack("!HH", element_id, length)
        return (
            _SET_HEADER.pack(_TEMPLATE_SET_ID, _SET_HEADER.size + len(body))
            + body
        )

    def _encode_data_set(self, flows: Iterable[FlowRecord]) -> bytes:
        body = b"".join(
            _RECORD.pack(
                flow.src_ip,
                flow.dst_ip,
                flow.src_port,
                flow.dst_port,
                flow.protocol,
                flow.tcp_flags,
                flow.packets,
                flow.bytes,
                flow.first_switched & 0xFFFFFFFF,
                flow.last_switched & 0xFFFFFFFF,
            )
            for flow in flows
        )
        padding = (-len(body)) % 4
        body += b"\x00" * padding
        return _SET_HEADER.pack(
            _TEMPLATE_ID, _SET_HEADER.size + len(body)
        ) + body

    # ------------------------------------------------------------------
    # decoding

    def decode(self, payload: bytes) -> List[FlowRecord]:
        """Parse one IPFIX message back into flow records.

        Damaged or premature input raises :class:`~repro.netflow.
        datagram.DatagramError` — including ``unknown_template`` for a
        data set whose template this codec has never seen (a collector
        that wants to buffer those uses :meth:`decode_message`).
        """
        return self._decode_message(payload, strict=True).flows

    def decode_message(self, payload: bytes) -> DecodedDatagram:
        """Collector-facing decode of one IPFIX message.

        Like :meth:`decode` but data sets referencing an unknown
        template land in ``.pending`` (raw bodies) instead of raising.
        Structural damage still raises :class:`DatagramError`.
        """
        return self._decode_message(payload, strict=False)

    def _decode_message(
        self, payload: bytes, strict: bool
    ) -> DecodedDatagram:
        if len(payload) < _HEADER.size:
            raise DatagramError(
                "truncated_header",
                f"{len(payload)} bytes < IPFIX header {_HEADER.size}",
            )
        version, length, export_time, seq, odid = _HEADER.unpack_from(
            payload
        )
        if version != 10:
            raise DatagramError(
                "bad_version", f"not an IPFIX message (version {version})"
            )
        if length != len(payload):
            raise DatagramError(
                "length_mismatch",
                f"IPFIX length field {length} != payload {len(payload)}",
                exporter=odid,
            )
        message = DecodedDatagram(
            header=DatagramHeader(
                version=10,
                exporter_id=odid,
                sequence=seq,
                export_time=export_time,
                count=None,
            )
        )
        offset = _HEADER.size
        while offset + _SET_HEADER.size <= len(payload):
            set_id, set_length = _SET_HEADER.unpack_from(payload, offset)
            if set_length < _SET_HEADER.size:
                raise DatagramError(
                    "corrupt_set_length",
                    f"set {set_id} length {set_length}",
                    exporter=odid,
                    offset=offset,
                )
            if offset + set_length > len(payload):
                raise DatagramError(
                    "truncated_set",
                    f"set {set_id} length {set_length} overruns "
                    f"{len(payload)}-byte message",
                    exporter=odid,
                    offset=offset,
                )
            body = payload[offset + _SET_HEADER.size : offset + set_length]
            if set_id == _TEMPLATE_SET_ID:
                message.templates_learned.extend(
                    self._decode_templates(
                        body, self._templates, odid, offset
                    )
                )
            elif set_id >= 256 and set_id in self._templates:
                message.flows.extend(
                    self._decode_data(body, self._templates[set_id])
                )
            elif set_id >= 256:
                if strict:
                    raise DatagramError(
                        "unknown_template",
                        f"data set {set_id} before its template",
                        exporter=odid,
                        offset=offset,
                    )
                message.pending.append((set_id, bytes(body)))
            # set ids 3 (options templates) and 4..255 (reserved) skipped
            offset += set_length
        return message

    def decode_data_body(
        self, set_id: int, body: bytes
    ) -> List[FlowRecord]:
        """Decode a buffered data-set body against the template cache."""
        elements = self._templates.get(set_id)
        if elements is None:
            raise DatagramError("unknown_template", f"data set {set_id}")
        return self._decode_data(body, elements)

    @staticmethod
    def _decode_templates(
        body: bytes,
        templates: dict,
        exporter: Optional[int] = None,
        base_offset: int = 0,
    ) -> List[int]:
        learned: List[int] = []
        offset = 0
        try:
            while offset + _TEMPLATE_HEADER.size <= len(body):
                template_id, field_count = _TEMPLATE_HEADER.unpack_from(
                    body, offset
                )
                if template_id == 0:  # set padding
                    break
                offset += _TEMPLATE_HEADER.size
                elements = []
                for _ in range(field_count):
                    element_id, length = struct.unpack_from(
                        "!HH", body, offset
                    )
                    elements.append((element_id, length))
                    offset += 4
                if not elements or any(
                    length == 0 for _, length in elements
                ):
                    raise DatagramError(
                        "zero_length_field",
                        f"template {template_id} with "
                        f"{field_count} elements",
                        exporter=exporter,
                        offset=base_offset,
                    )
                templates[template_id] = tuple(elements)
                learned.append(template_id)
        except struct.error as exc:
            raise DatagramError(
                "truncated_template",
                f"template set: {exc}",
                exporter=exporter,
                offset=base_offset,
            ) from exc
        return learned

    def _decode_data(
        self, body: bytes, elements: Tuple[Tuple[int, int], ...]
    ) -> List[FlowRecord]:
        record_length = sum(length for _, length in elements)
        flows = []
        offset = 0
        while offset + record_length <= len(body):
            values = {}
            cursor = offset
            for element_id, length in elements:
                raw = body[cursor : cursor + length]
                values[element_id] = int.from_bytes(raw, "big")
                cursor += length
            flows.append(self._record_from_elements(values))
            offset += record_length
        return flows

    def _record_from_elements(self, values: dict) -> FlowRecord:
        key = FlowKey(
            src_ip=values.get(8, 0),
            dst_ip=values.get(12, 0),
            protocol=values.get(4, 0),
            src_port=values.get(7, 0),
            dst_port=values.get(11, 0),
        )
        return FlowRecord(
            key=key,
            first_switched=values.get(150, 0),
            last_switched=values.get(151, 0),
            packets=values.get(2, 0),
            bytes=values.get(1, 0),
            tcp_flags=values.get(6, 0),
            sampling_interval=self.sampling_interval,
        )
