"""Memoised flow-line parsing, shared by the record and tuple paths.

Historically the repo parsed haystack-flows CSV lines twice: once in
:func:`repro.netflow.flowfile.parse_flow_line` (full
:class:`~repro.netflow.records.FlowRecord` construction for the batch
path) and once inside ``iter_flow_tuples`` (column-subset tuples for
the stream fast path), each with its own dotted-quad conversion and
memoisation.  :class:`FlowLineParser` is the single implementation both
now call: one split contract, one error message, one pair of bounded
memo caches.

Dotted quads and flag bytes repeat heavily — subscriber lines and
hitlist endpoints are small sets next to the record count — so memoised
conversions dominate raw parsing.  The caches are bounded: cleared if
an adversarially diverse stream ever bloats them past
:data:`PARSE_CACHE_LIMIT` entries.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cloud.addressing import str_to_ip
from repro.netflow.records import FlowKey, FlowRecord

__all__ = [
    "FLOW_FILE_COLUMNS",
    "FlowLineParser",
    "FlowTuple",
    "PARSE_CACHE_LIMIT",
    "SHARED_PARSER",
]

#: Column order of the haystack-flows CSV format (see
#: :mod:`repro.netflow.flowfile`, which owns reading/writing whole
#: files around this per-line contract).
FLOW_FILE_COLUMNS = (
    "first", "last", "src", "dst", "proto", "sport", "dport",
    "packets", "bytes", "flags",
)

#: ``(first_switched, src_ip, dst_ip, protocol, dst_port, tcp_flags)``
#: — the columns detection consumes, in stream fast-path order.
FlowTuple = Tuple[int, int, int, int, int, int]

#: Entry cap on the memo caches.
PARSE_CACHE_LIMIT = 1 << 20


class FlowLineParser:
    """Parses split CSV fields into tuples or records, memoised.

    Instances are cheap; the module-level :data:`SHARED_PARSER` is the
    default so every caller in a process shares one warm cache.  The
    memo maps are pure (text → value), so sharing across callers can
    only improve hit rates, never results.
    """

    __slots__ = ("cache_limit", "_ips", "_flags")

    def __init__(self, cache_limit: int = PARSE_CACHE_LIMIT) -> None:
        if cache_limit < 1:
            raise ValueError("cache_limit must be positive")
        self.cache_limit = cache_limit
        self._ips: Dict[str, int] = {}
        self._flags: Dict[str, int] = {}

    def split(self, line: str) -> List[str]:
        """Split one data line, enforcing the column-count contract."""
        parts = line.split(",")
        if len(parts) != len(FLOW_FILE_COLUMNS):
            raise ValueError(
                f"flow line has {len(parts)} fields, expected "
                f"{len(FLOW_FILE_COLUMNS)}: {line!r}"
            )
        return parts

    def ip(self, text: str) -> int:
        """Memoised dotted-quad → integer conversion."""
        value = self._ips.get(text)
        if value is None:
            if len(self._ips) >= self.cache_limit:
                self._ips.clear()
            value = self._ips[text] = str_to_ip(text)
        return value

    def flag_bits(self, text: str) -> int:
        """Memoised ``0x..`` flag-byte parse."""
        value = self._flags.get(text)
        if value is None:
            if len(self._flags) >= self.cache_limit:
                self._flags.clear()
            value = self._flags[text] = int(text, 16)
        return value

    def tuple(self, parts: Sequence[str]) -> FlowTuple:
        """Detection-relevant columns only, no object construction."""
        return (
            int(parts[0]),  # first
            self.ip(parts[2]),
            self.ip(parts[3]),
            int(parts[4]),  # proto
            int(parts[6]),  # dport
            self.flag_bits(parts[9]),
        )

    def record(
        self, parts: Sequence[str], sampling_interval: int = 1
    ) -> FlowRecord:
        """Full :class:`FlowRecord` construction (batch/replay path)."""
        return FlowRecord(
            key=FlowKey(
                src_ip=self.ip(parts[2]),
                dst_ip=self.ip(parts[3]),
                protocol=int(parts[4]),
                src_port=int(parts[5]),
                dst_port=int(parts[6]),
            ),
            first_switched=int(parts[0]),
            last_switched=int(parts[1]),
            packets=int(parts[7]),
            bytes=int(parts[8]),
            tcp_flags=self.flag_bits(parts[9]),
            sampling_interval=sampling_interval,
        )


#: Process-wide default parser: both `read_flow_file` and
#: `iter_flow_tuples` go through this instance unless handed their own.
SHARED_PARSER = FlowLineParser()
