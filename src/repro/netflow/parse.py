"""Memoised flow-line parsing, shared by the record and tuple paths.

Historically the repo parsed haystack-flows CSV lines twice: once in
:func:`repro.netflow.flowfile.parse_flow_line` (full
:class:`~repro.netflow.records.FlowRecord` construction for the batch
path) and once inside ``iter_flow_tuples`` (column-subset tuples for
the stream fast path), each with its own dotted-quad conversion and
memoisation.  :class:`FlowLineParser` is the single implementation both
now call: one split contract, one error message, one pair of bounded
memo caches.

Dotted quads and flag bytes repeat heavily — subscriber lines and
hitlist endpoints are small sets next to the record count — so memoised
conversions dominate raw parsing.  The caches are bounded: if an
adversarially diverse stream ever bloats them past
:data:`PARSE_CACHE_LIMIT` entries, an arbitrary half is evicted so the
warm half keeps serving (a full clear would cold-start every
conversion at once).

:class:`ColumnarDecodeStage` is the batch counterpart of the per-line
parser: it decodes a flow file into :class:`FlowChunk` batches of
numpy column arrays for the vectorized detect path
(:mod:`repro.pipeline.columnar`), falling back to the exact per-line
semantics of :func:`repro.netflow.replay.iter_flow_tuples` — same
error messages, same quarantine reasons — whenever a chunk contains
comments, blank lines, or malformed fields.  numpy is imported lazily
so the substrate stays importable without it.
"""

from __future__ import annotations

import itertools
import pathlib
from typing import IO, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cloud.addressing import str_to_ip
from repro.netflow.records import FlowKey, FlowRecord
from repro.resilience.quarantine import QuarantineSink, validate_flow_tuple

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FLOW_FILE_COLUMNS",
    "ColumnarDecodeStage",
    "FlowChunk",
    "IndexedFlowChunk",
    "FlowLineParser",
    "FlowTuple",
    "PARSE_CACHE_LIMIT",
    "SHARED_PARSER",
    "chunks_from_records",
]

#: Column order of the haystack-flows CSV format (see
#: :mod:`repro.netflow.flowfile`, which owns reading/writing whole
#: files around this per-line contract).
FLOW_FILE_COLUMNS = (
    "first", "last", "src", "dst", "proto", "sport", "dport",
    "packets", "bytes", "flags",
)

#: ``(first_switched, src_ip, dst_ip, protocol, dst_port, tcp_flags)``
#: — the columns detection consumes, in stream fast-path order.
FlowTuple = Tuple[int, int, int, int, int, int]

#: Entry cap on the memo caches.
PARSE_CACHE_LIMIT = 1 << 20

#: Rows per :class:`FlowChunk` the columnar decode stage aims for.
#: Large enough to amortise per-chunk numpy overhead, small enough
#: that the chunk's column temporaries stay cache/allocator friendly.
DEFAULT_CHUNK_SIZE = 1 << 16

#: Byte-size heuristic used to turn ``chunk_size`` rows into a read
#: request (haystack-flows lines average ~45 bytes).
_BYTES_PER_LINE = 48

_np = None


def _numpy():
    """Import numpy on first columnar use (keeps the per-line paths
    importable without it)."""
    global _np
    if _np is None:
        import numpy

        _np = numpy
    return _np


def _evict_half(cache: Dict[str, int]) -> None:
    """Drop an arbitrary half of a memo cache (the insertion-oldest
    half, as dicts preserve insertion order) so recent entries keep
    serving instead of cold-starting the whole stream."""
    drop = max(1, len(cache) // 2)
    for key in list(itertools.islice(cache, drop)):
        del cache[key]


class FlowLineParser:
    """Parses split CSV fields into tuples or records, memoised.

    Instances are cheap; the module-level :data:`SHARED_PARSER` is the
    default so every caller in a process shares one warm cache.  The
    memo maps are pure (text → value), so sharing across callers can
    only improve hit rates, never results.
    """

    __slots__ = ("cache_limit", "_ips", "_flags")

    def __init__(self, cache_limit: int = PARSE_CACHE_LIMIT) -> None:
        if cache_limit < 1:
            raise ValueError("cache_limit must be positive")
        self.cache_limit = cache_limit
        self._ips: Dict[str, int] = {}
        self._flags: Dict[str, int] = {}

    def split(self, line: str) -> List[str]:
        """Split one data line, enforcing the column-count contract."""
        parts = line.split(",")
        if len(parts) != len(FLOW_FILE_COLUMNS):
            raise ValueError(
                f"flow line has {len(parts)} fields, expected "
                f"{len(FLOW_FILE_COLUMNS)}: {line!r}"
            )
        return parts

    def ip(self, text: str) -> int:
        """Memoised dotted-quad → integer conversion."""
        value = self._ips.get(text)
        if value is None:
            if len(self._ips) >= self.cache_limit:
                _evict_half(self._ips)
            value = self._ips[text] = str_to_ip(text)
        return value

    def flag_bits(self, text: str) -> int:
        """Memoised ``0x..`` flag-byte parse."""
        value = self._flags.get(text)
        if value is None:
            if len(self._flags) >= self.cache_limit:
                _evict_half(self._flags)
            value = self._flags[text] = int(text, 16)
        return value

    def tuple(self, parts: Sequence[str]) -> FlowTuple:
        """Detection-relevant columns only, no object construction."""
        return (
            int(parts[0]),  # first
            self.ip(parts[2]),
            self.ip(parts[3]),
            int(parts[4]),  # proto
            int(parts[6]),  # dport
            self.flag_bits(parts[9]),
        )

    def record(
        self, parts: Sequence[str], sampling_interval: int = 1
    ) -> FlowRecord:
        """Full :class:`FlowRecord` construction (batch/replay path)."""
        return FlowRecord(
            key=FlowKey(
                src_ip=self.ip(parts[2]),
                dst_ip=self.ip(parts[3]),
                protocol=int(parts[4]),
                src_port=int(parts[5]),
                dst_port=int(parts[6]),
            ),
            first_switched=int(parts[0]),
            last_switched=int(parts[1]),
            packets=int(parts[7]),
            bytes=int(parts[8]),
            tcp_flags=self.flag_bits(parts[9]),
            sampling_interval=sampling_interval,
        )


#: Process-wide default parser: both `read_flow_file` and
#: `iter_flow_tuples` go through this instance unless handed their own.
SHARED_PARSER = FlowLineParser()


class FlowChunk:
    """One decoded batch of flows as parallel int64 column arrays.

    The columnar counterpart of a run of :data:`FlowTuple` rows: six
    equal-length numpy arrays (``first``, ``src``, ``dst``, ``proto``,
    ``dport``, ``flags``) plus ``start_index``, the stream index of
    row 0 in the same valid-row coordinate system the per-record paths
    assign (quarantined/skipped lines never consume an index).
    """

    __slots__ = (
        "start_index", "first", "src", "dst", "proto", "dport", "flags",
    )

    def __init__(
        self, start_index, first, src, dst, proto, dport, flags
    ) -> None:
        self.start_index = start_index
        self.first = first
        self.src = src
        self.dst = dst
        self.proto = proto
        self.dport = dport
        self.flags = flags

    def __len__(self) -> int:
        return len(self.first)

    def head(self, count: int) -> "FlowChunk":
        """The first ``count`` rows (``max_records`` bounding)."""
        return FlowChunk(
            self.start_index,
            self.first[:count],
            self.src[:count],
            self.dst[:count],
            self.proto[:count],
            self.dport[:count],
            self.flags[:count],
        )

    def tail(self, drop: int) -> "FlowChunk":
        """Rows from ``drop`` on, re-indexed (resume fast-forward)."""
        return FlowChunk(
            self.start_index + drop,
            self.first[drop:],
            self.src[drop:],
            self.dst[drop:],
            self.proto[drop:],
            self.dport[drop:],
            self.flags[drop:],
        )


class IndexedFlowChunk(FlowChunk):
    """A chunk whose rows carry explicit, possibly gapped indices.

    A plain :class:`FlowChunk` numbers its rows contiguously from
    ``start_index`` — correct for a single linear stream.  A fleet
    worker instead receives the *subset* of the stream whose keys hash
    to its ring slots, and the merged event log is only byte-identical
    to the single-engine run if each record folds under the global
    index it had before routing.  ``indices`` is an int64 array, one
    global stream index per row, ascending but not contiguous;
    ``start_index`` degrades to ``indices[0]`` for code that only needs
    a lower bound.
    """

    __slots__ = ("indices",)

    def __init__(
        self, indices, first, src, dst, proto, dport, flags
    ) -> None:
        start = int(indices[0]) if len(indices) else 0
        super().__init__(start, first, src, dst, proto, dport, flags)
        self.indices = indices

    def head(self, count: int) -> "IndexedFlowChunk":
        """The first ``count`` rows (``max_records`` bounding)."""
        return IndexedFlowChunk(
            self.indices[:count],
            self.first[:count],
            self.src[:count],
            self.dst[:count],
            self.proto[:count],
            self.dport[:count],
            self.flags[:count],
        )

    def tail(self, drop: int) -> "IndexedFlowChunk":
        """Rows from ``drop`` on (indices travel with their rows)."""
        return IndexedFlowChunk(
            self.indices[drop:],
            self.first[drop:],
            self.src[drop:],
            self.dst[drop:],
            self.proto[drop:],
            self.dport[drop:],
            self.flags[drop:],
        )


class ColumnarDecodeStage:
    """Decode a flow file into :class:`FlowChunk` column batches.

    The bulk fast path splits a whole block of complete lines at once
    and converts each needed column with one vectorized conversion (or
    one memo-map pass for dotted quads and flag bytes, sharing the
    per-line parser's caches).  Any irregularity — comments, blank
    lines, a field-count misalignment, a conversion error — drops the
    whole block to a per-line path that reproduces
    :func:`repro.netflow.replay.iter_flow_tuples` exactly: same error
    messages without a quarantine, same reason strings with one.

    The fast path is safe against silent misalignment: a block is only
    bulk-decoded when its total field count and line count agree, and
    any shifted column puts a dotted quad into an integer column (or
    vice versa), which raises and falls back.  Field values outside
    int64 are not supported on the columnar path (no writer in this
    repo produces them).
    """

    def __init__(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        parser: Optional[FlowLineParser] = None,
        quarantine: Optional[QuarantineSink] = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.parser = parser if parser is not None else SHARED_PARSER
        self.quarantine = quarantine

    # -- file ingest --------------------------------------------------

    def iter_chunks(
        self,
        source: Union[str, pathlib.Path, IO[str]],
        skip: int = 0,
    ) -> Iterator[FlowChunk]:
        """Yield decoded chunks; ``skip`` fast-forwards valid rows.

        Indices continue the per-record coordinate system: the first
        yielded row carries index ``skip`` (quarantine accounting still
        covers the skipped prefix, matching the per-record resume
        path).
        """
        owns = isinstance(source, (str, pathlib.Path))
        stream: IO[str] = (
            open(source, "r", encoding="ascii") if owns else source
        )
        read_size = self.chunk_size * _BYTES_PER_LINE
        index = 0
        to_skip = skip
        carry = ""
        try:
            while True:
                block = stream.read(read_size)
                if not block:
                    break
                if carry:
                    block = carry + block
                    carry = ""
                cut = block.rfind("\n")
                if cut < 0:
                    carry = block
                    continue
                carry = block[cut + 1:]
                chunk = self._chunk_from_text(block[:cut], index)
                index += len(chunk)
                chunk, to_skip = _skip_rows(chunk, to_skip)
                if len(chunk):
                    yield chunk
            if carry:
                chunk = self._chunk_from_text(carry, index)
                chunk, to_skip = _skip_rows(chunk, to_skip)
                if len(chunk):
                    yield chunk
        finally:
            if owns:
                stream.close()

    # -- decoding -----------------------------------------------------

    def _chunk_from_text(self, text: str, start_index: int) -> FlowChunk:
        """Decode a block of complete newline-separated lines."""
        np = _numpy()
        columns = None
        if text and text[0] != "\n" and "#" not in text and "\n\n" not in text:
            columns = self._decode_bulk(text, np)
        if columns is None:
            columns = self._decode_lines(text.split("\n"), np)
        return FlowChunk(start_index, *columns)

    def _decode_bulk(self, text: str, np):
        """Vectorized whole-block decode; ``None`` when ineligible."""
        fields = text.replace("\n", ",").split(",")
        rows, extra = divmod(len(fields), len(FLOW_FILE_COLUMNS))
        if extra or text.count("\n") + 1 != rows:
            return None
        try:
            first = np.array(fields[0::10], dtype=np.int64)
            src = self._map_column(
                fields[2::10], self.parser._ips, self.parser.ip, np
            )
            dst = self._map_column(
                fields[3::10], self.parser._ips, self.parser.ip, np
            )
            proto = np.array(fields[4::10], dtype=np.int64)
            dport = np.array(fields[6::10], dtype=np.int64)
            flags = self._map_column(
                fields[9::10], self.parser._flags, self.parser.flag_bits, np
            )
        except (ValueError, OverflowError):
            return None
        if self.quarantine is not None:
            bad = (
                (first < 0)
                | (proto < 0) | (proto > 255)
                | (dport < 0) | (dport > 65535)
                | (flags < 0) | (flags > 0xFF)
            )
            if bad.any():
                lines = text.split("\n")
                for row in np.flatnonzero(bad).tolist():
                    reason = validate_flow_tuple(
                        int(first[row]), int(src[row]), int(dst[row]),
                        int(proto[row]), int(dport[row]), int(flags[row]),
                    )
                    self.quarantine.record(reason, lines[row])
                keep = ~bad
                first, src, dst = first[keep], src[keep], dst[keep]
                proto, dport, flags = proto[keep], dport[keep], flags[keep]
        return first, src, dst, proto, dport, flags

    @staticmethod
    def _map_column(texts: List[str], memo: Dict[str, int], convert, np):
        """One memo-map pass over a column; misses go through the
        parser's bounded-cache conversion."""
        try:
            values = list(map(memo.__getitem__, texts))
        except KeyError:
            values = [convert(text) for text in texts]
        return np.array(values, dtype=np.int64)

    def _decode_lines(self, lines: Iterable[str], np):
        """Per-line fallback with exact ``iter_flow_tuples`` semantics."""
        parser = self.parser
        quarantine = self.quarantine
        expected = len(FLOW_FILE_COLUMNS)
        columns: Tuple[List[int], ...] = ([], [], [], [], [], [])
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != expected:
                if quarantine is not None:
                    quarantine.record("malformed_line", line)
                    continue
                raise ValueError(
                    f"flow line has {len(parts)} fields, expected "
                    f"{expected}: {line!r}"
                )
            try:
                row = parser.tuple(parts)
            except ValueError:
                if quarantine is not None:
                    quarantine.record("unparseable_field", line)
                    continue
                raise
            if quarantine is not None:
                reason = validate_flow_tuple(*row)
                if reason is not None:
                    quarantine.record(reason, line)
                    continue
            for column, value in zip(columns, row):
                column.append(value)
        return tuple(
            np.array(column, dtype=np.int64) for column in columns
        )


def _skip_rows(chunk: FlowChunk, to_skip: int):
    """Fast-forward a resume prefix through a decoded chunk."""
    if not to_skip:
        return chunk, 0
    if to_skip >= len(chunk):
        return chunk.head(0), to_skip - len(chunk)
    return chunk.tail(to_skip), 0


def chunks_from_records(
    records: Iterable[FlowRecord],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    start_index: int = 0,
) -> Iterator[FlowChunk]:
    """Column chunks from an in-memory record iterable.

    The columnar twin of ``FlowPipeline.run_records`` over
    ``enumerate(records)``: no validation, indices assigned from
    ``start_index`` — chunk sources that never touch text (the IXP
    fabric tap, binary collector decoders) enter the vectorized path
    here.
    """
    np = _numpy()
    iterator = iter(records)
    index = start_index
    while True:
        batch = list(itertools.islice(iterator, chunk_size))
        if not batch:
            return
        count = len(batch)
        yield FlowChunk(
            index,
            np.fromiter(
                (f.first_switched for f in batch), np.int64, count=count
            ),
            np.fromiter((f.src_ip for f in batch), np.int64, count=count),
            np.fromiter((f.dst_ip for f in batch), np.int64, count=count),
            np.fromiter(
                (f.protocol for f in batch), np.int64, count=count
            ),
            np.fromiter(
                (f.dst_port for f in batch), np.int64, count=count
            ),
            np.fromiter(
                (f.tcp_flags for f in batch), np.int64, count=count
            ),
        )
        index += count
