"""Text flow files (nfdump-style CSV).

Operators rarely work on live exports; they run detection over flow
*files* dumped by collectors.  This module writes and reads a compact
CSV representation of :class:`~repro.netflow.records.FlowRecord`
streams — one record per line, stable column order, a comment header
carrying the sampling interval — so detection can run offline:

    write_flow_file(path, flows, sampling_interval=100)
    for flow in read_flow_file(path):
        detector.observe_flow(flow.src_ip, flow)

The format is deliberately line-oriented and append-friendly (a
collector can rotate files hourly the way nfcapd does).
"""

from __future__ import annotations

import io
import pathlib
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.cloud.addressing import ip_to_str
from repro.netflow.parse import (
    FLOW_FILE_COLUMNS,
    SHARED_PARSER,
    FlowLineParser,
)
from repro.netflow.records import FlowRecord

__all__ = [
    "FLOW_FILE_COLUMNS",
    "write_flow_file",
    "read_flow_file",
    "format_flow",
    "parse_flow_line",
]

_HEADER_PREFIX = "# haystack-flows v1"


def format_flow(flow: FlowRecord) -> str:
    """One CSV line for a flow record."""
    return ",".join(
        (
            str(flow.first_switched),
            str(flow.last_switched),
            ip_to_str(flow.src_ip),
            ip_to_str(flow.dst_ip),
            str(flow.protocol),
            str(flow.src_port),
            str(flow.dst_port),
            str(flow.packets),
            str(flow.bytes),
            f"0x{flow.tcp_flags:02x}",
        )
    )


def parse_flow_line(
    line: str,
    sampling_interval: int = 1,
    parser: Optional[FlowLineParser] = None,
) -> FlowRecord:
    """Parse one CSV line back into a flow record.

    Parsing goes through the shared memoised
    :class:`~repro.netflow.parse.FlowLineParser` — the same
    implementation the stream fast path uses — so both paths agree on
    the column contract and error message.
    """
    parser = parser if parser is not None else SHARED_PARSER
    return parser.record(
        parser.split(line.strip()), sampling_interval
    )


def write_flow_file(
    target: Union[str, pathlib.Path, IO[str]],
    flows: Iterable[FlowRecord],
    sampling_interval: int = 1,
) -> int:
    """Write flows to a file (or text stream); returns the record count.

    The header comment records the sampling interval so a reader can
    restore wire estimates without out-of-band configuration.
    """
    owns = isinstance(target, (str, pathlib.Path))
    stream: IO[str] = (
        open(target, "w", encoding="ascii") if owns else target
    )
    count = 0
    try:
        stream.write(
            f"{_HEADER_PREFIX} sampling={sampling_interval}\n"
        )
        stream.write("# " + ",".join(FLOW_FILE_COLUMNS) + "\n")
        for flow in flows:
            stream.write(format_flow(flow) + "\n")
            count += 1
    finally:
        if owns:
            stream.close()
    return count


def read_flow_file(
    source: Union[str, pathlib.Path, IO[str]],
) -> Iterator[FlowRecord]:
    """Stream flow records from a file (or text stream).

    The sampling interval is taken from the header; unknown comment
    lines are skipped, malformed data lines raise.
    """
    owns = isinstance(source, (str, pathlib.Path))
    stream: IO[str] = (
        open(source, "r", encoding="ascii") if owns else source
    )
    sampling_interval = 1
    try:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith(_HEADER_PREFIX):
                    for token in line.split():
                        if token.startswith("sampling="):
                            sampling_interval = int(
                                token.partition("=")[2]
                            )
                continue
            yield parse_flow_line(line, sampling_interval)
    finally:
        if owns:
            stream.close()
