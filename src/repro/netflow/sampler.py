"""Packet sampling.

Routers in the paper export sampled flow data: the ISP samples packets at
a consistent rate at all border routers, the IXP an order of magnitude
lower across its fabric.  Two implementations are provided:

* :class:`PacketSampler` — per-packet decisions for the ground-truth
  (testbed) simulations, supporting both *random* (independent 1-in-N)
  and *deterministic* (every Nth packet) modes;
* :func:`sample_packet_counts` — a vectorised binomial thinning used by
  the wild-scale generators, statistically identical to random 1-in-N
  sampling of the aggregate packet counts.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.netflow.records import PacketRecord

__all__ = ["PacketSampler", "sample_packet_counts"]


class PacketSampler:
    """A 1-in-N packet sampler.

    ``interval`` is N (1 = keep everything).  ``mode`` is ``"random"``
    (each packet kept independently with probability 1/N, the common
    router implementation) or ``"deterministic"`` (systematic count-based
    sampling: one packet out of every N, with a random initial offset).
    """

    def __init__(
        self,
        interval: int,
        mode: str = "random",
        seed: Optional[int] = None,
    ) -> None:
        if interval < 1:
            raise ValueError("sampling interval must be >= 1")
        if mode not in ("random", "deterministic"):
            raise ValueError(f"unknown sampling mode {mode!r}")
        self.interval = interval
        self.mode = mode
        self._rng = random.Random(seed)
        self._countdown = (
            self._rng.randrange(interval) if mode == "deterministic" else 0
        )
        self.seen = 0
        self.kept = 0

    def sample(self, packet: PacketRecord) -> bool:
        """Decide whether to keep one packet."""
        self.seen += 1
        if self.interval == 1:
            self.kept += 1
            return True
        if self.mode == "random":
            keep = self._rng.randrange(self.interval) == 0
        else:
            keep = self._countdown == 0
            self._countdown = (
                self.interval - 1 if keep else self._countdown - 1
            )
        if keep:
            self.kept += 1
        return keep

    def filter(
        self, packets: Iterable[PacketRecord]
    ) -> Iterator[PacketRecord]:
        """Yield only the sampled packets of a stream."""
        for packet in packets:
            if self.sample(packet):
                yield packet

    @property
    def observed_rate(self) -> float:
        """Empirical kept/seen ratio so far."""
        if not self.seen:
            return 0.0
        return self.kept / self.seen


def sample_packet_counts(
    counts: np.ndarray, interval: int, rng: np.random.Generator
) -> np.ndarray:
    """Binomially thin an array of wire packet counts.

    Equivalent in distribution to pushing every individual packet through
    a random 1-in-``interval`` :class:`PacketSampler` and counting
    survivors, but vectorised for the wild-scale simulations.
    """
    if interval < 1:
        raise ValueError("sampling interval must be >= 1")
    counts = np.asarray(counts)
    if interval == 1:
        return counts.copy()
    return rng.binomial(counts, 1.0 / interval)
