"""Binary NetFlow v9 (RFC 3954) export and parsing.

The ISP in the paper collects NetFlow v9 at its border routers.  This
codec round-trips the simulation's :class:`~repro.netflow.records.FlowRecord`
through the real wire format: a packet header, a template flowset
(FlowSet ID 0) describing the record layout, and data flowsets carrying
the records.  Only the fields the methodology consumes are exported.

Decoding is hardened for live-collector use: arbitrary bytes — a
truncated datagram, a bit-flipped length field, a zero-length template
field, a data flowset whose template has not arrived — fail with
exactly one typed error, :class:`~repro.netflow.datagram.DatagramError`
(reason + exporter + offset), never a bare ``struct.error`` or
``KeyError``.  :meth:`NetflowV9Codec.decode_message` is the
collector-facing variant: instead of raising on data-before-template
it returns the raw sets for bounded buffering (see
:mod:`repro.collector`).
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional, Tuple

from repro.netflow.datagram import (
    DatagramError,
    DatagramHeader,
    DecodedDatagram,
)
from repro.netflow.records import FlowKey, FlowRecord

__all__ = ["NetflowV9Codec"]

_HEADER = struct.Struct("!HHIIII")  # version, count, uptime, secs, seq, src
_FLOWSET_HEADER = struct.Struct("!HH")  # flowset id, length
_TEMPLATE_HEADER = struct.Struct("!HH")  # template id, field count

# (field type, length) in export order — RFC 3954 field-type numbers.
_FIELDS: Tuple[Tuple[int, int], ...] = (
    (8, 4),  # IPV4_SRC_ADDR
    (12, 4),  # IPV4_DST_ADDR
    (7, 2),  # L4_SRC_PORT
    (11, 2),  # L4_DST_PORT
    (4, 1),  # PROTOCOL
    (6, 1),  # TCP_FLAGS
    (2, 4),  # IN_PKTS
    (1, 4),  # IN_BYTES
    (22, 4),  # FIRST_SWITCHED
    (21, 4),  # LAST_SWITCHED
)
_RECORD = struct.Struct("!IIHHBBIIII")
_TEMPLATE_ID = 256
_OPTIONS_TEMPLATE_ID = 257
_OPTIONS_FLOWSET_ID = 1

# Options record (RFC 3954 §6.1): scope = System (1), options =
# SAMPLING_INTERVAL (34, 4 bytes) + SAMPLING_ALGORITHM (35, 1 byte).
_SCOPE_SYSTEM = 1
_FIELD_SAMPLING_INTERVAL = 34
_FIELD_SAMPLING_ALGORITHM = 35
_ALGORITHM_RANDOM = 0x02  # random n-out-of-N sampling


class NetflowV9Codec:
    """Encode and decode NetFlow v9 export packets."""

    def __init__(self, source_id: int = 1, sampling_interval: int = 1) -> None:
        self.source_id = source_id
        self.sampling_interval = sampling_interval
        self._sequence = 0
        # Collector-side template cache: real collectors remember
        # templates across export packets (routers only refresh them
        # periodically).
        self._templates: dict = {}
        self._options_templates: dict = {}
        self._discovered_sampling: "int | None" = None

    # ------------------------------------------------------------------
    # encoding

    def encode(
        self,
        flows: List[FlowRecord],
        export_time: int,
        include_options: bool = True,
        include_template: bool = True,
    ) -> bytes:
        """Serialise flows into one export packet.

        With ``include_options`` the packet carries the router's
        sampling configuration in-band (options template + record), the
        way production routers announce their sampling rate to
        collectors.  Routers refresh templates only periodically;
        ``include_template=False`` emits a data-only packet that a
        collector can decode from its template cache.
        """
        template = self._encode_template() if include_template else b""
        options = (
            self._encode_options(export_time) if include_options else b""
        )
        data = self._encode_data(flows)
        count = (
            (1 if include_template else 0)
            + (2 if include_options else 0)
            + len(flows)
        )
        header = _HEADER.pack(
            9,
            count,
            (export_time * 1000) & 0xFFFFFFFF,
            export_time,
            self._sequence,
            self.source_id,
        )
        self._sequence = (self._sequence + count) & 0xFFFFFFFF
        return header + template + options + data

    def _encode_options(self, export_time: int) -> bytes:
        """Options template + one options data record announcing the
        sampling interval and algorithm."""
        template_body = struct.pack(
            "!HHH", _OPTIONS_TEMPLATE_ID, 4, 8
        )  # scope length 4 bytes, options length 8 bytes
        template_body += struct.pack("!HH", _SCOPE_SYSTEM, 4)
        template_body += struct.pack("!HH", _FIELD_SAMPLING_INTERVAL, 4)
        template_body += struct.pack("!HH", _FIELD_SAMPLING_ALGORITHM, 1)
        padding = (-len(template_body)) % 4
        template_body += b"\x00" * padding
        template = _FLOWSET_HEADER.pack(
            _OPTIONS_FLOWSET_ID,
            _FLOWSET_HEADER.size + len(template_body),
        ) + template_body

        record = struct.pack(
            "!IIB",
            self.source_id,  # scope: observing system
            self.sampling_interval,
            _ALGORITHM_RANDOM,
        )
        record += b"\x00" * ((-len(record)) % 4)
        data = _FLOWSET_HEADER.pack(
            _OPTIONS_TEMPLATE_ID, _FLOWSET_HEADER.size + len(record)
        ) + record
        return template + data

    def _encode_template(self) -> bytes:
        body = _TEMPLATE_HEADER.pack(_TEMPLATE_ID, len(_FIELDS))
        for field_type, length in _FIELDS:
            body += struct.pack("!HH", field_type, length)
        return (
            _FLOWSET_HEADER.pack(0, _FLOWSET_HEADER.size + len(body)) + body
        )

    def _encode_data(self, flows: Iterable[FlowRecord]) -> bytes:
        body = b"".join(
            _RECORD.pack(
                flow.src_ip,
                flow.dst_ip,
                flow.src_port,
                flow.dst_port,
                flow.protocol,
                flow.tcp_flags,
                flow.packets,
                flow.bytes,
                flow.first_switched & 0xFFFFFFFF,
                flow.last_switched & 0xFFFFFFFF,
            )
            for flow in flows
        )
        padding = (-len(body)) % 4
        body += b"\x00" * padding
        return _FLOWSET_HEADER.pack(
            _TEMPLATE_ID, _FLOWSET_HEADER.size + len(body)
        ) + body

    # ------------------------------------------------------------------
    # decoding

    def decode(self, payload: bytes) -> List[FlowRecord]:
        """Parse one export packet back into flow records.

        The decoder is template-driven: it learns the layout from the
        template flowset in the same packet (the common cold-start case
        in collectors) and then decodes the data flowsets.  Damaged or
        premature input raises :class:`~repro.netflow.datagram.
        DatagramError` — including ``unknown_template`` for a data
        flowset whose template this codec has never seen (a collector
        that wants to buffer those uses :meth:`decode_message`).
        """
        return self._decode_message(payload, strict=True).flows

    def decode_message(self, payload: bytes) -> DecodedDatagram:
        """Collector-facing decode of one export packet.

        Like :meth:`decode` but data flowsets referencing an unknown
        template land in ``.pending`` (raw bodies, for bounded
        buffering until the template re-send) instead of raising.
        Structural damage still raises :class:`DatagramError`.
        """
        return self._decode_message(payload, strict=False)

    def _decode_message(
        self, payload: bytes, strict: bool
    ) -> DecodedDatagram:
        if len(payload) < _HEADER.size:
            raise DatagramError(
                "truncated_header",
                f"{len(payload)} bytes < v9 header {_HEADER.size}",
            )
        version, count, _uptime, secs, seq, src = _HEADER.unpack_from(
            payload
        )
        if version != 9:
            raise DatagramError(
                "bad_version", f"not NetFlow v9 (version {version})"
            )
        message = DecodedDatagram(
            header=DatagramHeader(
                version=9,
                exporter_id=src,
                sequence=seq,
                export_time=secs,
                count=count,
            )
        )
        offset = _HEADER.size
        discovered_sampling = None
        while offset + _FLOWSET_HEADER.size <= len(payload):
            flowset_id, length = _FLOWSET_HEADER.unpack_from(
                payload, offset
            )
            if length < _FLOWSET_HEADER.size:
                raise DatagramError(
                    "corrupt_set_length",
                    f"flowset {flowset_id} length {length}",
                    exporter=src,
                    offset=offset,
                )
            if offset + length > len(payload):
                raise DatagramError(
                    "truncated_set",
                    f"flowset {flowset_id} length {length} overruns "
                    f"{len(payload)}-byte datagram",
                    exporter=src,
                    offset=offset,
                )
            body = payload[offset + _FLOWSET_HEADER.size : offset + length]
            if flowset_id == 0:
                message.templates_learned.extend(
                    self._decode_templates(
                        body, self._templates, src, offset
                    )
                )
            elif flowset_id == _OPTIONS_FLOWSET_ID:
                message.options_learned.extend(
                    self._decode_options_templates(
                        body, self._options_templates, src, offset
                    )
                )
            elif flowset_id >= 256 and flowset_id in self._options_templates:
                interval = self._decode_options_data(
                    body, self._options_templates[flowset_id]
                )
                if interval is not None:
                    discovered_sampling = interval
            elif flowset_id >= 256 and flowset_id in self._templates:
                message.flows.extend(
                    self._decode_data(body, self._templates[flowset_id])
                )
            elif flowset_id >= 256:
                if strict:
                    raise DatagramError(
                        "unknown_template",
                        f"data flowset {flowset_id} before its template",
                        exporter=src,
                        offset=offset,
                    )
                message.pending.append((flowset_id, bytes(body)))
            # flowset ids 2..255 are reserved: skipped, per RFC 3954
            offset += length
        if discovered_sampling:
            self._discovered_sampling = discovered_sampling
        effective = discovered_sampling or self._discovered_sampling
        if effective:
            message.flows = self._apply_sampling(message.flows, effective)
        return message

    def decode_data_body(
        self, set_id: int, body: bytes
    ) -> List[FlowRecord]:
        """Decode a buffered data-flowset body against the cache.

        The flush half of data-before-template buffering: once the
        template (re-)send has landed, the collector replays the raw
        bodies it queued through this.  Raises ``unknown_template``
        when the template is still missing.
        """
        fields = self._templates.get(set_id)
        if fields is None:
            raise DatagramError(
                "unknown_template", f"data flowset {set_id}"
            )
        flows = self._decode_data(body, fields)
        if self._discovered_sampling:
            flows = self._apply_sampling(
                flows, self._discovered_sampling
            )
        return flows

    @staticmethod
    def _apply_sampling(
        flows: List[FlowRecord], effective: int
    ) -> List[FlowRecord]:
        """Re-stamp decoded flows with the announced sampling rate."""
        return [
            FlowRecord(
                key=flow.key,
                first_switched=flow.first_switched,
                last_switched=flow.last_switched,
                packets=flow.packets,
                bytes=flow.bytes,
                tcp_flags=flow.tcp_flags,
                sampling_interval=effective,
            )
            for flow in flows
        ]

    @staticmethod
    def _decode_options_templates(
        body: bytes,
        templates: dict,
        exporter: Optional[int] = None,
        base_offset: int = 0,
    ) -> List[int]:
        """Parse an options template flowset (RFC 3954 §6.1)."""
        learned: List[int] = []
        offset = 0
        try:
            while offset + 6 <= len(body):
                template_id, scope_length, option_length = (
                    struct.unpack_from("!HHH", body, offset)
                )
                if template_id == 0:  # padding
                    break
                offset += 6
                scope_fields = []
                cursor = offset
                consumed = 0
                while consumed < scope_length:
                    field_type, length = struct.unpack_from(
                        "!HH", body, cursor
                    )
                    scope_fields.append((field_type, length))
                    cursor += 4
                    consumed += 4
                option_fields = []
                consumed = 0
                while consumed < option_length:
                    field_type, length = struct.unpack_from(
                        "!HH", body, cursor
                    )
                    option_fields.append((field_type, length))
                    cursor += 4
                    consumed += 4
                if any(
                    length == 0
                    for _, length in scope_fields + option_fields
                ):
                    raise DatagramError(
                        "zero_length_field",
                        f"options template {template_id}",
                        exporter=exporter,
                        offset=base_offset,
                    )
                templates[template_id] = (scope_fields, option_fields)
                learned.append(template_id)
                offset = cursor
        except struct.error as exc:
            raise DatagramError(
                "truncated_template",
                f"options template flowset: {exc}",
                exporter=exporter,
                offset=base_offset,
            ) from exc
        return learned

    @staticmethod
    def _decode_options_data(body: bytes, template) -> "int | None":
        """Extract the sampling interval from an options data record."""
        scope_fields, option_fields = template
        record_length = sum(length for _, length in scope_fields) + sum(
            length for _, length in option_fields
        )
        interval = None
        offset = 0
        while offset + record_length <= len(body):
            cursor = offset + sum(length for _, length in scope_fields)
            for field_type, length in option_fields:
                raw = body[cursor : cursor + length]
                if field_type == _FIELD_SAMPLING_INTERVAL:
                    interval = int.from_bytes(raw, "big")
                cursor += length
            offset += record_length
            if record_length == 0:
                break
        return interval

    @staticmethod
    def _decode_templates(
        body: bytes,
        templates: dict,
        exporter: Optional[int] = None,
        base_offset: int = 0,
    ) -> List[int]:
        learned: List[int] = []
        offset = 0
        try:
            while offset + _TEMPLATE_HEADER.size <= len(body):
                template_id, field_count = _TEMPLATE_HEADER.unpack_from(
                    body, offset
                )
                if template_id == 0:  # flowset padding
                    break
                offset += _TEMPLATE_HEADER.size
                fields = []
                for _ in range(field_count):
                    field_type, length = struct.unpack_from(
                        "!HH", body, offset
                    )
                    fields.append((field_type, length))
                    offset += 4
                if not fields or any(
                    length == 0 for _, length in fields
                ):
                    raise DatagramError(
                        "zero_length_field",
                        f"template {template_id} with "
                        f"{field_count} fields",
                        exporter=exporter,
                        offset=base_offset,
                    )
                templates[template_id] = tuple(fields)
                learned.append(template_id)
        except struct.error as exc:
            raise DatagramError(
                "truncated_template",
                f"template flowset: {exc}",
                exporter=exporter,
                offset=base_offset,
            ) from exc
        return learned

    def _decode_data(
        self, body: bytes, fields: Tuple[Tuple[int, int], ...]
    ) -> List[FlowRecord]:
        record_length = sum(length for _, length in fields)
        flows = []
        offset = 0
        while offset + record_length <= len(body):
            values = {}
            cursor = offset
            for field_type, length in fields:
                raw = body[cursor : cursor + length]
                values[field_type] = int.from_bytes(raw, "big")
                cursor += length
            flows.append(self._record_from_fields(values))
            offset += record_length
        return flows

    def _record_from_fields(self, values: dict) -> FlowRecord:
        key = FlowKey(
            src_ip=values.get(8, 0),
            dst_ip=values.get(12, 0),
            protocol=values.get(4, 0),
            src_port=values.get(7, 0),
            dst_port=values.get(11, 0),
        )
        return FlowRecord(
            key=key,
            first_switched=values.get(22, 0),
            last_switched=values.get(21, 0),
            packets=values.get(2, 0),
            bytes=values.get(1, 0),
            tcp_flags=values.get(6, 0),
            sampling_interval=self.sampling_interval,
        )
