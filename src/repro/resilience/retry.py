"""Retry policies and circuit breakers for fallible backends.

The external data sources of Section 4 — the DNSDB passive-DNS store
and the Censys-style scan snapshot — are network services in a real
deployment: they time out, rate-limit and go down.  Two standard
primitives make their consumers robust without spreading ad-hoc
``try/except`` through the pipeline:

* :class:`RetryPolicy` — capped exponential backoff for *transient*
  errors.  Deterministic by default; opting into ``jitter`` draws a
  *full-jitter* delay (``uniform(0, capped)``) from a seeded RNG, so
  fleets of retriers decorrelate while the reproduction's fault-matrix
  tests still get retry schedules that replay exactly (fix ``seed``).
* :class:`CircuitBreaker` — a closed/open/half-open breaker over a
  sliding failure-rate window.  When a backend is *down* (not merely
  flaky), retrying every call wastes the caller's latency budget; the
  breaker fails fast while open and probes with a limited number of
  half-open trial calls after ``reset_seconds``.

Error taxonomy: backends raise :class:`TransientLookupError` for
retryable failures; :func:`call_with_retry` converts retry exhaustion
and open breakers into :class:`LookupUnavailable`, the single error
type the pipeline's degradation paths handle.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, Optional, TypeVar

__all__ = [
    "TransientLookupError",
    "LookupUnavailable",
    "BreakerOpen",
    "RetryPolicy",
    "CircuitBreaker",
    "call_with_retry",
]

T = TypeVar("T")

#: Breaker states.
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class TransientLookupError(RuntimeError):
    """A retryable backend failure (timeout, 5xx, connection reset)."""


class LookupUnavailable(RuntimeError):
    """A lookup failed *after* retries/breaker handling.

    This is the error the degradation paths catch: rule generation
    demotes affected classes instead of emitting over-confident rules,
    the hitlist pipeline falls back to the scan dataset, and so on.
    """


class BreakerOpen(LookupUnavailable):
    """The circuit breaker is open; the call was never attempted."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``base * multiplier**n``, capped.

    ``max_retries`` counts *re*-tries — a policy with ``max_retries=2``
    allows three attempts in total.

    With ``jitter`` enabled each delay is drawn *full-jitter* style —
    ``uniform(0, min(cap, base * multiplier**n))`` — which decorrelates
    synchronized retry herds (e.g. many refreshers hammering a backend
    that just came back).  The draw comes from a ``random.Random``
    seeded from ``seed`` (and, in :meth:`delay`, the attempt number),
    so a fixed seed yields a schedule that replays exactly under test;
    ``seed=None`` derives per-process randomness.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    multiplier: float = 2.0
    jitter: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")

    def delay(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Backoff before re-running attempt number ``attempt`` (0-based
        count of failures so far).

        Without jitter this is the deterministic capped exponential.
        With jitter, a full-jitter draw in ``[0, capped]`` — taken from
        ``rng`` when the caller threads one through a whole retry
        episode, else from a fresh RNG seeded by ``(seed, attempt)`` so
        standalone calls stay reproducible.
        """
        capped = min(
            self.backoff_cap,
            self.backoff_base * self.multiplier ** max(0, attempt),
        )
        if not self.jitter:
            return capped
        if rng is None:
            rng = random.Random(
                f"{self.seed}:{attempt}" if self.seed is not None else None
            )
        return rng.uniform(0.0, capped)

    def delays(self) -> Iterator[float]:
        """The full backoff schedule, one delay per permitted retry."""
        rng = random.Random(self.seed) if self.jitter else None
        for attempt in range(self.max_retries):
            yield self.delay(attempt, rng=rng)


class CircuitBreaker:
    """Closed/open/half-open breaker over a failure-rate window.

    Closed: calls flow; the last ``window`` outcomes are tracked and the
    breaker opens once at least ``min_calls`` outcomes exist and the
    failure rate reaches ``failure_threshold``.  Open: calls are
    rejected (:meth:`allow` is ``False``) until ``reset_seconds`` have
    passed.  Half-open: up to ``half_open_probes`` trial calls are let
    through — one success closes the breaker, one failure re-opens it
    and restarts the timer.

    ``clock`` is injectable so tests (and the fault harness) can drive
    state transitions without sleeping.
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 16,
        min_calls: int = 4,
        reset_seconds: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if window < 1 or min_calls < 1:
            raise ValueError("window and min_calls must be positive")
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_calls = min_calls
        self.reset_seconds = reset_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._state = STATE_CLOSED
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.opened_count = 0
        self.rejected_count = 0

    @property
    def state(self) -> str:
        """Current breaker state (resolving open→half-open lazily)."""
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = STATE_HALF_OPEN
            self._probes_in_flight = 0
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now."""
        state = self.state
        if state == STATE_CLOSED:
            return True
        if state == STATE_HALF_OPEN:
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.rejected_count += 1
            return False
        self.rejected_count += 1
        return False

    def record_success(self) -> None:
        if self.state == STATE_HALF_OPEN:
            # A probe came back healthy: close and forget the episode.
            self._state = STATE_CLOSED
            self._outcomes.clear()
            return
        self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == STATE_HALF_OPEN:
            self._trip()
            return
        self._outcomes.append(False)
        if len(self._outcomes) < self.min_calls:
            return
        failures = sum(1 for ok in self._outcomes if not ok)
        if failures / len(self._outcomes) >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._outcomes.clear()
        self.opened_count += 1


def call_with_retry(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``fn`` under a retry policy and optional circuit breaker.

    Only :class:`TransientLookupError` is retried; anything else is a
    programming error and propagates.  Raises
    :class:`LookupUnavailable` when retries are exhausted and
    :class:`BreakerOpen` when the breaker rejects the call outright.
    """
    policy = policy or RetryPolicy()
    rng = random.Random(policy.seed) if policy.jitter else None
    last: Optional[TransientLookupError] = None
    for attempt in range(policy.max_retries + 1):
        if breaker is not None and not breaker.allow():
            raise BreakerOpen(
                "circuit breaker open; lookup rejected without attempt"
            )
        try:
            result = fn()
        except TransientLookupError as exc:
            last = exc
            if breaker is not None:
                breaker.record_failure()
            if attempt < policy.max_retries:
                sleep(policy.delay(attempt, rng=rng))
            continue
        if breaker is not None:
            breaker.record_success()
        return result
    raise LookupUnavailable(
        f"lookup failed after {policy.max_retries + 1} attempts: {last}"
    ) from last
