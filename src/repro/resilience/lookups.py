"""Resilient adapters over the external lookup backends.

:class:`~repro.dns.dnsdb.PassiveDnsDatabase` and
:class:`~repro.tls.scanner.ScanDataset` stand in for DNSDB and the
Censys snapshot (§4 of the paper) — services that, deployed for real,
time out and go down.  The pipeline never talks to them directly for
fallible access; it goes through these adapters, which route every
query through :func:`~repro.resilience.retry.call_with_retry` under a
shared :class:`~repro.resilience.retry.CircuitBreaker` and account for
what happened in :class:`LookupStats`.

The adapters are *injectable*: the fault harness wraps a healthy
backend in :class:`repro.faults.FlakyProxy` (which raises
:class:`~repro.resilience.retry.TransientLookupError` at a seeded error
rate) and hands it to the same adapter the production path uses — so
the degradation behaviour under test is the behaviour that ships.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.resilience.retry import (
    BreakerOpen,
    CircuitBreaker,
    LookupUnavailable,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "LookupStats",
    "ResilientLookup",
    "ResilientPassiveDns",
    "ResilientScanDataset",
]


@dataclass
class LookupStats:
    """What the resilience layer did for one backend during a run."""

    calls: int = 0
    failures: int = 0
    retries: int = 0
    breaker: Optional[CircuitBreaker] = field(default=None, repr=False)

    @property
    def breaker_opens(self) -> int:
        return self.breaker.opened_count if self.breaker else 0

    @property
    def breaker_rejections(self) -> int:
        return self.breaker.rejected_count if self.breaker else 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "calls": self.calls,
            "failures": self.failures,
            "retries": self.retries,
            "breaker_opens": self.breaker_opens,
            "breaker_rejections": self.breaker_rejections,
        }


class ResilientLookup:
    """Generic retry/breaker proxy over a named set of backend methods.

    Methods listed in ``methods`` are wrapped; everything else (cheap
    attribute access, local state) passes straight through to the
    backend.  Wrapped calls raise
    :class:`~repro.resilience.retry.LookupUnavailable` (or its subclass
    :class:`~repro.resilience.retry.BreakerOpen`) once the resilience
    budget is spent — callers handle exactly one error type.
    """

    def __init__(
        self,
        backend,
        methods: Tuple[str, ...],
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.backend = backend
        self.policy = policy or RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.stats = LookupStats(breaker=self.breaker)
        self._sleep = sleep
        self._methods = frozenset(methods)

    def __getattr__(self, name: str):
        # Only called for names not found on the proxy itself.
        attr = getattr(self.backend, name)
        if name not in self._methods:
            return attr

        def guarded(*args, **kwargs):
            return self._call(attr, *args, **kwargs)

        guarded.__name__ = name
        return guarded

    def _call(self, method, *args, **kwargs):
        self.stats.calls += 1
        attempts = 0

        def attempt():
            nonlocal attempts
            attempts += 1
            return method(*args, **kwargs)

        try:
            result = call_with_retry(
                attempt,
                policy=self.policy,
                breaker=self.breaker,
                sleep=self._sleep,
            )
        except BreakerOpen:
            self.stats.failures += 1
            raise
        except LookupUnavailable:
            self.stats.retries += max(0, attempts - 1)
            self.stats.failures += 1
            raise
        self.stats.retries += max(0, attempts - 1)
        return result


#: Fallible query surface of :class:`repro.dns.dnsdb.PassiveDnsDatabase`.
PASSIVE_DNS_METHODS: Tuple[str, ...] = (
    "has_records",
    "addresses_for_domain",
    "slds_for_address",
    "lookup_rrset",
    "owners_of_address",
    "query_names_for_owner",
    "query_names_for_address",
)

#: Fallible query surface of :class:`repro.tls.scanner.ScanDataset`.
SCAN_DATASET_METHODS: Tuple[str, ...] = (
    "host",
    "services_on",
    "hosts_with_certificate",
    "hosts_matching",
    "certificates_for_domain",
)


class ResilientPassiveDns(ResilientLookup):
    """Retry/breaker wrapper for passive-DNS access."""

    def __init__(self, backend, **kwargs) -> None:
        super().__init__(backend, PASSIVE_DNS_METHODS, **kwargs)


class ResilientScanDataset(ResilientLookup):
    """Retry/breaker wrapper for scan-snapshot access."""

    def __init__(self, backend, **kwargs) -> None:
        super().__init__(backend, SCAN_DATASET_METHODS, **kwargs)
