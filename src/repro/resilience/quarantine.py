"""Ingest quarantine: count, sample, and skip bad flow records.

Real collectors hand the detector truncated NetFlow v9 / IPFIX
packets, half-written flow-file lines, and flows whose tuples are
physically impossible (ports past 65535, timestamps before the epoch,
flows that end before they start).  Raising mid-stream on the first of
15M lines is the wrong failure mode — the paper's pipeline drops the
record, keeps detecting, and reports how much it dropped.

:class:`QuarantineSink` is the accounting: every skipped record is
counted by reason, and the first ``sample_limit`` offenders per reason
are persisted as JSONL so an operator can inspect *what* the collector
is mangling without the sink becoming a second copy of the stream.

:func:`validate_flow_tuple` / :func:`validate_flow_record` are the
semantic checks — they answer "is this flow physically possible?",
returning a reason string (stable, machine-matchable) or ``None``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

__all__ = [
    "QuarantineSink",
    "validate_flow_record",
    "validate_flow_tuple",
]

_MAX_IP = (1 << 32) - 1
_MAX_PORT = 65535
_MAX_PROTO = 255
_MAX_FLAGS = 0xFF


class QuarantineSink:
    """Counts quarantined records by reason; samples a few to disk.

    ``directory=None`` keeps the sink purely in-memory (counters only).
    With a directory, the first ``sample_limit`` records of each reason
    are appended to ``quarantine.jsonl`` inside it.
    """

    def __init__(
        self,
        directory: Optional[Union[str, pathlib.Path]] = None,
        sample_limit: int = 32,
    ) -> None:
        if sample_limit < 0:
            raise ValueError("sample_limit must be >= 0")
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        self.sample_limit = sample_limit
        self.counts: Dict[str, int] = {}

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def record(self, reason: str, payload: object = None) -> None:
        """Account one quarantined record; sample it if under the cap."""
        seen = self.counts.get(reason, 0)
        self.counts[reason] = seen + 1
        if self.directory is None or seen >= self.sample_limit:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"reason": reason, "sample": _printable(payload)}
        with open(self.directory / "quarantine.jsonl", "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True))
            fh.write("\n")

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "by_reason": dict(sorted(self.counts.items())),
        }


def _printable(payload: object) -> object:
    if payload is None or isinstance(payload, (int, float, str, bool)):
        return payload
    if isinstance(payload, bytes):
        return payload[:64].hex()
    return repr(payload)[:256]


def validate_flow_tuple(
    when: int,
    src_ip: int,
    dst_ip: int,
    protocol: int,
    dst_port: int,
    tcp_flags: int,
) -> Optional[str]:
    """Reason string when the tuple is impossible, else ``None``."""
    if when < 0:
        return "negative_timestamp"
    if not 0 <= src_ip <= _MAX_IP:
        return "bad_src_ip"
    if not 0 <= dst_ip <= _MAX_IP:
        return "bad_dst_ip"
    if not 0 <= protocol <= _MAX_PROTO:
        return "bad_protocol"
    if not 0 <= dst_port <= _MAX_PORT:
        return "bad_port"
    if not 0 <= tcp_flags <= _MAX_FLAGS:
        return "bad_flags"
    return None


def validate_flow_record(record) -> Optional[str]:
    """Reason string when a FlowRecord is impossible, else ``None``."""
    reason = validate_flow_tuple(
        record.first_switched,
        record.src_ip,
        record.dst_ip,
        record.protocol,
        record.dst_port,
        record.tcp_flags,
    )
    if reason is not None:
        return reason
    if not 0 <= record.src_port <= _MAX_PORT:
        return "bad_port"
    if record.last_switched < record.first_switched:
        return "time_travel"
    if record.packets < 0 or record.bytes < 0:
        return "negative_counts"
    return None
