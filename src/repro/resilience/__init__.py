"""Fault-tolerant execution layer (:mod:`repro.resilience`).

At ISP scale the pipeline's failure modes stop being exceptional:
worker processes die mid-run, passive-DNS and scan backends flake, and
collectors hand the detector malformed export records.  The paper's
results only matter if the engine *degrades* under those conditions
instead of dying — detections keep flowing, and whatever evidence was
lost is accounted for explicitly.  This package is that layer:

* :mod:`repro.resilience.retry` — the generic primitives:
  :class:`~repro.resilience.retry.RetryPolicy` (capped exponential
  backoff) and :class:`~repro.resilience.retry.CircuitBreaker`
  (closed/open/half-open over a failure-rate window), plus the typed
  errors fallible backends raise;
* :mod:`repro.resilience.supervisor` — the supervised shard pool
  wrapped around :func:`repro.engine.runner.run_wild_isp_sharded`'s
  process fan-out: detects worker death, re-enqueues failed shards
  with backoff, enforces per-shard wall-clock timeouts via worker
  heartbeats, and quarantines poison shards into dead-letter records
  instead of aborting the run;
* :mod:`repro.resilience.lookups` — resilient adapters over
  :class:`~repro.dns.dnsdb.PassiveDnsDatabase` and
  :class:`~repro.tls.scanner.ScanDataset` access, feeding the graceful
  rule degradation in :func:`repro.core.rules.generate_rules`;
* :mod:`repro.resilience.quarantine` — the ingest quarantine sink that
  counts, samples and skips malformed flow records instead of raising
  mid-stream.

Contract: when every retry succeeds, results are bit-identical to a
clean run (shard RNG streams depend only on the shard plan, never on
which attempt produced the result); when they do not, the metrics
document says exactly which cohort-hours are missing.
"""

from repro.resilience.lookups import (
    LookupStats,
    ResilientLookup,
    ResilientPassiveDns,
    ResilientScanDataset,
)
from repro.resilience.quarantine import (
    QuarantineSink,
    validate_flow_record,
    validate_flow_tuple,
)
from repro.resilience.retry import (
    BreakerOpen,
    CircuitBreaker,
    LookupUnavailable,
    RetryPolicy,
    TransientLookupError,
    call_with_retry,
)
from repro.resilience.supervisor import (
    DeadLetter,
    ShardSupervisor,
    SupervisorConfig,
    SupervisorReport,
)

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "DeadLetter",
    "LookupStats",
    "LookupUnavailable",
    "QuarantineSink",
    "ResilientLookup",
    "ResilientPassiveDns",
    "ResilientScanDataset",
    "RetryPolicy",
    "ShardSupervisor",
    "SupervisorConfig",
    "SupervisorReport",
    "TransientLookupError",
    "call_with_retry",
    "validate_flow_record",
    "validate_flow_tuple",
]
