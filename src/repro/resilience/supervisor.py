"""Supervised process-pool execution of shard tasks.

:class:`ShardSupervisor` wraps the ``ProcessPoolExecutor`` fan-out of
:func:`repro.engine.runner.run_wild_isp_sharded` with the supervision a
long ISP-scale run needs:

* **worker death** (``BrokenProcessPool`` — a worker segfaulted, was
  OOM-killed, or exited) is detected, the pool is rebuilt, and affected
  shards are re-enqueued;
* **retries** use capped exponential backoff
  (:class:`~repro.resilience.retry.RetryPolicy`), scheduled on a delay
  queue so backoff never blocks healthy shards;
* **timeouts**: workers heartbeat through per-shard files; a shard
  running past ``shard_timeout`` (or whose heartbeat goes stale) is
  killed and treated as a failure;
* **poison shards** that keep failing are quarantined into
  :class:`DeadLetter` records — the run completes without them and the
  metrics document reports exactly which cohort-hours are missing.

Blame assignment: when the pool breaks, only the task the supervisor
itself killed (timeout) is charged a failure.  Every other shard that
was running is merely *suspect* — it is re-run in an isolated
single-worker pool, so a poison shard convicts itself on its own
evidence and innocent bystanders never burn retry budget on someone
else's crash.

Determinism: a retried shard re-runs the identical
:class:`~repro.engine.worker.ShardTask` (same
:class:`numpy.random.SeedSequence`), so a run whose retries all succeed
is bit-identical to a clean run.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.resilience.retry import RetryPolicy
from repro.runtime.shutdown import StopToken, current_token

__all__ = [
    "DeadLetter",
    "HeartbeatWriter",
    "RestartTracker",
    "ShardEnvelope",
    "ShardSupervisor",
    "SupervisorConfig",
    "SupervisorReport",
    "execute_shard",
    "heartbeat_path",
    "read_heartbeat",
]

#: Seconds between heartbeat-file touches inside a worker.
HEARTBEAT_INTERVAL = 0.2

#: A heartbeat older than ``max(shard_timeout, STALL_GRACE)`` marks a
#: stalled (not merely slow) worker.
STALL_GRACE = 2.0


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision parameters of one sharded run."""

    #: re-enqueues per shard before it is dead-lettered
    max_retries: int = 2
    #: per-shard wall-clock budget (seconds); ``None`` disables
    shard_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: supervisor wake-up granularity while shards run
    poll_interval: float = 0.05
    #: dead-letter records are appended here as JSONL when set
    quarantine_dir: Optional[pathlib.Path] = None

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
        )


@dataclass(frozen=True)
class DeadLetter:
    """A quarantined poison shard: the work the run is missing."""

    index: int
    product: str
    start: int
    stop: int
    days: int
    attempts: int
    error: str

    @property
    def owners(self) -> int:
        return self.stop - self.start

    @property
    def missing_cohort_hours(self) -> int:
        """Owner-hours of evidence this dead letter removed."""
        return self.owners * self.days * 24

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "product": self.product,
            "owner_start": self.start,
            "owner_stop": self.stop,
            "owners": self.owners,
            "days": self.days,
            "missing_cohort_hours": self.missing_cohort_hours,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass
class SupervisorReport:
    """Supervision counters of one run (feeds the metrics document)."""

    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    isolated_runs: int = 0
    dead_letters: List[DeadLetter] = field(default_factory=list)
    #: shards surrendered without a result because the run stopped
    #: early (signal drain or deadline expiry)
    unstarted: int = 0
    #: why admission stopped (``"signal:SIGTERM"``, ``"deadline"``,
    #: …) — ``None`` for a run that consumed its whole queue
    stop_reason: Optional[str] = None

    @property
    def missing_cohort_hours(self) -> int:
        return sum(dl.missing_cohort_hours for dl in self.dead_letters)

    def to_dict(self) -> Dict[str, object]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_restarts": self.pool_restarts,
            "isolated_runs": self.isolated_runs,
            "dead_letters": [dl.to_dict() for dl in self.dead_letters],
            "missing_cohort_hours": self.missing_cohort_hours,
            "unstarted": self.unstarted,
            "stop_reason": self.stop_reason,
        }


@dataclass(frozen=True)
class ShardEnvelope:
    """What crosses the process boundary for one attempt."""

    task: object
    attempt: int
    heartbeat_dir: Optional[str] = None
    faults: Optional[object] = None
    #: module-level callable run on the task; ``None`` selects
    #: :func:`repro.engine.worker.simulate_shard`
    fn: Optional[Callable] = None


class _HeartbeatWriter:
    """Worker-side liveness file refreshed by a daemon thread while the
    shard computes.

    Line format: ``<pid> <started_wall> <started_mono> <last_mono>``.
    The wall-clock column exists for humans inspecting a live run's
    heartbeat directory; staleness decisions use only the monotonic
    columns — ``CLOCK_MONOTONIC`` is a single system-wide timeline on
    Linux, shared by the worker writing the beat and the supervisor
    judging it, so an NTP step or a suspended laptop can neither fake a
    stall nor hide one.  Each beat atomically replaces the file so the
    supervisor never reads a torn line.
    """

    def __init__(self, directory: str, index: int) -> None:
        self.path = _heartbeat_path(directory, index)
        self._started_wall = 0.0
        self._started_mono = 0.0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> "_HeartbeatWriter":
        self._started_wall = time.time()
        self._started_mono = time.monotonic()
        self._write()
        self._thread.start()
        return self

    def _write(self) -> None:
        temp = self.path.with_name(self.path.name + ".tmp")
        # repr() round-trips floats exactly; %.3f can round a
        # monotonic timestamp *up*, making the heartbeat appear to be
        # from the future next to a fresh time.monotonic() reading.
        temp.write_text(
            f"{os.getpid()} {self._started_wall!r} "
            f"{self._started_mono!r} {time.monotonic()!r}"
        )
        os.replace(temp, self.path)

    def _beat(self) -> None:
        while not self._stop.wait(HEARTBEAT_INTERVAL):
            try:
                self._write()
            except OSError:
                return

    def __exit__(self, *exc_info) -> None:
        self._stop.set()


def _heartbeat_path(directory: str, index: int) -> pathlib.Path:
    """Heartbeat file for worker ``index`` under ``directory``."""
    return pathlib.Path(directory) / f"hb-{index:06d}"


def _read_heartbeat(
    directory: str, index: int
) -> Optional[Tuple[int, float, float]]:
    """``(pid, started_monotonic, last_beat_monotonic)`` or ``None``."""
    path = _heartbeat_path(directory, index)
    try:
        pid_text, _wall, started_text, last_text = (
            path.read_text().split()
        )
        return int(pid_text), float(started_text), float(last_text)
    except (OSError, ValueError):
        return None


# Public names for the heartbeat machinery.  Batch shards were the
# first consumer; long-lived stream-fleet workers (repro.fleet) beat
# through the exact same files and staleness rules, so the pieces are
# part of this module's contract rather than private helpers.
HeartbeatWriter = _HeartbeatWriter
heartbeat_path = _heartbeat_path
read_heartbeat = _read_heartbeat


class RestartTracker:
    """Capped-backoff restart budget for one long-lived worker.

    :class:`ShardSupervisor` retries *tasks* — a shard is re-enqueued
    until its budget runs out.  A fleet supervises *processes*: a
    stream worker that dies is restarted in place (same ring slots,
    resume from its own checkpoint) until the budget runs out, at which
    point it is quarantined and its slots rebalance to a successor.
    This tracker is that budget: :meth:`next_delay` returns the backoff
    before the next restart, or ``None`` once the policy is exhausted
    (the quarantine decision).
    """

    __slots__ = ("policy", "attempts")

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.attempts = 0

    @property
    def exhausted(self) -> bool:
        return self.attempts >= self.policy.max_retries

    def next_delay(self) -> Optional[float]:
        """Backoff before the next restart; ``None`` = quarantine."""
        if self.exhausted:
            return None
        delay = self.policy.delay(self.attempts)
        self.attempts += 1
        return delay


def execute_shard(envelope: ShardEnvelope):
    """Worker-side entry point: heartbeat, inject faults, simulate."""
    if envelope.fn is None:
        from repro.engine.worker import simulate_shard

        fn = simulate_shard
    else:
        fn = envelope.fn
    if envelope.heartbeat_dir is None:
        if envelope.faults is not None:
            envelope.faults.apply(envelope.task.index, envelope.attempt)
        return fn(envelope.task)
    with _HeartbeatWriter(envelope.heartbeat_dir, envelope.task.index):
        if envelope.faults is not None:
            envelope.faults.apply(envelope.task.index, envelope.attempt)
        return fn(envelope.task)


class ShardSupervisor:
    """Run shard tasks to completion under retry/timeout supervision."""

    def __init__(
        self,
        pool_size: int,
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = pool_size
        self.config = config or SupervisorConfig()
        self.report = SupervisorReport()

    # -- public API ----------------------------------------------------

    def run(
        self,
        tasks,
        faults=None,
        fn: Optional[Callable] = None,
        stop_token: Optional[StopToken] = None,
        governor=None,
        deadline=None,
    ) -> Tuple[List[object], SupervisorReport]:
        """Execute every task; returns (results sorted by task index,
        report).  Dead-lettered tasks have no result entry.

        Runtime guards: ``stop_token`` (defaulting to the active
        :func:`~repro.runtime.shutdown.current_token`) and ``deadline``
        stop *admission* — in-flight shards finish and keep their
        results, queued shards are surrendered and counted in
        ``report.unstarted`` with the cause in ``report.stop_reason``.
        A ``governor`` (:class:`~repro.runtime.memory.MemoryGovernor`)
        under pressure steps the effective pool size down one slot per
        shed, each step counted as a ``shard_admission_reduced``
        action.
        """
        self.report = SupervisorReport()
        results: Dict[int, object] = {}
        if not tasks:
            return [], self.report
        if stop_token is None:
            stop_token = current_token()
        with tempfile.TemporaryDirectory(
            prefix="repro-supervise-"
        ) as hb_dir:
            self._run_pool(
                list(tasks), results, hb_dir, faults, fn,
                stop_token, governor, deadline,
            )
        self._persist_dead_letters()
        return [results[index] for index in sorted(results)], self.report

    # -- main supervision loop ----------------------------------------

    def _run_pool(
        self, tasks, results, hb_dir, faults, fn,
        stop_token=None, governor=None, deadline=None,
    ) -> None:
        config = self.config
        policy = config.retry_policy()
        pending: Deque[Tuple[object, int]] = deque(
            (task, 0) for task in tasks
        )
        delayed: List[Tuple[float, object, int]] = []
        suspects: Deque[Tuple[object, int]] = deque()
        killed: Dict[int, str] = {}
        executor = self._spawn()
        running: Dict[Future, Tuple[object, int]] = {}
        effective_pool = self.pool_size
        try:
            while pending or delayed or suspects or running:
                if self.report.stop_reason is None:
                    reason = self._guard_reason(stop_token, deadline)
                    if reason is not None:
                        self.report.stop_reason = reason
                if self.report.stop_reason is not None and (
                    pending or delayed or suspects
                ):
                    # Stop admitting: queued work (including retries
                    # scheduled mid-drain) is surrendered; in-flight
                    # shards finish and keep their results.
                    self.report.unstarted += (
                        len(pending) + len(delayed) + len(suspects)
                    )
                    pending.clear()
                    delayed = []
                    suspects.clear()
                    if not running:
                        break
                if (
                    governor is not None
                    and governor.tick(governor.sample_every)
                    and effective_pool > 1
                ):
                    effective_pool -= 1
                    governor.record_action(
                        "shard_admission_reduced", units=1
                    )
                now = time.monotonic()
                if delayed:
                    ready = [e for e in delayed if e[0] <= now]
                    if ready:
                        delayed = [e for e in delayed if e[0] > now]
                        for _, task, attempt in sorted(
                            ready, key=lambda e: e[1].index
                        ):
                            pending.append((task, attempt))
                while suspects and not running:
                    # Isolation: probe crash suspects one at a time in
                    # their own pool so blame lands on the guilty shard.
                    task, attempt = suspects.popleft()
                    self._run_isolated(
                        task, attempt, results, hb_dir, faults, fn,
                        policy, delayed,
                    )
                while pending and len(running) < effective_pool:
                    task, attempt = pending.popleft()
                    envelope = ShardEnvelope(
                        task, attempt, hb_dir, faults, fn
                    )
                    running[executor.submit(execute_shard, envelope)] = (
                        task,
                        attempt,
                    )
                if not running:
                    if delayed:
                        time.sleep(
                            max(
                                0.0,
                                min(e[0] for e in delayed)
                                - time.monotonic(),
                            )
                        )
                    continue
                done, _ = wait(
                    running,
                    timeout=config.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    task, attempt = running.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        error = killed.pop(task.index, None)
                        if error is not None:
                            self._fail(
                                task, attempt, error, policy, delayed
                            )
                        else:
                            suspects.append((task, attempt))
                    except Exception as exc:  # worker raised cleanly
                        self._fail(
                            task,
                            attempt,
                            f"{type(exc).__name__}: {exc}",
                            policy,
                            delayed,
                        )
                    else:
                        results[task.index] = result
                        self._clear_heartbeat(hb_dir, task.index)
                if broken:
                    self.report.pool_restarts += 1
                    for future, (task, attempt) in running.items():
                        error = killed.pop(task.index, None)
                        if error is not None:
                            self._fail(
                                task, attempt, error, policy, delayed
                            )
                        elif (
                            _read_heartbeat(hb_dir, task.index)
                            is not None
                        ):
                            # Was executing when the pool died: suspect.
                            suspects.append((task, attempt))
                        else:
                            # Never started: an innocent queue entry.
                            pending.append((task, attempt))
                        self._clear_heartbeat(hb_dir, task.index)
                    running.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = self._spawn()
                elif config.shard_timeout is not None:
                    self._enforce_timeouts(running, hb_dir, killed)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _guard_reason(stop_token, deadline) -> Optional[str]:
        """Why admission should stop now, or ``None``."""
        if stop_token is not None and stop_token.stop_requested():
            return stop_token.reason or "stop"
        if deadline is not None and deadline.expired():
            return deadline.reason
        return None

    def _spawn(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.pool_size)

    def _enforce_timeouts(self, running, hb_dir, killed) -> None:
        """SIGKILL workers whose shard overran its wall-clock budget or
        whose heartbeat stalled; the resulting pool break is attributed
        to exactly that shard via ``killed``."""
        timeout = self.config.shard_timeout
        stale_after = max(timeout, STALL_GRACE)
        now = time.monotonic()
        for task, _attempt in running.values():
            if task.index in killed:
                continue
            beat = _read_heartbeat(hb_dir, task.index)
            if beat is None:
                continue
            pid, started, last_beat = beat
            overrun = now - started > timeout
            stalled = now - last_beat > stale_after
            if not (overrun or stalled):
                continue
            reason = (
                f"shard timeout: exceeded {timeout:.3f}s wall clock"
                if overrun
                else f"shard stalled: no heartbeat for {stale_after:.3f}s"
            )
            killed[task.index] = reason
            self.report.timeouts += 1
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass

    def _run_isolated(
        self, task, attempt, results, hb_dir, faults, fn, policy, delayed
    ) -> None:
        """Re-run one crash suspect alone in a single-use pool."""
        self.report.isolated_runs += 1
        envelope = ShardEnvelope(task, attempt, hb_dir, faults, fn)
        executor = ProcessPoolExecutor(max_workers=1)
        try:
            future = executor.submit(execute_shard, envelope)
            deadline = (
                time.monotonic() + self.config.shard_timeout
                if self.config.shard_timeout is not None
                else None
            )
            while True:
                done, _ = wait(
                    [future],
                    timeout=self.config.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                if done:
                    break
                if deadline is not None and time.monotonic() > deadline:
                    beat = _read_heartbeat(hb_dir, task.index)
                    if beat is not None:
                        try:
                            os.kill(beat[0], signal.SIGKILL)
                        except OSError:
                            pass
                    self.report.timeouts += 1
                    self._fail(
                        task,
                        attempt,
                        "shard timeout: exceeded "
                        f"{self.config.shard_timeout:.3f}s wall clock "
                        "(isolated)",
                        policy,
                        delayed,
                    )
                    wait([future], timeout=1.0)
                    return
            try:
                results[task.index] = future.result()
            except BrokenProcessPool:
                # Alone in the pool: the crash is definitively its own.
                self._fail(
                    task,
                    attempt,
                    "worker process died (isolated)",
                    policy,
                    delayed,
                )
            except Exception as exc:
                self._fail(
                    task,
                    attempt,
                    f"{type(exc).__name__}: {exc}",
                    policy,
                    delayed,
                )
        finally:
            self._clear_heartbeat(hb_dir, task.index)
            executor.shutdown(wait=False, cancel_futures=True)

    def _fail(self, task, attempt, error, policy, delayed) -> None:
        """Record one attempt's failure: backoff-retry or dead-letter."""
        if attempt < policy.max_retries:
            self.report.retries += 1
            delayed.append(
                (
                    time.monotonic() + policy.delay(attempt),
                    task,
                    attempt + 1,
                )
            )
            return
        plan = getattr(task, "plan", None)
        self.report.dead_letters.append(
            DeadLetter(
                index=task.index,
                product=getattr(plan, "product", "?"),
                start=getattr(task, "start", 0),
                stop=getattr(task, "stop", 0),
                days=getattr(task, "days", 0),
                attempts=attempt + 1,
                error=error,
            )
        )

    @staticmethod
    def _clear_heartbeat(hb_dir: str, index: int) -> None:
        try:
            _heartbeat_path(hb_dir, index).unlink()
        except OSError:
            pass

    def _persist_dead_letters(self) -> None:
        directory = self.config.quarantine_dir
        if directory is None or not self.report.dead_letters:
            return
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / "dead_letters.jsonl", "a") as fh:
            for letter in self.report.dead_letters:
                fh.write(json.dumps(letter.to_dict(), sort_keys=True))
                fh.write("\n")
