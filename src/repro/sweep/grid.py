"""Declarative sweep grids: axis value lists -> cell lists.

A grid maps axis names (see :data:`repro.sweep.axes.AXES`) to value
lists; :meth:`SweepGrid.cells` expands the cartesian product into
:class:`~repro.sweep.axes.SweepCell` instances in a deterministic
order.  Three presets ship:

* ``quick``   — 8 cells: the baseline plus one-axis perturbations of
  CGNAT, sampling, and mimicry.  CI smoke + the differential matrix.
* ``paper``   — the realism grid: sampling 1/100..1/10000 crossed with
  churn and CGNAT pool sizes (the paper's granularity assumptions).
* ``adversarial`` — mimicry x hiding x CGNAT (threat-model pressure).

Custom grids load from JSON: ``{"name": ..., "axes": {axis: [...]}}``.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple, Union

from repro.sweep.axes import AXES, SweepCell

__all__ = ["SweepGrid", "GRID_PRESETS", "load_grid"]


@dataclass(frozen=True)
class SweepGrid:
    """A named cartesian product over scenario axes."""

    name: str
    axes: Mapping[str, Tuple[object, ...]]

    def __post_init__(self) -> None:
        unknown = set(self.axes) - set(AXES)
        if unknown:
            raise ValueError(f"unknown sweep axes: {sorted(unknown)}")
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")

    @property
    def cell_count(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def cells(self) -> List[SweepCell]:
        """Expand the product; unlisted axes stay at their baseline."""
        names = [axis for axis in AXES if axis in self.axes]
        cells = [
            SweepCell(**dict(zip(names, combo)))
            for combo in itertools.product(
                *(self.axes[axis] for axis in names)
            )
        ]
        return sorted(cells, key=lambda cell: cell.cell_id)


GRID_PRESETS: Dict[str, SweepGrid] = {
    "quick": SweepGrid(
        name="quick",
        axes={
            "cgnat_pool": (1, 16),
            "sampling": (100, 1000),
            "mimicry": (0.0, 0.10),
        },
    ),
    "paper": SweepGrid(
        name="paper",
        axes={
            "cgnat_pool": (1, 4, 16),
            "churn": (0.0, 0.05),
            "sampling": (100, 1000, 10000),
        },
    ),
    "adversarial": SweepGrid(
        name="adversarial",
        axes={
            "cgnat_pool": (1, 64),
            "mimicry": (0.0, 0.10, 0.30),
            "hiding": (0.0, 0.25, 0.50),
        },
    ),
}


def load_grid(spec: Union[str, pathlib.Path]) -> SweepGrid:
    """Resolve a preset name or a JSON grid file path."""
    key = str(spec)
    if key in GRID_PRESETS:
        return GRID_PRESETS[key]
    path = pathlib.Path(spec)
    if not path.is_file():
        raise ValueError(
            f"unknown grid {spec!r}: not a preset "
            f"({', '.join(sorted(GRID_PRESETS))}) and not a file"
        )
    document = json.loads(path.read_text(encoding="utf-8"))
    axes = document.get("axes")
    if not isinstance(axes, dict) or not axes:
        raise ValueError(f"grid file {path} needs a non-empty 'axes' map")
    return SweepGrid(
        name=str(document.get("name", path.stem)),
        axes={axis: tuple(values) for axis, values in axes.items()},
    )
