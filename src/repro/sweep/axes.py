"""Scenario axes and per-cell ground-truth flow synthesis.

A :class:`SweepCell` fixes one value per axis.  The axes stress the
paper's three load-bearing assumptions:

* ``cgnat_pool`` / ``churn`` — per-line granularity and stable
  addressing (NAT pools and re-assignment break the line<->address
  bijection);
* ``sampling`` — sampled-flow visibility (1/100 .. 1/10000);
* ``mimicry`` / ``hiding`` — adversarial pressure: non-IoT hosts
  replaying device endpoint patterns (false positives) and owners whose
  device traffic never reaches the vantage point (false negatives).

:func:`synthesize_cell` composes the generator layers — device traffic
for owners, replayed patterns for mimics, background noise for
everyone — into one sorted ``haystack-flows v1`` text plus the
:class:`CellTruth` needed to score detections against it.  Everything
is deterministic given the cell and a base seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.cloud.addressing import ip_to_str
from repro.core.rules import RuleSet
from repro.isp.adversary import assign_hidden, assign_mimics
from repro.isp.cgnat import AddressPlan
from repro.timeutil import SECONDS_PER_DAY, STUDY_START

__all__ = [
    "AXES",
    "SweepCell",
    "TrafficModel",
    "CellTruth",
    "leaf_classes",
    "class_pattern_domains",
    "endpoint_directory",
    "cell_seed",
    "synthesize_cell",
]

#: Axis name -> (baseline value, description).  Order defines cell-id
#: layout and scorecard columns.
AXES = {
    "cgnat_pool": (1, "subscriber lines behind one public address"),
    "churn": (0.0, "daily address re-assignment probability"),
    "sampling": (100, "packet sampling interval (1/N)"),
    "mimicry": (0.0, "fraction of non-owners replaying IoT patterns"),
    "hiding": (0.0, "fraction of owners with hidden device traffic"),
}


@dataclass(frozen=True)
class SweepCell:
    """One point in the scenario grid."""

    cgnat_pool: int = 1
    churn: float = 0.0
    sampling: int = 100
    mimicry: float = 0.0
    hiding: float = 0.0

    def __post_init__(self) -> None:
        if self.cgnat_pool < 1:
            raise ValueError("cgnat_pool must be >= 1")
        if self.sampling < 1:
            raise ValueError("sampling must be >= 1")
        for name in ("churn", "mimicry", "hiding"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")

    @property
    def cell_id(self) -> str:
        return (
            f"cgnat{self.cgnat_pool:03d}"
            f"-churn{self.churn:.3f}"
            f"-samp{self.sampling:05d}"
            f"-mim{self.mimicry:.2f}"
            f"-hide{self.hiding:.2f}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in AXES}


@dataclass(frozen=True)
class TrafficModel:
    """Scale knobs shared by every cell of a sweep run.

    ``wire_packets_per_domain_day`` is the pre-sampling packet count a
    device sends each monitored domain per day; a cell observes
    ``Binomial(wire, 1/sampling)`` of them, which is what makes the
    sampling axis bite.
    """

    lines: int = 240
    days: int = 2
    owner_fraction: float = 0.25
    wire_packets_per_domain_day: int = 600
    background_flows_per_line_day: int = 2

    def __post_init__(self) -> None:
        if self.lines < 4:
            raise ValueError("need at least 4 lines")
        if self.days < 1:
            raise ValueError("need at least one day")
        if not 0.0 < self.owner_fraction < 1.0:
            raise ValueError("owner_fraction must be in (0, 1)")


@dataclass(frozen=True)
class CellTruth:
    """Ground truth for one synthesised cell."""

    #: line index -> leaf class it owns (hidden owners included)
    owners: Dict[int, str]
    #: owner lines whose device traffic was never emitted
    hidden: FrozenSet[int]
    #: line index -> leaf class it mimics (never in the truth)
    mimics: Dict[int, str]
    #: study-day indices with traffic
    days: Tuple[int, ...]

    def truth_lines(self, rules: RuleSet) -> Dict[str, FrozenSet[int]]:
        """Class name -> lines that truly own a device of that class.

        An owner of leaf ``L`` is ground truth for ``L`` and every
        ancestor class (the detector reports the whole chain).
        """
        truth: Dict[str, set] = {}
        for line, leaf in self.owners.items():
            for name in (leaf, *rules.ancestors(leaf)):
                truth.setdefault(name, set()).add(line)
        return {name: frozenset(lines) for name, lines in truth.items()}


def leaf_classes(rules: RuleSet) -> Tuple[str, ...]:
    """Classes that are no rule's parent — concrete device patterns."""
    parents = {rule.parent for rule in rules if rule.parent is not None}
    return tuple(
        name for name in sorted(rules.class_names()) if name not in parents
    )


def class_pattern_domains(rules: RuleSet) -> Dict[str, Tuple[str, ...]]:
    """Leaf class -> full endpoint pattern a device of it contacts.

    A real device satisfies its leaf rule *and* every ancestor rule, so
    its observable pattern is the union of the whole chain's domains.
    """
    patterns: Dict[str, Tuple[str, ...]] = {}
    for leaf in leaf_classes(rules):
        seen: Dict[str, None] = {}
        for name in (leaf, *rules.ancestors(leaf)):
            for fqdn in rules.rule(name).domains:
                seen.setdefault(fqdn, None)
        patterns[leaf] = tuple(seen)
    return patterns


def endpoint_directory(hitlist) -> Dict[int, Dict[str, List[Tuple[int, int]]]]:
    """Per study day: fqdn -> sorted ``(address, port)`` endpoints."""
    directory: Dict[int, Dict[str, List[Tuple[int, int]]]] = {}
    for day, endpoints in hitlist.daily_endpoints.items():
        by_name: Dict[str, List[Tuple[int, int]]] = {}
        for (address, port), fqdn in endpoints.items():
            by_name.setdefault(fqdn, []).append((address, port))
        directory[day] = {
            fqdn: sorted(pairs) for fqdn, pairs in by_name.items()
        }
    return directory


def cell_seed(cell: SweepCell, base_seed: int) -> int:
    """Deterministic per-cell RNG seed: base mixed with the cell id."""
    return (base_seed << 32) ^ zlib.crc32(cell.cell_id.encode("ascii"))


# ----------------------------------------------------------------------
# generator layers

#: (when, line, day, dst_address, dst_port) — rendered to CSV last so
#: the address plan can translate line -> source address per day.
_Event = Tuple[int, int, int, int, int]


def _pattern_layer(
    rng: np.random.Generator,
    assignment: Dict[int, str],
    patterns: Dict[str, Tuple[str, ...]],
    endpoints: Dict[int, Dict[str, List[Tuple[int, int]]]],
    days: Sequence[int],
    sampling: int,
    model: TrafficModel,
) -> List[_Event]:
    """Sampled flows of lines replaying a class pattern.

    Shared by real owners and mimics: a mimic is, by definition,
    indistinguishable on the wire, so it uses the same generator with a
    different line->class assignment.
    """
    events: List[_Event] = []
    probability = 1.0 / sampling
    for line, leaf in sorted(assignment.items()):
        for day in days:
            day_endpoints = endpoints.get(day, {})
            base = STUDY_START + day * SECONDS_PER_DAY
            for fqdn in patterns[leaf]:
                candidates = day_endpoints.get(fqdn)
                if not candidates:
                    continue
                observed = int(
                    rng.binomial(
                        model.wire_packets_per_domain_day, probability
                    )
                )
                if observed == 0:
                    continue
                whens = base + rng.integers(
                    0, SECONDS_PER_DAY, size=observed
                )
                picks = rng.integers(0, len(candidates), size=observed)
                for when, pick in zip(whens, picks):
                    address, port = candidates[int(pick)]
                    events.append(
                        (int(when), line, day, address, port)
                    )
    return events


def _background_layer(
    rng: np.random.Generator,
    lines: int,
    endpoints: Dict[int, Dict[str, List[Tuple[int, int]]]],
    days: Sequence[int],
    model: TrafficModel,
) -> List[_Event]:
    """Non-IoT noise from every line to off-hitlist destinations."""
    monitored = {
        pair
        for per_day in endpoints.values()
        for pairs in per_day.values()
        for pair in pairs
    }
    events: List[_Event] = []
    for day in days:
        base = STUDY_START + day * SECONDS_PER_DAY
        count = lines * model.background_flows_per_line_day
        whens = base + rng.integers(0, SECONDS_PER_DAY, size=count)
        targets = 0x08000000 + rng.integers(0, 1 << 16, size=count)
        for index in range(count):
            address = int(targets[index])
            if (address, 443) in monitored:
                continue
            events.append(
                (int(whens[index]), index % lines, day, address, 443)
            )
    return events


def synthesize_cell(
    rules: RuleSet,
    hitlist,
    cell: SweepCell,
    model: TrafficModel,
    plan: AddressPlan,
    base_seed: int,
) -> Tuple[str, CellTruth]:
    """Flow-file text + ground truth for one cell.

    Layer order: owner device traffic (minus hidden owners), mimic
    traffic, background noise; the merged events are time-sorted and
    rendered through ``plan`` so CGNAT/churn shape the source
    addresses the detector actually sees.
    """
    rng = np.random.default_rng(cell_seed(cell, base_seed))
    patterns = class_pattern_domains(rules)
    leaves = sorted(patterns)
    endpoints = endpoint_directory(hitlist)
    days = tuple(
        day for day in sorted(endpoints) if day < model.days
    )
    if not days:
        raise ValueError("hitlist has no endpoint days in the window")

    all_lines = np.arange(model.lines, dtype=np.int64)
    owner_count = max(1, int(round(model.owner_fraction * model.lines)))
    owner_lines = np.sort(
        rng.choice(all_lines, size=owner_count, replace=False)
    )
    owners = {
        int(line): leaves[i % len(leaves)]
        for i, line in enumerate(owner_lines)
    }
    hidden = assign_hidden(rng, owner_lines, cell.hiding)
    non_owners = np.setdiff1d(all_lines, owner_lines)
    mimics = assign_mimics(rng, non_owners, leaves, cell.mimicry)
    truth = CellTruth(
        owners=owners, hidden=hidden, mimics=mimics, days=days
    )

    visible = {
        line: leaf for line, leaf in owners.items() if line not in hidden
    }
    events = _pattern_layer(
        rng, visible, patterns, endpoints, days, cell.sampling, model
    )
    events += _pattern_layer(
        rng, mimics, patterns, endpoints, days, cell.sampling, model
    )
    events += _background_layer(
        rng, model.lines, endpoints, days, model
    )
    events.sort()

    addresses = {day: plan.addresses_for_day(day) for day in days}
    sports = rng.integers(1024, 65536, size=max(1, len(events)))
    out = [
        f"# haystack-flows v1 sampling={cell.sampling}",
        f"# sweep cell {cell.cell_id}",
    ]
    for index, (when, line, day, address, port) in enumerate(events):
        src = ip_to_str(int(addresses[day][line]))
        out.append(
            f"{when},{when + 30},{src},{ip_to_str(address)},6,"
            f"{int(sports[index])},{port},1,64,0x10"
        )
    return "\n".join(out) + "\n", truth
