"""Aggregate per-cell metrics into a scorecard + markdown table.

The scorecard (``repro.sweep.scorecard/1``) names a *baseline* cell —
the least adversarial point of the grid (no CGNAT, no churn, no
mimicry, no hiding, densest sampling) — and reports every cell's
precision/recall/F1/median-TTD next to the baseline's, so an axis's
damage is readable as a delta down a column.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["SCORECARD_SCHEMA", "build_scorecard", "render_markdown"]

SCORECARD_SCHEMA = "repro.sweep.scorecard/1"


def _baseline_key(document: Dict[str, object]):
    cell = document["cell"]
    return (
        cell["cgnat_pool"],
        cell["mimicry"],
        cell["hiding"],
        cell["churn"],
        cell["sampling"],
    )


def build_scorecard(
    documents: List[Dict[str, object]], grid_name: str
) -> Dict[str, object]:
    """One row per cell, plus the baseline cell id and equality tally."""
    if not documents:
        raise ValueError("cannot build a scorecard from zero cells")
    ordered = sorted(documents, key=lambda doc: doc["cell_id"])
    baseline = min(ordered, key=_baseline_key)
    rows = []
    for document in ordered:
        score = document["score"]
        rows.append(
            {
                "cell_id": document["cell_id"],
                "cell": document["cell"],
                "flows": document["flows"],
                "detections": document["detections"],
                "tp": score["tp"],
                "fp": score["fp"],
                "fn": score["fn"],
                "precision": score["precision"],
                "recall": score["recall"],
                "f1": score["f1"],
                "median_ttd_seconds": score["median_ttd_seconds"],
                "per_record_rps": document["throughput"][
                    "per_record_rps"
                ],
                "columnar_rps": document["throughput"]["columnar_rps"],
                "paths_equal": document["paths_equal"],
            }
        )
    return {
        "schema": SCORECARD_SCHEMA,
        "grid": grid_name,
        "cells": len(rows),
        "baseline_cell_id": baseline["cell_id"],
        "all_paths_equal": all(row["paths_equal"] for row in rows),
        "rows": rows,
    }


def _fmt(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "—"
    return f"{value:.{digits}f}"


def _fmt_rate(value: Optional[float]) -> str:
    if not value:
        return "—"
    return f"{value / 1000:.0f}k"


def render_markdown(scorecard: Dict[str, object]) -> str:
    """The scorecard as a GitHub-flavoured markdown table."""
    lines = [
        f"# Sweep scorecard — grid `{scorecard['grid']}`",
        "",
        f"{scorecard['cells']} cells; baseline "
        f"`{scorecard['baseline_cell_id']}`; per-record == columnar in "
        f"{'all' if scorecard['all_paths_equal'] else 'NOT all'} cells.",
        "",
        "| cell | pool | churn | 1/N | mimic | hide | P | R | F1 "
        "| TTD (h) | rec/s (col) | = |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for row in scorecard["rows"]:
        cell = row["cell"]
        ttd = row["median_ttd_seconds"]
        marker = "baseline " if (
            row["cell_id"] == scorecard["baseline_cell_id"]
        ) else ""
        lines.append(
            "| {id} | {pool} | {churn:.2f} | {samp} | {mim:.2f} "
            "| {hide:.2f} | {p} | {r} | {f1} | {ttd} | {rps} "
            "| {eq} |".format(
                id=f"{marker}`{row['cell_id']}`",
                pool=cell["cgnat_pool"],
                churn=cell["churn"],
                samp=cell["sampling"],
                mim=cell["mimicry"],
                hide=cell["hiding"],
                p=_fmt(row["precision"]),
                r=_fmt(row["recall"]),
                f1=_fmt(row["f1"]),
                ttd=(
                    "—" if ttd is None else f"{ttd / 3600:.1f}"
                ),
                rps=_fmt_rate(row["columnar_rps"]),
                eq="yes" if row["paths_equal"] else "NO",
            )
        )
    lines.append("")
    return "\n".join(lines)
