"""Scenario-matrix sweep: adversarial/realism grids over the detector.

``repro.sweep`` turns the repro into an evaluation instrument.  A
*cell* fixes one value per scenario axis (CGNAT pool size, churn rate,
sampling interval, mimicry fraction, device-hiding fraction); a *grid*
is the cartesian product of axis value lists.  Every cell synthesises a
ground-truth world on top of the ISP substrate, runs
:func:`~repro.pipeline.assemble.run_flow_detection` through **both**
the per-record and columnar paths, scores the detections against the
truth, and emits one ``repro.sweep.metrics/1`` JSON.  The scorecard
aggregates cells into a precision/recall/F1/time-to-detection table.
"""

from repro.sweep.axes import (
    CellTruth,
    SweepCell,
    TrafficModel,
    class_pattern_domains,
    leaf_classes,
    synthesize_cell,
)
from repro.sweep.grid import GRID_PRESETS, SweepGrid, load_grid
from repro.sweep.runner import SweepResult, run_cell, run_sweep
from repro.sweep.scorecard import build_scorecard, render_markdown

__all__ = [
    "CellTruth",
    "SweepCell",
    "TrafficModel",
    "class_pattern_domains",
    "leaf_classes",
    "synthesize_cell",
    "GRID_PRESETS",
    "SweepGrid",
    "load_grid",
    "SweepResult",
    "run_cell",
    "run_sweep",
    "build_scorecard",
    "render_markdown",
]
