"""Cell execution: synthesise -> detect twice -> score -> metrics JSON.

Every cell runs :func:`~repro.pipeline.assemble.run_flow_detection`
through **both** the per-record and the columnar path over the exact
same synthesised flow text, with a fresh
:class:`~repro.pipeline.flow.AddressKeying` each, and records whether
the two paths agreed (``paths_equal``) — the sweep doubles as the
broadest cross-path equivalence harness the repo has.  Scoring inverts
the cell's :class:`~repro.isp.cgnat.AddressPlan`: a detection names an
address, and every line that address could name on the detection day
is flagged, which is exactly how CGNAT erodes precision.
"""

from __future__ import annotations

import io
import json
import pathlib
import statistics
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cloud.addressing import Prefix, str_to_ip
from repro.core.rules import RuleSet
from repro.isp.cgnat import AddressPlan, build_address_plan
from repro.pipeline.assemble import run_flow_detection
from repro.pipeline.config import PipelineConfig
from repro.pipeline.flow import AddressKeying
from repro.runtime.workers import resolve_workers
from repro.sweep.axes import (
    CellTruth,
    SweepCell,
    TrafficModel,
    cell_seed,
    synthesize_cell,
)
from repro.sweep.grid import SweepGrid
from repro.sweep.scorecard import build_scorecard, render_markdown
from repro.timeutil import STUDY_START, day_index

__all__ = [
    "CELL_SCHEMA",
    "DEFAULT_SWEEP_SPACE",
    "SweepResult",
    "run_cell",
    "run_sweep",
]

CELL_SCHEMA = "repro.sweep.metrics/1"

#: Address space for artifact-only runs (no scenario to carve from).
DEFAULT_SWEEP_SPACE = Prefix(0x0A000000, 12)

#: Metric fields that must agree between the two paths for a cell to
#: count as equivalent (timing fields legitimately differ).
_EQUAL_FIELDS = (
    "records_processed",
    "flows_matched",
    "flows_rejected_spoof",
    "records_quarantined",
)


def _detect(
    rules: RuleSet,
    hitlist,
    text: str,
    threshold: float,
    columnar: bool,
    chunk_size: int,
):
    config = PipelineConfig.from_args(
        threshold=threshold, columnar=columnar, chunk_size=chunk_size
    )
    result = run_flow_detection(
        rules, hitlist, io.StringIO(text), config, keying=AddressKeying()
    )
    return result


def _score(
    rules: RuleSet,
    truth: CellTruth,
    plan: AddressPlan,
    detections,
) -> Dict[str, object]:
    truth_map = truth.truth_lines(rules)
    flagged: Dict[str, set] = {}
    first_hit: Dict[Tuple[str, int], int] = {}
    for det in detections:
        day = day_index(det.detected_at)
        lines = plan.lines_for_address(str_to_ip(det.subscriber), day)
        bucket = flagged.setdefault(det.class_name, set())
        for line in lines:
            line = int(line)
            bucket.add(line)
            if line in truth_map.get(det.class_name, ()):
                key = (det.class_name, line)
                seen = first_hit.get(key)
                if seen is None or det.detected_at < seen:
                    first_hit[key] = det.detected_at
    tp = fp = fn = 0
    for name, lines in flagged.items():
        true_lines = truth_map.get(name, frozenset())
        tp += len(lines & true_lines)
        fp += len(lines - true_lines)
    for name, true_lines in truth_map.items():
        fn += len(true_lines - flagged.get(name, set()))
    precision = tp / (tp + fp) if tp + fp else None
    recall = tp / (tp + fn) if tp + fn else None
    if precision is None or recall is None:
        f1 = None
    elif precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    lags = [when - STUDY_START for when in first_hit.values()]
    return {
        "tp": tp,
        "fp": fp,
        "fn": fn,
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "median_ttd_seconds": (
            float(statistics.median(lags)) if lags else None
        ),
    }


def run_cell(
    rules: RuleSet,
    hitlist,
    cell: SweepCell,
    model: Optional[TrafficModel] = None,
    seed: int = 7,
    threshold: float = 0.4,
    chunk_size: int = 4096,
    address_space: Optional[Prefix] = None,
    plan: Optional[AddressPlan] = None,
    out_dir: Optional[pathlib.Path] = None,
) -> Dict[str, object]:
    """Run one cell end to end; returns (and optionally writes) its
    ``repro.sweep.metrics/1`` document."""
    model = model or TrafficModel()
    if plan is None:
        plan = build_address_plan(
            address_space or DEFAULT_SWEEP_SPACE,
            model.lines,
            churn_probability=cell.churn,
            cgnat_pool_size=cell.cgnat_pool,
            seed=cell_seed(cell, seed) & 0x7FFFFFFF,
        )
    text, truth = synthesize_cell(
        rules, hitlist, cell, model, plan, seed
    )
    per_record = _detect(
        rules, hitlist, text, threshold, False, chunk_size
    )
    columnar = _detect(
        rules, hitlist, text, threshold, True, chunk_size
    )
    paths_equal = per_record.detections == columnar.detections and all(
        getattr(per_record.metrics, name)
        == getattr(columnar.metrics, name)
        for name in _EQUAL_FIELDS
    )
    score = _score(rules, truth, plan, per_record.detections)
    document: Dict[str, object] = {
        "schema": CELL_SCHEMA,
        "cell_id": cell.cell_id,
        "cell": cell.as_dict(),
        "seed": seed,
        "model": {
            "lines": model.lines,
            "days": len(truth.days),
            "owner_fraction": model.owner_fraction,
            "wire_packets_per_domain_day": (
                model.wire_packets_per_domain_day
            ),
        },
        "truth": {
            "owners": len(truth.owners),
            "hidden": len(truth.hidden),
            "mimics": len(truth.mimics),
            "classes": len(truth.truth_lines(rules)),
        },
        "flows": per_record.metrics.records_processed,
        "detections": len(per_record.detections),
        "paths_equal": paths_equal,
        "score": score,
        "throughput": {
            "per_record_rps": per_record.metrics.records_per_second,
            "columnar_rps": columnar.metrics.records_per_second,
        },
    }
    if out_dir is not None:
        out_dir = pathlib.Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"cell-{cell.cell_id}.json"
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return document


@dataclass
class SweepResult:
    """Outcome of one grid run."""

    grid: str
    cells: List[Dict[str, object]]
    scorecard: Dict[str, object]
    markdown: str
    out_dir: Optional[pathlib.Path] = None

    @property
    def all_paths_equal(self) -> bool:
        return all(doc["paths_equal"] for doc in self.cells)


def run_sweep(
    rules: RuleSet,
    hitlist,
    grid: SweepGrid,
    model: Optional[TrafficModel] = None,
    seed: int = 7,
    threshold: float = 0.4,
    chunk_size: int = 4096,
    workers: int = 1,
    address_space: Optional[Prefix] = None,
    out_dir: Optional[pathlib.Path] = None,
) -> SweepResult:
    """Run every cell of ``grid`` (optionally across processes) and
    aggregate the scorecard.

    Cell results are identical for any ``workers`` value: each cell is
    seeded from ``(seed, cell_id)`` alone and the address space is
    resolved once up front.
    """
    model = model or TrafficModel()
    cells = grid.cells()
    out = pathlib.Path(out_dir) if out_dir is not None else None
    workers = resolve_workers(workers, task_count=len(cells))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    run_cell,
                    rules,
                    hitlist,
                    cell,
                    model=model,
                    seed=seed,
                    threshold=threshold,
                    chunk_size=chunk_size,
                    address_space=address_space,
                    out_dir=out,
                )
                for cell in cells
            ]
            documents = [future.result() for future in futures]
    else:
        documents = [
            run_cell(
                rules,
                hitlist,
                cell,
                model=model,
                seed=seed,
                threshold=threshold,
                chunk_size=chunk_size,
                address_space=address_space,
                out_dir=out,
            )
            for cell in cells
        ]
    documents.sort(key=lambda doc: doc["cell_id"])
    scorecard = build_scorecard(documents, grid.name)
    markdown = render_markdown(scorecard)
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / "scorecard.json").write_text(
            json.dumps(scorecard, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        (out / "scorecard.md").write_text(markdown, encoding="utf-8")
    return SweepResult(
        grid=grid.name,
        cells=documents,
        scorecard=scorecard,
        markdown=markdown,
        out_dir=out,
    )
