"""Compatibility re-export: the metrics documents moved to
:mod:`repro.pipeline.metrics` when metrics emission was unified in the
staged pipeline layer.  Import from there in new code; this module
keeps the historical ``repro.engine.metrics`` import path working for
the batch engine's callers.
"""

from repro.pipeline.metrics import (
    METRICS_SCHEMA,
    EngineMetrics,
    ShardMetrics,
    StreamMetrics,
)

__all__ = [
    "ShardMetrics",
    "EngineMetrics",
    "StreamMetrics",
    "METRICS_SCHEMA",
]
