"""Engine metrics: stage timings, shard memory, throughput.

The engine emits one :class:`EngineMetrics` per run so performance can
be tracked as a ``BENCH_*.json`` trajectory.  Schema (version
``repro.engine.metrics/1``)::

    {
      "schema": "repro.engine.metrics/1",
      "config": {"subscribers": …, "days": …, "seed": …,
                 "sampling_interval": …, "workers": …, "shard_size": …},
      "stages": {"plan_seconds": …, "simulate_seconds": …,
                 "aggregate_seconds": …, "total_seconds": …},
      "shards": {"count": …, "peak_rss_bytes_max": …,
                 "peak_rss_bytes_mean": …},
      "throughput": {"draws": …, "flows_per_second": …},
      "cohorts": {"<product>": {"owners": …, "universe": …,
                  "shards": …}}
    }

``flows_per_second`` counts simulated per-(owner, hour, domain)
evidence draws — the engine's equivalent of raw flow records folded
through the detector — divided by the simulate-stage wall time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ShardMetrics", "EngineMetrics", "METRICS_SCHEMA"]

#: Version tag carried in every metrics document.
METRICS_SCHEMA = "repro.engine.metrics/1"


@dataclass
class ShardMetrics:
    """Timing/memory/throughput record of one simulated shard."""

    product: str
    owners: int
    universe: int
    wall_seconds: float
    draws: int
    peak_rss_bytes: int


@dataclass
class EngineMetrics:
    """Aggregated metrics of one sharded wild-ISP run."""

    subscribers: int
    days: int
    seed: int
    sampling_interval: int
    workers: int
    shard_size: int
    plan_seconds: float = 0.0
    simulate_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    shards: List[ShardMetrics] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Wall time across all engine stages."""
        return (
            self.plan_seconds + self.simulate_seconds + self.aggregate_seconds
        )

    @property
    def total_draws(self) -> int:
        """Simulated evidence draws across all shards."""
        return sum(shard.draws for shard in self.shards)

    @property
    def flows_per_second(self) -> float:
        """Evidence draws folded per simulate-stage wall second."""
        if self.simulate_seconds <= 0:
            return 0.0
        return self.total_draws / self.simulate_seconds

    def cohort_sizes(self) -> Dict[str, Dict[str, int]]:
        """Per-product owner/universe/shard-count summary."""
        cohorts: Dict[str, Dict[str, int]] = {}
        for shard in self.shards:
            entry = cohorts.setdefault(
                shard.product,
                {"owners": 0, "universe": shard.universe, "shards": 0},
            )
            entry["owners"] += shard.owners
            entry["shards"] += 1
        return cohorts

    def to_dict(self) -> Dict[str, object]:
        """Render the documented JSON-serialisable schema."""
        rss = [shard.peak_rss_bytes for shard in self.shards]
        return {
            "schema": METRICS_SCHEMA,
            "config": {
                "subscribers": self.subscribers,
                "days": self.days,
                "seed": self.seed,
                "sampling_interval": self.sampling_interval,
                "workers": self.workers,
                "shard_size": self.shard_size,
            },
            "stages": {
                "plan_seconds": self.plan_seconds,
                "simulate_seconds": self.simulate_seconds,
                "aggregate_seconds": self.aggregate_seconds,
                "total_seconds": self.total_seconds,
            },
            "shards": {
                "count": len(self.shards),
                "peak_rss_bytes_max": max(rss) if rss else 0,
                "peak_rss_bytes_mean": (
                    int(sum(rss) / len(rss)) if rss else 0
                ),
            },
            "throughput": {
                "draws": self.total_draws,
                "flows_per_second": self.flows_per_second,
            },
            "cohorts": self.cohort_sizes(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise :meth:`to_dict` as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
