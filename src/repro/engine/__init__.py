"""Sharded multiprocess wild-simulation engine.

The Section 6 in-the-wild study is, at production scale, a throughput
problem: detection rules are cheap per line, but a 15M-line ISP has a
lot of lines.  This package turns the serial per-cohort simulation of
:mod:`repro.isp.simulation` into a sharded pipeline:

* :mod:`repro.engine.plan` — compiles each product cohort into a
  picklable numeric :class:`~repro.engine.plan.CohortPlan` (compact
  domain universe, per-day hitlist availability, rule index tables) and
  partitions cohorts into owner shards with deterministic per-shard RNG
  streams derived via :meth:`numpy.random.SeedSequence.spawn`;
* :mod:`repro.engine.worker` — simulates one shard with a
  memory-bounded hour-block evaluation whose peak temporary allocation
  is capped regardless of subscriber count;
* :mod:`repro.engine.runner` — fans shards out over a
  :class:`concurrent.futures.ProcessPoolExecutor` and aggregates shard
  results deterministically (results are folded in shard order, so the
  output is identical for any worker count);
* :mod:`repro.engine.metrics` — per-stage wall time, shard memory,
  throughput and cohort-size metrics, serialisable to JSON for
  ``BENCH_*.json`` trajectories.

Determinism contract: same seed + same shard plan (``shard_size``)
⇒ bit-identical series for *any* worker count; different shard sizes
⇒ statistically equivalent series (per-shard RNG streams differ).
The ``workers=1`` path of :func:`repro.isp.simulation.run_wild_isp`
bypasses the engine entirely and stays bit-exact with the historical
serial implementation.
"""

from repro.engine.metrics import EngineMetrics, ShardMetrics
from repro.engine.plan import CohortPlan, RulePlan, build_cohort_plan, plan_shards
from repro.engine.runner import run_wild_isp_sharded
from repro.engine.worker import ShardResult, ShardTask, simulate_shard

__all__ = [
    "CohortPlan",
    "RulePlan",
    "EngineMetrics",
    "ShardMetrics",
    "ShardResult",
    "ShardTask",
    "build_cohort_plan",
    "plan_shards",
    "run_wild_isp_sharded",
    "simulate_shard",
]
