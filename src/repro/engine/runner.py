"""Sharded wild-ISP orchestration.

:func:`run_wild_isp_sharded` is the multiprocess counterpart of
:func:`repro.isp.simulation.run_wild_isp`: same inputs, same
:class:`~repro.isp.simulation.WildIspResult` output, but the per-cohort
simulation is compiled into :class:`~repro.engine.plan.CohortPlan`
tasks, fanned out over a supervised process pool
(:class:`~repro.resilience.supervisor.ShardSupervisor`) and folded back
deterministically.  The supervisor retries failed shards, kills
timed-out workers, and dead-letters poison shards instead of aborting;
its counters land in the ``faults`` section of the metrics document.

Determinism: the shard plan (cohort order, shard boundaries, per-shard
:class:`numpy.random.SeedSequence` streams) depends only on
``(seed, shard_size)``.  Shard results are aggregated in task order, so
any worker count — including the inline ``workers == 1`` execution that
skips the pool entirely — produces bit-identical series.
"""

from __future__ import annotations

import pathlib
import time
from typing import Dict, List

import numpy as np

from repro.engine.plan import build_cohort_plan, plan_shards
from repro.engine.worker import (
    DEFAULT_BLOCK_BYTES,
    ShardResult,
    ShardTask,
    simulate_shard,
)
from repro.pipeline.core import GuardSet, StagedRun
from repro.pipeline.metrics import EngineMetrics
from repro.resilience.supervisor import ShardSupervisor, SupervisorConfig

__all__ = ["resolve_workers", "run_wild_isp_sharded"]

#: Rows unpacked per step when rebuilding the "other classes" hourly
#: series from bit-packed shard rows (bounds aggregation memory).
_UNPACK_CHUNK = 65_536


# Worker-count resolution now lives in the runtime layer so the sweep
# fan-out and the stream fleet share the exact clamping/capping rules;
# re-exported here because this was its historical home.
from repro.runtime.workers import resolve_workers  # noqa: E402,F401


def run_wild_isp_sharded(
    scenario,
    rules,
    hitlist,
    config=None,
    population=None,
    ownership=None,
    topology=None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    faults=None,
    stop_token=None,
):
    """Run the Section 6 in-the-wild ISP study on the sharded engine.

    Accepts the same arguments as
    :func:`repro.isp.simulation.run_wild_isp`; worker count and shard
    size come from ``config.workers`` / ``config.shard_size``.  The
    returned :class:`~repro.isp.simulation.WildIspResult` additionally
    carries the engine's metrics document in ``result.metrics``.

    Shard execution is supervised (see
    :class:`~repro.resilience.supervisor.ShardSupervisor`): failed
    shards retry up to ``config.max_retries`` with backoff, shards
    overrunning ``config.shard_timeout`` are killed, and persistent
    failures are dead-lettered into the metrics document (and
    ``config.quarantine_dir``, when set) instead of aborting the run.
    ``faults`` optionally injects a
    :class:`repro.faults.ShardFaultPlan` into workers (test harness).

    Runtime guards (see :mod:`repro.runtime`): ``stop_token`` defaults
    to the active :func:`~repro.runtime.shutdown.current_token`;
    ``config.memory_budget`` attaches a
    :class:`~repro.runtime.memory.MemoryGovernor` and
    ``config.deadline`` a wall-clock budget.  A guarded stop ends
    shard admission at the next boundary — completed shards keep their
    results, surrendered ones are counted in
    ``metrics["faults"]["unstarted_shards"]`` and the run is marked
    ``degraded`` in the ``"overload"`` section.
    """
    from repro.isp.simulation import (
        WildConfig,
        WildIspResult,
        aggregate_daily_detections,
        cumulative_churn_series,
    )
    from repro.isp.subscribers import (
        SubscriberPopulation,
        derive_product_penetration,
    )

    config = config or WildConfig()
    topology = topology or scenario.isp_topology(config.sampling_interval)
    population = population or SubscriberPopulation(
        config.subscribers,
        topology.subscriber_space,
        churn_probability=config.churn_probability,
        seed=config.seed,
    )
    if ownership is None:
        penetration = derive_product_penetration(scenario.catalog)
        ownership = population.assign_ownership(
            scenario.catalog, penetration
        )

    # ---- stage 1: compile cohorts into shard tasks ----------------------
    # Staging and guard machinery are the shared pipeline layer's
    # (see repro.pipeline.core); guards are wired in after the plan
    # stage has built the metrics document they report into.
    run = StagedRun()
    with run.stage("plan"):
        plans = []
        for product_name in sorted(ownership.product_owners):
            plan = build_cohort_plan(
                product_name,
                ownership.product_owners[product_name],
                scenario,
                rules,
                hitlist,
                days=config.days,
                sampling_interval=config.sampling_interval,
                threshold=config.threshold,
            )
            if plan is not None:
                plans.append(plan)

        root = np.random.SeedSequence(config.seed)
        cohort_sequences = root.spawn(len(plans))
        tasks: List[ShardTask] = []
        for plan, sequence in zip(plans, cohort_sequences):
            shards = plan_shards(plan.owners.size, config.shard_size)
            shard_sequences = sequence.spawn(len(shards))
            for (start, stop), shard_sequence in zip(
                shards, shard_sequences
            ):
                tasks.append(
                    ShardTask(
                        index=len(tasks),
                        plan=plan,
                        start=start,
                        stop=stop,
                        seed=shard_sequence,
                        days=config.days,
                        usage_packet_threshold=(
                            config.usage_packet_threshold
                        ),
                        block_bytes=block_bytes,
                    )
                )
        workers = resolve_workers(config.workers, task_count=len(tasks))
        metrics = EngineMetrics(
            subscribers=config.subscribers,
            days=config.days,
            seed=config.seed,
            sampling_interval=config.sampling_interval,
            workers=workers,
            shard_size=config.shard_size,
            max_retries=config.max_retries,
            shard_timeout=config.shard_timeout,
        )

    # ---- runtime guards (see repro.pipeline.core) ------------------------
    run.guards = GuardSet.build(
        memory_budget=getattr(config, "memory_budget", None),
        deadline=getattr(config, "deadline", None),
        stop_token=stop_token,
        overload=metrics.overload,
    )
    guards = run.guards

    # ---- stage 2: simulate shards (supervised) ---------------------------
    supervised = (
        faults is not None
        or config.shard_timeout is not None
        or (workers > 1 and len(tasks) > 1)
    )
    with run.stage("simulate"):
        if not supervised:
            results = []
            for task in run.admit(tasks):
                results.append(simulate_shard(task))
            metrics.unstarted_shards += run.surrendered
        else:
            supervisor = ShardSupervisor(
                pool_size=min(workers, max(1, len(tasks))),
                config=SupervisorConfig(
                    max_retries=config.max_retries,
                    shard_timeout=config.shard_timeout,
                    quarantine_dir=(
                        pathlib.Path(config.quarantine_dir)
                        if config.quarantine_dir is not None
                        else None
                    ),
                ),
            )
            results, report = supervisor.run(
                tasks,
                faults=faults,
                stop_token=guards.stop_token,
                governor=guards.governor,
                deadline=guards.deadline,
            )
            metrics.record_supervision(report)

    # ---- stage 3: deterministic fold (task order) ------------------------
    stage_start = time.perf_counter()
    hours = config.hours
    class_names = list(rules.class_names())
    hourly_counts = {
        name: np.zeros(hours, dtype=np.int64) for name in class_names
    }
    daily_detected: Dict[str, List[List[np.ndarray]]] = {
        name: [[] for _ in range(config.days)] for name in class_names
    }
    other_packed: Dict[int, np.ndarray] = {}
    alexa_active_hourly = np.zeros(hours, dtype=np.int64)

    for result in sorted(results, key=lambda item: item.index):
        metrics.shards.append(result.metrics)
        for class_name, counts in result.hourly_counts.items():
            hourly_counts[class_name] += counts
        for class_name, per_day in result.daily_owners.items():
            for day, detected in enumerate(per_day):
                if detected.size:
                    daily_detected[class_name][day].append(detected)
        if result.alexa_hourly is not None:
            alexa_active_hourly += result.alexa_hourly
        for row, owner in enumerate(result.other_owners):
            existing = other_packed.get(int(owner))
            if existing is None:
                other_packed[int(owner)] = result.other_bits[row].copy()
            else:
                existing |= result.other_bits[row]

    daily_counts, other_daily, any_daily = aggregate_daily_detections(
        daily_detected, class_names, config.days
    )

    other_hourly = np.zeros(hours, dtype=np.int64)
    if other_packed:
        packed = np.stack(list(other_packed.values()))
        for first in range(0, packed.shape[0], _UNPACK_CHUNK):
            bits = np.unpackbits(
                packed[first : first + _UNPACK_CHUNK], axis=1, count=hours
            )
            other_hourly += bits.sum(axis=0, dtype=np.int64)

    cumulative_lines, cumulative_slash24 = cumulative_churn_series(
        daily_detected, daily_counts, population, config.days
    )

    owner_counts = {
        class_name: int(
            ownership.owners_of_class(scenario.catalog, class_name).size
        )
        for class_name in class_names
    }
    run.seconds["aggregate"] = time.perf_counter() - stage_start

    metrics.plan_seconds = run.seconds.get("plan", 0.0)
    metrics.simulate_seconds = run.seconds.get("simulate", 0.0)
    metrics.aggregate_seconds = run.seconds.get("aggregate", 0.0)

    return WildIspResult(
        config=config,
        hourly_counts=hourly_counts,
        daily_counts=daily_counts,
        other_hourly=other_hourly,
        other_daily=other_daily,
        any_daily=any_daily,
        cumulative_lines=cumulative_lines,
        cumulative_slash24=cumulative_slash24,
        alexa_active_hourly=alexa_active_hourly,
        owner_counts=owner_counts,
        metrics=metrics.to_dict(),
    )
