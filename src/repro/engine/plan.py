"""Cohort compilation and shard planning.

A :class:`CohortPlan` is the fully numeric, picklable distillation of
one product cohort: everything the shard worker needs to simulate
sampled-domain evidence and evaluate detection rules, with no reference
to the (unpicklable, heavyweight) :class:`~repro.scenario.Scenario`.
Compiling plans in the parent process keeps per-task IPC payloads down
to a few kilobytes of small arrays.

Two compactions happen here:

* the *domain universe* of a cohort is restricted to domains the
  product actually contacts (``idle_pph > 0`` or ``active_pph > 0``);
  zero-rate rule domains can never produce evidence, so dropping them
  from the Bernoulli draws changes nothing while shrinking the hot
  ``(owners, hours, domains)`` sampling tensor;
* rules whose satisfiable evidence (non-zero-rate domains, critical
  domains included) cannot reach the required count are marked
  unsatisfiable and skipped entirely by the worker.

Per-day hitlist validity is compiled into ``day_available``: a domain
with no (address, port) endpoint on the hitlist for a study day cannot
be matched by the detector that day, so its evidence probability is
zeroed for that day (see ``_domain_day_availability``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet

__all__ = [
    "CohortPlan",
    "RulePlan",
    "build_cohort_plan",
    "domain_day_availability",
    "plan_shards",
]


@dataclass(frozen=True)
class RulePlan:
    """One detection rule compiled against a cohort's compact universe.

    ``indices``/``critical`` index into the cohort's compact domain
    universe.  ``needed`` is precomputed from the rule's *full* domain
    count (zero-rate domains still count towards ``N`` in
    ``max(1, floor(D * N))``).  ``satisfiable`` is ``False`` when the
    compact universe cannot possibly meet the requirement — the worker
    then skips the rule and reports it all-False.
    """

    class_name: str
    indices: np.ndarray
    critical: np.ndarray
    needed: int
    ancestors: Tuple[str, ...]
    satisfiable: bool


@dataclass(frozen=True)
class CohortPlan:
    """Numeric simulation plan for one product cohort.

    Owners are *global* subscriber indices; probabilities are per-domain
    sampled-evidence probabilities for one hour (idle vs active), over
    the compact universe.  ``day_available`` masks domains per study day
    according to the hitlist; ``alexa`` carries the summed usage-signal
    rates when the product is Alexa-enabled.
    """

    product: str
    owners: np.ndarray
    p_idle: np.ndarray  # (U,) float32
    p_active: np.ndarray  # (U,) float32
    day_available: np.ndarray  # (days, U) bool
    q_by_hour: np.ndarray  # (24,) float64
    rules: Tuple[RulePlan, ...]
    #: (lam_idle, lam_active) of the Alexa usage signal, already scaled
    #: by the sampling interval; ``None`` for non-Alexa products.
    alexa: Optional[Tuple[float, float]]

    @property
    def universe_size(self) -> int:
        """Number of domains in the compact sampling universe."""
        return int(self.p_idle.size)


def _relevant_rule_names(
    product_classes: Sequence[str], rules: RuleSet
) -> List[str]:
    names: List[str] = []
    for class_name in product_classes:
        if class_name not in rules:
            continue
        for candidate in [class_name] + rules.ancestors(class_name):
            if candidate not in names:
                names.append(candidate)
    return names


def domain_day_availability(
    hitlist: Hitlist, domains: Sequence[str], days: int
) -> np.ndarray:
    """Per-(day, domain) hitlist availability matrix.

    A domain is *available* on a study day when the daily hitlist lists
    at least one (address, port) endpoint for it — only then can the
    detector attribute a sampled flow to it.  Days outside the hitlist
    window (no endpoint map at all) fall back to all-available, so
    longer-than-hitlist simulations keep their historical behaviour.
    """
    available = np.ones((days, len(domains)), dtype=bool)
    for day in range(days):
        endpoints = hitlist.endpoints_for_day(day)
        if not endpoints:
            continue  # outside the hitlist window: assume available
        present = set(endpoints.values())
        for column, fqdn in enumerate(domains):
            available[day, column] = fqdn in present
    return available


def build_cohort_plan(
    product_name: str,
    owners: np.ndarray,
    scenario,
    rules: RuleSet,
    hitlist: Hitlist,
    days: int,
    sampling_interval: int,
    threshold: float,
) -> Optional[CohortPlan]:
    """Compile one product cohort into a :class:`CohortPlan`.

    Returns ``None`` when the cohort is empty or no rule monitors any
    of the product's detection classes (mirroring the serial path's
    skip conditions).
    """
    from repro.isp.simulation import diurnal_profile_for
    from repro.timeutil import STUDY_START, hour_of_day

    catalog = scenario.catalog
    library = scenario.library
    product = catalog.product(product_name)
    relevant_names = _relevant_rule_names(product.detection_classes, rules)
    if not relevant_names or owners.size == 0:
        return None
    # int32 halves the owner-id pickle volume on the result path.
    owners = np.ascontiguousarray(owners, dtype=np.int32)
    relevant = [rules.rule(name) for name in relevant_names]
    profile = library.profile(product_name)
    usage_by_fqdn = {usage.fqdn: usage for usage in profile.usages}

    full_universe: List[str] = []
    for rule in relevant:
        for fqdn in rule.domains:
            if fqdn not in full_universe:
                full_universe.append(fqdn)

    def _rate(fqdn: str, active: bool) -> float:
        usage = usage_by_fqdn.get(fqdn)
        if usage is None:
            return 0.0
        return usage.active_pph if active else usage.idle_pph

    # Compact universe: only domains the product can actually contact.
    compact = [
        fqdn
        for fqdn in full_universe
        if _rate(fqdn, False) > 0.0 or _rate(fqdn, True) > 0.0
    ]
    index_of = {fqdn: column for column, fqdn in enumerate(compact)}
    scale = 1.0 / sampling_interval
    lam_idle = np.array([_rate(fqdn, False) for fqdn in compact])
    lam_active = np.array([_rate(fqdn, True) for fqdn in compact])
    p_idle = (1.0 - np.exp(-lam_idle * scale)).astype(np.float32)
    p_active = (1.0 - np.exp(-lam_active * scale)).astype(np.float32)

    day_available = domain_day_availability(hitlist, compact, days)

    relevant_set = set(relevant_names)
    rule_plans: List[RulePlan] = []
    for rule in relevant:
        indices = np.array(
            [index_of[fqdn] for fqdn in rule.domains if fqdn in index_of],
            dtype=np.int64,
        )
        critical = np.array(
            [index_of[fqdn] for fqdn in rule.critical if fqdn in index_of],
            dtype=np.int64,
        )
        needed = rule.required_domains(threshold)
        satisfiable = indices.size >= needed and len(critical) == len(
            rule.critical
        )
        rule_plans.append(
            RulePlan(
                class_name=rule.class_name,
                indices=indices,
                critical=critical,
                needed=needed,
                ancestors=tuple(
                    ancestor
                    for ancestor in rules.ancestors(rule.class_name)
                    if ancestor in relevant_set
                ),
                satisfiable=satisfiable,
            )
        )

    leaf_class = product.detection_classes[-1]
    behavior = library.wild_behaviors[leaf_class]
    profile_curve = diurnal_profile_for(leaf_class)
    base_hour = hour_of_day(STUDY_START)
    q_by_hour = np.array(
        [
            min(
                1.0,
                behavior.active_use_prob
                * profile_curve[(base_hour + h) % 24],
            )
            for h in range(24)
        ]
    )

    alexa: Optional[Tuple[float, float]] = None
    if "Alexa Enabled" in product.detection_classes and "Alexa Enabled" in rules:
        alexa_domains = [
            fqdn
            for fqdn in rules.rule("Alexa Enabled").domains
            if fqdn in index_of
        ]
        alexa = (
            float(sum(_rate(fqdn, False) for fqdn in alexa_domains) * scale),
            float(sum(_rate(fqdn, True) for fqdn in alexa_domains) * scale),
        )

    return CohortPlan(
        product=product_name,
        owners=owners,
        p_idle=p_idle,
        p_active=p_active,
        day_available=day_available,
        q_by_hour=q_by_hour,
        rules=tuple(rule_plans),
        alexa=alexa,
    )


def plan_shards(owner_count: int, shard_size: int) -> List[Tuple[int, int]]:
    """Partition a cohort of ``owner_count`` owners into contiguous
    ``[start, stop)`` shards of at most ``shard_size`` owners.

    Every owner lands in exactly one shard; the partition depends only
    on the cohort size and ``shard_size`` — never on worker count.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be positive: {shard_size}")
    return [
        (start, min(start + shard_size, owner_count))
        for start in range(0, owner_count, shard_size)
    ]
