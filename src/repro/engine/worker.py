"""Per-shard simulation worker.

:func:`simulate_shard` is the function executed inside pool workers.
It is deliberately self-contained: a :class:`ShardTask` carries a
numeric :class:`~repro.engine.plan.CohortPlan`, an owner slice and a
:class:`numpy.random.SeedSequence`, so tasks pickle in microseconds and
workers never touch the scenario object.

Memory model: instead of the serial path's per-day
``(owners, 24, |universe|)`` float64 temporaries, evidence is drawn in
*hour blocks* whose float32 sampling tensor is capped at
``block_bytes`` (default 16 MiB).  Block size adapts to the shard: a
small cohort evaluates whole days in one vectorised operation, a large
shard over a wide domain universe degrades gracefully to per-hour
evaluation.  Peak worker RSS is therefore bounded by the shard size,
not by the subscriber count.

Outputs are compact: per-class hourly *counts* (not per-owner
matrices), per-day detected-owner index arrays, and a bit-packed
per-owner hourly matrix for the cross-cohort "other classes"
deduplication (``numpy.packbits`` along the hour axis — 8× smaller on
the wire than boolean rows).
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.metrics import ShardMetrics
from repro.engine.plan import CohortPlan

__all__ = ["ShardTask", "ShardResult", "simulate_shard", "DEFAULT_BLOCK_BYTES"]

#: Cap on the float32 sampling tensor of one hour block (bytes).
DEFAULT_BLOCK_BYTES = 16 << 20

#: Detection classes whose hierarchy panels are reported separately —
#: every other class feeds the "other 32" dedup.  Mirrors
#: ``repro.isp.simulation._HIERARCHY_CLASSES``.
_HIERARCHY_CLASSES = frozenset(
    (
        "Alexa Enabled",
        "Amazon Product",
        "Fire TV",
        "Samsung IoT",
        "Samsung TV",
    )
)


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: a contiguous owner slice of one cohort."""

    index: int  # global task index; aggregation folds in this order
    plan: CohortPlan
    start: int  # owner slice [start, stop) within plan.owners
    stop: int
    seed: np.random.SeedSequence
    days: int
    usage_packet_threshold: int
    block_bytes: int = DEFAULT_BLOCK_BYTES


@dataclass
class ShardResult:
    """Compact per-shard output, cheap to pickle back to the parent."""

    index: int
    product: str
    owners: np.ndarray  # global subscriber ids of this shard
    #: class -> (hours,) detected-line counts (summed over shard owners)
    hourly_counts: Dict[str, np.ndarray]
    #: class -> per-day arrays of detected global owner ids
    daily_owners: Dict[str, List[np.ndarray]]
    #: (hours,) actively-used-Alexa counts, or None
    alexa_hourly: Optional[np.ndarray]
    #: owners with any non-hierarchy-class hourly detection …
    other_owners: np.ndarray
    #: … and their bit-packed (m, ceil(hours/8)) hourly detection rows
    other_bits: np.ndarray
    metrics: ShardMetrics


def _block_hours(n: int, universe: int, block_bytes: int) -> int:
    """Hours per evaluation block so the float32 draw tensor stays
    under ``block_bytes`` (always at least one hour)."""
    per_hour = max(1, n * max(1, universe) * 4)
    return int(min(24, max(1, block_bytes // per_hour)))


def simulate_shard(task: ShardTask) -> ShardResult:
    """Simulate one owner shard hour-block by hour-block.

    The RNG stream is derived solely from ``task.seed``; given a fixed
    shard plan the result is bit-identical no matter which worker
    process (or how many) executes it.
    """
    started = time.perf_counter()
    plan = task.plan
    owners = plan.owners[task.start : task.stop]
    n = owners.size
    universe = plan.universe_size
    days = task.days
    hours = days * 24
    rng = np.random.default_rng(task.seed)

    hourly_counts: Dict[str, np.ndarray] = {
        rule.class_name: np.zeros(hours, dtype=np.int64)
        for rule in plan.rules
    }
    daily_owners: Dict[str, List[np.ndarray]] = {
        rule.class_name: [] for rule in plan.rules
    }
    other_classes = [
        rule.class_name
        for rule in plan.rules
        if rule.class_name not in _HIERARCHY_CLASSES
    ]
    other_rows = (
        np.zeros((n, hours), dtype=bool) if other_classes else None
    )
    alexa_hourly = (
        np.zeros(hours, dtype=np.int64) if plan.alexa is not None else None
    )

    block = _block_hours(n, universe, task.block_bytes)
    draws = 0
    zero32 = np.float32(0.0)
    # Reusable per-width buffers: uniforms, per-cell threshold, outcome.
    buffers: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for day in range(days):
        day_row = min(day, plan.day_available.shape[0] - 1)
        available = plan.day_available[day_row]
        if available.all():
            p_active, p_idle = plan.p_active, plan.p_idle
        else:
            p_active = np.where(available, plan.p_active, zero32)
            p_idle = np.where(available, plan.p_idle, zero32)
        p_delta = p_active - p_idle
        active = rng.random((n, 24)) < plan.q_by_hour[None, :]
        active32 = active.astype(np.float32)
        day_seen = np.zeros((n, universe), dtype=bool)
        hourly_ok: Dict[str, np.ndarray] = {}
        for rule in plan.rules:
            hourly_ok[rule.class_name] = np.zeros((n, 24), dtype=bool)
        for first in range(0, 24, block):
            width = min(block, 24 - first)
            if width not in buffers:
                shape = (n, width, universe)
                buffers[width] = (
                    np.empty(shape, dtype=np.float32),
                    np.empty(shape, dtype=np.float32),
                    np.empty(shape, dtype=bool),
                )
            uniforms, thresholds, seen = buffers[width]
            rng.random(out=uniforms, dtype=np.float32)
            draws += uniforms.size
            # threshold = p_idle + active * (p_active - p_idle), fused
            # in place — one compare instead of two plus a select.
            np.multiply(
                active32[:, first : first + width, None],
                p_delta[None, None, :],
                out=thresholds,
            )
            thresholds += p_idle[None, None, :]
            np.less(uniforms, thresholds, out=seen)
            day_seen |= seen.any(axis=1)
            for rule in plan.rules:
                if not rule.satisfiable:
                    continue
                if rule.indices.size == universe:
                    counts = seen.sum(axis=2)
                else:
                    counts = seen[:, :, rule.indices].sum(axis=2)
                ok = counts >= rule.needed
                if rule.critical.size:
                    ok &= seen[:, :, rule.critical].all(axis=2)
                hourly_ok[rule.class_name][:, first : first + width] = ok

        daily_ok: Dict[str, np.ndarray] = {}
        for rule in plan.rules:
            if not rule.satisfiable:
                daily_ok[rule.class_name] = np.zeros(n, dtype=bool)
                continue
            counts = day_seen[:, rule.indices].sum(axis=1)
            ok = counts >= rule.needed
            if rule.critical.size:
                ok &= day_seen[:, rule.critical].all(axis=1)
            daily_ok[rule.class_name] = ok

        # Hierarchy conjunction, then fold into the compact outputs.
        for rule in plan.rules:
            det_h = hourly_ok[rule.class_name]
            det_d = daily_ok[rule.class_name]
            for ancestor in rule.ancestors:
                det_h = det_h & hourly_ok[ancestor]
                det_d = det_d & daily_ok[ancestor]
            span = slice(day * 24, (day + 1) * 24)
            hourly_counts[rule.class_name][span] = det_h.sum(axis=0)
            daily_owners[rule.class_name].append(owners[det_d])
            if other_rows is not None and rule.class_name in other_classes:
                other_rows[:, span] |= det_h

        if alexa_hourly is not None:
            lam_idle, lam_active = task.plan.alexa
            lam_matrix = np.where(active, lam_active, lam_idle)
            usage_counts = rng.poisson(lam_matrix)
            alexa_hourly[day * 24 : (day + 1) * 24] = (
                usage_counts >= task.usage_packet_threshold
            ).sum(axis=0)

    if other_rows is not None:
        mask = other_rows.any(axis=1)
        other_owners = owners[mask]
        other_bits = np.packbits(other_rows[mask], axis=1)
    else:
        other_owners = np.empty(0, dtype=np.int32)
        other_bits = np.empty((0, (hours + 7) // 8), dtype=np.uint8)

    metrics = ShardMetrics(
        product=plan.product,
        owners=int(n),
        universe=int(universe),
        wall_seconds=time.perf_counter() - started,
        draws=int(draws),
        peak_rss_bytes=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        * 1024,
    )
    return ShardResult(
        index=task.index,
        product=plan.product,
        owners=owners,
        hourly_counts=hourly_counts,
        daily_owners=daily_owners,
        alexa_hourly=alexa_hourly,
        other_owners=other_owners,
        other_bits=other_bits,
        metrics=metrics,
    )
