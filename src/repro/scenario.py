"""Scenario assembly: one object wiring every substrate together.

A :class:`Scenario` is the simulated world shared by all experiments:

* the device catalog and profile library (Table 1 + traffic model),
* IPv4 address space and autonomous systems,
* backend infrastructures (dedicated clusters, a cloud-VM pool, two
  shared CDNs) hosting every domain of the profile library plus a pool
  of unrelated *background* domains that make CDN addresses look shared,
* authoritative DNS zones, a passive-DNS database (DNSDB stand-in) with
  realistic coverage gaps, and an internet-wide TLS scan dataset
  (Censys stand-in),
* a whois-style registry mapping second-level domains to registrants,
  which the Section 4.1 domain classifier consults.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cloud.addressing import (
    AddressAllocator,
    ASRegistry,
    AutonomousSystem,
    Prefix,
)
from repro.cloud.infrastructure import CdnFleet, CloudVmPool, DedicatedCluster
from repro.devices.catalog import DeviceCatalog, default_catalog
from repro.devices.profiles import (
    HOSTING_CDN,
    HOSTING_CLOUD_VM,
    HOSTING_DEDICATED,
    ProfileLibrary,
    build_profile_library,
)
from repro.dns.dnsdb import PassiveDnsDatabase
from repro.dns.names import second_level_domain
from repro.dns.resolver import Resolver
from repro.dns.zone import Zone, ZoneSet
from repro.timeutil import SECONDS_PER_DAY, STUDY_END, STUDY_START
from repro.tls.certificates import Certificate
from repro.tls.scanner import ScanDataset

__all__ = ["Scenario", "WhoisRegistry", "build_default_scenario"]

#: Unrelated domains co-hosted on the shared CDN so that its addresses
#: visibly serve many second-level domains.
BACKGROUND_DOMAIN_COUNT = 240


class WhoisRegistry:
    """Maps second-level domains to (registrant, registrant kind)."""

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[str, str]] = {}

    def register(self, sld: str, registrant: str, kind: str) -> None:
        existing = self._entries.get(sld)
        if existing is not None and existing != (registrant, kind):
            raise ValueError(
                f"conflicting whois entries for {sld!r}: "
                f"{existing} vs {(registrant, kind)}"
            )
        self._entries[sld] = (registrant, kind)

    def lookup(self, name: str) -> Optional[Tuple[str, str]]:
        """Whois entry of a name's second-level domain, or ``None``."""
        return self._entries.get(second_level_domain(name))

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class Scenario:
    """The fully wired simulated world."""

    seed: int
    catalog: DeviceCatalog
    library: ProfileLibrary
    allocator: AddressAllocator
    registry: ASRegistry
    clusters: Dict[str, DedicatedCluster]
    cloud: CloudVmPool
    cdn: CdnFleet
    google_front: CdnFleet
    zones: ZoneSet
    dnsdb: PassiveDnsDatabase
    scans: ScanDataset
    whois: WhoisRegistry
    background_domains: Tuple[str, ...]

    def isp_topology(self, sampling_interval: int = 100):
        """The ISP topology for this world, cached per sampling rate so
        ground-truth and wild runs share one AS registration."""
        from repro.isp.topology import IspTopology

        cache = getattr(self, "_isp_topologies", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_isp_topologies", cache)
        if sampling_interval not in cache:
            # Derive the ASN from the sampling interval itself so the
            # assignment never depends on request order; the 32-bit
            # private band keeps it clear of the 16-bit ASNs used by
            # cloud/CDN/IXP fixtures.
            cache[sampling_interval] = IspTopology(
                self.allocator,
                self.registry,
                asn=4_200_000_000 + sampling_interval,
                sampling_interval=sampling_interval,
            )
        return cache[sampling_interval]

    def sweep_address_plan(
        self,
        count: int,
        sampling_interval: int = 100,
        churn_probability: float = 0.0,
        cgnat_pool_size: int = 1,
        seed: int = 13,
    ):
        """A per-cell :class:`~repro.isp.cgnat.AddressPlan` carved from
        this world's subscriber space.

        The scenario-matrix sweep layers CGNAT pools and churn on top
        of the same address space the ISP simulation uses, so cell
        traffic is indistinguishable (address-wise) from a wild run at
        the given sampling rate.
        """
        from repro.isp.cgnat import build_address_plan

        topology = self.isp_topology(sampling_interval)
        return build_address_plan(
            topology.subscriber_space,
            count,
            churn_probability=churn_probability,
            cgnat_pool_size=cgnat_pool_size,
            seed=seed,
        )

    def make_resolver(self, feed_dnsdb: bool = True) -> Resolver:
        """A fresh caching resolver over this world's zones."""
        return Resolver(
            self.zones, sink=self.dnsdb if feed_dnsdb else None
        )

    def backend_for(self, fqdn: str):
        """The infrastructure object hosting a domain."""
        zone = self.zones.zone_for(fqdn)
        if zone is None:
            raise KeyError(f"no backend hosts {fqdn!r}")
        return zone.infrastructure

    def server_address_set(self) -> Set[int]:
        """Every backend (service-side) address in the world."""
        addresses: Set[int] = set()
        for cluster in self.clusters.values():
            addresses.update(cluster.all_addresses())
        addresses.update(self.cloud.all_addresses())
        addresses.update(self.cdn.all_addresses())
        addresses.update(self.google_front.all_addresses())
        return addresses


def _cluster_prefix_length(domain_count: int, ips_per_domain: int) -> int:
    """Smallest prefix length whose block fits the cluster's slices."""
    needed = max(4, domain_count * ips_per_domain)
    length = 32
    while (1 << (32 - length)) < needed:
        length -= 1
    return length


def build_default_scenario(
    seed: int = 7,
    catalog: Optional[DeviceCatalog] = None,
    warm_passive_dns: bool = True,
    hide_classes: Optional[Set[str]] = None,
) -> Scenario:
    """Construct the deterministic default world.

    ``warm_passive_dns`` pre-populates the passive-DNS database with the
    global sensor view (several resolutions per domain per study day) —
    the reason the paper uses DNSDB instead of relying on the single
    vantage point's own resolutions.

    ``hide_classes`` re-hosts the named classes' rule domains on the
    shared CDN (the §7.4 hiding counterfactual); the hitlist pipeline
    is then expected to drop them.
    """
    catalog = catalog or default_catalog()
    library = build_profile_library(
        catalog, shared_hosting_classes=hide_classes
    )
    allocator = AddressAllocator()
    registry = ASRegistry()
    whois = WhoisRegistry()

    # ---- autonomous systems and shared infrastructure -------------------
    cloud_as = AutonomousSystem(64501, "CloudSim", "cloud")
    cdn_as = AutonomousSystem(64502, "CdnSim", "cdn")
    google_as = AutonomousSystem(64503, "GoogleFront", "cdn")
    hosting_as = AutonomousSystem(64504, "HostingSim", "hosting")

    cloud_prefix = allocator.allocate(18)
    cdn_prefix = allocator.allocate(20)
    google_prefix = allocator.allocate(20)
    cloud_as.announce(cloud_prefix)
    cdn_as.announce(cdn_prefix)
    google_as.announce(google_prefix)

    cloud = CloudVmPool("cloudsim.example", cloud_prefix, cloud_as)
    cdn = CdnFleet("cdnsim.example", cdn_prefix, cdn_as, node_count=700)
    google_front = CdnFleet(
        "googlefront.example", google_prefix, google_as, node_count=300
    )
    whois.register("cloudsim.example", "CloudSim Inc", "cloud")
    whois.register("cdnsim.example", "CdnSim Inc", "cdn")
    whois.register("googlefront.example", "Google", "cdn")

    # ---- dedicated clusters per operator SLD ----------------------------
    domains = library.domains
    dedicated_slds: Dict[str, List[str]] = {}
    for spec in domains.values():
        if spec.hosting == HOSTING_DEDICATED:
            sld = second_level_domain(spec.fqdn)
            dedicated_slds.setdefault(sld, []).append(spec.fqdn)

    clusters: Dict[str, DedicatedCluster] = {}
    for sld, fqdns in sorted(dedicated_slds.items()):
        prefix = allocator.allocate(
            _cluster_prefix_length(len(fqdns), ips_per_domain=3)
        )
        hosting_as.announce(prefix)
        cluster = DedicatedCluster(
            operator=sld,
            prefix=prefix,
            autonomous_system=hosting_as,
            ips_per_domain=3,
        )
        for fqdn in sorted(fqdns):
            cluster.host_domain(fqdn, domains[fqdn].ports)
        clusters[sld] = cluster

    # ---- cloud tenancies and CDN onboarding ------------------------------
    for fqdn, spec in sorted(domains.items()):
        if spec.hosting == HOSTING_CLOUD_VM:
            cloud.rent(fqdn, spec.ports, count=2)
        elif spec.hosting == HOSTING_CDN:
            fleet = google_front if spec.registrant == "Google" else cdn
            fleet.onboard(fqdn, spec.ports)

    # Google's frontend also serves its huge non-IoT estate (search,
    # video, maps) — that multi-SLD co-hosting is exactly what makes the
    # Google Home backend *shared* in the Section 4.2.1 sense.
    for index in range(60):
        fqdn = f"svc{index:02d}.googleweb{index % 12:02d}.example"
        google_front.onboard(fqdn, (443,))
        whois.register(
            second_level_domain(fqdn), "Google", "generic"
        )

    # ---- background (non-IoT) domains on the shared CDN ------------------
    background = tuple(
        f"site{index:03d}.webhosting{index % 40:02d}.example"
        for index in range(BACKGROUND_DOMAIN_COUNT)
    )
    for fqdn in background:
        cdn.onboard(fqdn, (443,))
        whois.register(
            second_level_domain(fqdn), "Generic Webhosting", "generic"
        )

    # ---- whois entries ----------------------------------------------------
    _KIND_BY_REGISTRANT_KIND = {
        "vendor": "iot_vendor",
        "platform": "iot_platform",
        "third_party": "third_party",
        "generic": "generic",
    }
    for spec in domains.values():
        whois.register(
            second_level_domain(spec.fqdn),
            spec.registrant,
            _KIND_BY_REGISTRANT_KIND[spec.registrant_kind],
        )

    # ---- DNS zones --------------------------------------------------------
    registry.register(cloud_as)
    registry.register(cdn_as)
    registry.register(google_as)
    registry.register(hosting_as)

    zones = ZoneSet()
    for cluster in clusters.values():
        zones.add(Zone(cluster))
    zones.add(Zone(cloud))
    zones.add(Zone(cdn))
    zones.add(Zone(google_front))

    # ---- passive DNS with coverage gaps -----------------------------------
    gap_names = {
        spec.fqdn for spec in domains.values() if spec.dnsdb_gap
    }
    dnsdb = PassiveDnsDatabase(
        coverage_filter=lambda rrname: rrname not in gap_names
    )

    # ---- TLS scan dataset ---------------------------------------------------
    scans = _build_scan_dataset(
        domains, clusters, cloud, cdn, google_front, background
    )

    scenario = Scenario(
        seed=seed,
        catalog=catalog,
        library=library,
        allocator=allocator,
        registry=registry,
        clusters=clusters,
        cloud=cloud,
        cdn=cdn,
        google_front=google_front,
        zones=zones,
        dnsdb=dnsdb,
        scans=scans,
        whois=whois,
        background_domains=background,
    )
    if warm_passive_dns:
        warm_dnsdb(scenario)
    return scenario


def _build_scan_dataset(
    domains,
    clusters: Dict[str, DedicatedCluster],
    cloud: CloudVmPool,
    cdn: CdnFleet,
    google_front: CdnFleet,
    background: Tuple[str, ...],
) -> ScanDataset:
    """Populate the Censys stand-in from the hosting layout."""
    scans = ScanDataset()

    # Dedicated and cloud-hosted HTTPS domains present a single-name
    # certificate on every address of their slice/tenancy.
    for fqdn, spec in sorted(domains.items()):
        if not spec.https or 443 not in spec.ports:
            continue
        if spec.hosting == HOSTING_DEDICATED:
            sld = second_level_domain(fqdn)
            addresses = clusters[sld].slice_for(fqdn)
        elif spec.hosting == HOSTING_CLOUD_VM:
            addresses = cloud.a_records(fqdn, STUDY_START)
        else:
            continue  # CDN certs handled below
        certificate = Certificate(subject_cn=fqdn)
        scans.add_service(
            addresses,
            443,
            certificate,
            software=f"iot-backend/{spec.registrant.lower()}",
            operator=spec.registrant,
        )

    # Non-HTTPS dedicated services still answer with a banner.
    for fqdn, spec in sorted(domains.items()):
        if spec.https or spec.hosting != HOSTING_DEDICATED:
            continue
        sld = second_level_domain(fqdn)
        scans.add_service(
            clusters[sld].slice_for(fqdn),
            spec.primary_port,
            None,
            software="embedded-httpd/1.0",
            operator=spec.registrant,
        )

    # CDN nodes present one shared multi-SAN certificate (which is what
    # defeats the "no other SAN" criterion of §4.2.2).
    for fleet, label in ((cdn, "cdnsim"), (google_front, "googlefront")):
        onboarded = sorted(fleet.domains)
        if not onboarded:
            continue
        sans = tuple(onboarded[:80]) + (f"*.{fleet.provider}",)
        certificate = Certificate(
            subject_cn=f"edge.{fleet.provider}", sans=sans
        )
        scans.add_service(
            fleet.all_addresses(),
            443,
            certificate,
            software=f"{label}-edge/2.1",
            operator=fleet.provider,
        )
    return scans


def warm_dnsdb(
    scenario: Scenario,
    start: int = STUDY_START - 2 * SECONDS_PER_DAY,
    end: int = STUDY_END,
    resolutions_per_day: int = 4,
) -> None:
    """Simulate the global passive-DNS sensor deck.

    Resolves every hosted domain several times per day across the window
    and ingests the answers, giving DNSDB the full domain↔address view
    that a single vantage point would lack.
    """
    resolver = Resolver(scenario.zones, sink=scenario.dnsdb)
    step = SECONDS_PER_DAY // resolutions_per_day
    names = scenario.zones.hosted_names()
    for day_start in range(start, end, SECONDS_PER_DAY):
        for offset in range(resolutions_per_day):
            when = day_start + offset * step
            for fqdn in names:
                resolver.resolve(fqdn, when)
        resolver.flush()
