"""Time utilities shared across the simulation.

All simulation timestamps are Unix epoch seconds (UTC).  The experiments in
the paper run from November 15th to November 28th, 2019; we anchor the
simulated clock at midnight UTC on November 15th and bucket observations
into hours and days relative to that anchor.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterator

#: Midnight UTC, November 15th 2019 — the first day of the paper's study.
STUDY_START = int(
    _dt.datetime(2019, 11, 15, tzinfo=_dt.timezone.utc).timestamp()
)

#: Midnight UTC, November 29th 2019 — end of the two-week study window
#: (November 15th through 28th, inclusive).
STUDY_END = int(
    _dt.datetime(2019, 11, 29, tzinfo=_dt.timezone.utc).timestamp()
)

SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR

#: Number of whole days in the study window.
STUDY_DAYS = (STUDY_END - STUDY_START) // SECONDS_PER_DAY

#: Active ground-truth experiment window (November 15th-18th, 2019).
ACTIVE_START = STUDY_START
ACTIVE_END = STUDY_START + 4 * SECONDS_PER_DAY

#: Idle ground-truth experiment window (November 23th-25th, 2019).
IDLE_START = int(
    _dt.datetime(2019, 11, 23, tzinfo=_dt.timezone.utc).timestamp()
)
IDLE_END = IDLE_START + 3 * SECONDS_PER_DAY


def hour_index(timestamp: int, origin: int = STUDY_START) -> int:
    """Return the zero-based hour bucket of ``timestamp`` relative to
    ``origin``.  Timestamps before the origin yield negative indices.
    """
    return (timestamp - origin) // SECONDS_PER_HOUR


def day_index(timestamp: int, origin: int = STUDY_START) -> int:
    """Return the zero-based day bucket of ``timestamp`` relative to
    ``origin``.
    """
    return (timestamp - origin) // SECONDS_PER_DAY


def hour_of_day(timestamp: int) -> int:
    """Return the hour-of-day (0-23, UTC) of an epoch timestamp."""
    return (timestamp % SECONDS_PER_DAY) // SECONDS_PER_HOUR


def hour_start(index: int, origin: int = STUDY_START) -> int:
    """Return the epoch timestamp at which hour bucket ``index`` begins."""
    return origin + index * SECONDS_PER_HOUR

def day_start(index: int, origin: int = STUDY_START) -> int:
    """Return the epoch timestamp at which day bucket ``index`` begins."""
    return origin + index * SECONDS_PER_DAY


def iter_hours(start: int, end: int) -> Iterator[int]:
    """Yield the epoch timestamp of every full hour in ``[start, end)``."""
    first = start - (start % SECONDS_PER_HOUR)
    if first < start:
        first += SECONDS_PER_HOUR
    for ts in range(first, end, SECONDS_PER_HOUR):
        yield ts


def format_day(timestamp: int) -> str:
    """Render an epoch timestamp as the paper's day labels, e.g.
    ``"Nov-15"``.
    """
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.strftime("%b-%d")


def format_hour(timestamp: int) -> str:
    """Render an epoch timestamp as ``"Nov-15 13:00"`` (UTC)."""
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.strftime("%b-%d %H:00")
