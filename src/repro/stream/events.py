"""Compatibility re-export: detection events and sinks moved to
:mod:`repro.pipeline.events`.

The event log is the flow pipeline's output contract across *all*
assemblies (batch replay, stream, IXP tap), so the event type and the
sinks live in the pipeline layer; this module remains for existing
importers of the historical location.
"""

from repro.pipeline.events import (
    DetectionEvent,
    JsonlEventSink,
    MemoryEventSink,
    read_event_log,
)

__all__ = [
    "DetectionEvent",
    "MemoryEventSink",
    "JsonlEventSink",
    "read_event_log",
]
