"""The streaming detection engine.

:class:`StreamDetectionEngine` consumes an ordered flow-record stream
(a :class:`~repro.netflow.replay.FlowReplaySource`, or the tuple fast
path over a flow file), folds each record into bounded per-subscriber
state, and emits a :class:`~repro.stream.events.DetectionEvent` the
moment a rule's domain-evidence threshold ``D`` — and every ancestor's
— is crossed.  Rule evaluation is
:class:`repro.core.detector.SubscriberProgress`, the exact core the
batch :class:`~repro.core.detector.FlowDetector` replays through, so on
an in-order replay the stream's events equal the batch detections (the
golden-oracle property the test-suite enforces).

Crash safety: with checkpointing enabled the engine periodically
persists its entire mutable state (tables, counters, event-sink
position) through :mod:`repro.stream.checkpoint`.  Resuming truncates
the event log to the checkpointed position and re-folds the stream from
the checkpointed record index, reproducing the uninterrupted run's
event log byte for byte.

Determinism boundaries worth knowing:

* sharding (``workers``) partitions subscribers by digest, so worker
  count never changes *which* events are emitted, only how state is
  split across tables (relevant once tables are small enough to evict);
* out-of-order records are folded with min-merge first-seen semantics
  (see :class:`~repro.core.detector.SubscriberProgress`); already
  emitted events are never retracted;
* LRU/TTL eviction forgets evidence, so a heavily-bounded table may
  re-emit a detection for a re-appearing subscriber — the eviction
  counters in the metrics make this observable.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.detector import _AnonymizerCache
from repro.core.hitlist import Hitlist
from repro.core.rules import RuleSet
from repro.engine.metrics import StreamMetrics
from repro.netflow.records import PROTO_TCP, TCP_ACK, TCP_SYN
from repro.netflow.replay import FlowReplaySource, FlowTuple, iter_flow_tuples
from repro.resilience.quarantine import QuarantineSink
from repro.runtime.deadline import DeadlineBudget
from repro.runtime.memory import MemoryGovernor
from repro.runtime.shutdown import StopToken, current_token
from repro.stream.checkpoint import (
    CheckpointError,
    load_latest,
    write_checkpoint,
)
from repro.stream.events import DetectionEvent, MemoryEventSink
from repro.stream.state import EvidenceStateTable
from repro.timeutil import SECONDS_PER_DAY, STUDY_START

__all__ = ["StreamConfig", "StreamDetectionEngine"]

#: Version of the engine-state payload inside a checkpoint.
STATE_VERSION = 1

#: Records between runtime-guard polls (stop token, deadline, memory
#: governor).  Small enough that a SIGTERM drains within a fraction of
#: a millisecond of stream time; large enough to keep the per-record
#: cost of guarding at one integer decrement.
GUARD_STRIDE = 64

#: A pressure shrink never reduces a state table below this bound.
_MIN_TABLE_BOUND = 128

#: Config fields that determine detection output; a checkpoint's values
#: are authoritative on resume so a resumed run cannot diverge.
_IDENTITY_FIELDS = (
    "threshold",
    "require_established",
    "max_subscribers",
    "ttl_seconds",
    "workers",
    "salt",
)


@dataclass(frozen=True)
class StreamConfig:
    """Tuning of one streaming run."""

    threshold: float = 0.4
    require_established: bool = False
    #: total tracked subscriber lines (split across workers)
    max_subscribers: int = 1 << 16
    #: evict lines idle longer than this (event-time seconds); None = off
    ttl_seconds: Optional[int] = None
    #: state shards; subscribers are partitioned by digest
    workers: int = 1
    salt: str = "haystack"
    checkpoint_dir: Optional[pathlib.Path] = None
    #: write a checkpoint every N processed records; 0 disables
    checkpoint_every: int = 0
    checkpoint_keep: int = 3
    #: sample malformed/impossible records here instead of raising;
    #: ``None`` keeps the historical raise-on-bad-record behaviour
    quarantine_dir: Optional[pathlib.Path] = None


class StreamDetectionEngine:
    """Incremental, bounded-memory online detector."""

    def __init__(
        self,
        rules: RuleSet,
        hitlist: Hitlist,
        config: Optional[StreamConfig] = None,
        sink=None,
        quarantine: Optional[QuarantineSink] = None,
        stop_token: Optional[StopToken] = None,
        governor: Optional[MemoryGovernor] = None,
        deadline: Optional[DeadlineBudget] = None,
    ) -> None:
        config = config or StreamConfig()
        if config.workers < 1:
            raise ValueError("workers must be >= 1")
        if config.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if config.checkpoint_every and config.checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every needs a checkpoint_dir"
            )
        self.rules = rules
        self.hitlist = hitlist
        self.config = config
        self.sink = sink if sink is not None else MemoryEventSink()
        if quarantine is None and config.quarantine_dir is not None:
            quarantine = QuarantineSink(config.quarantine_dir)
        self.quarantine = quarantine
        per_worker = max(1, config.max_subscribers // config.workers)
        self._tables = [
            EvidenceStateTable(per_worker, config.ttl_seconds)
            for _ in range(config.workers)
        ]
        self._digests = _AnonymizerCache(config.salt)
        #: raw subscriber id -> (digest, worker shard)
        self._identities: Dict[int, Tuple[str, int]] = {}
        self._daily = hitlist.daily_endpoints
        self._cached_day: Optional[int] = None
        self._cached_endpoints: Dict[Tuple[int, int], str] = {}
        self.metrics = StreamMetrics(
            workers=config.workers,
            max_subscribers=config.max_subscribers,
            ttl_seconds=config.ttl_seconds,
            checkpoint_every=config.checkpoint_every,
            threshold=config.threshold,
        )
        # -- runtime guards (see repro.runtime) -----------------------
        self._stop_token = stop_token
        self.governor = governor
        self.deadline = deadline
        if governor is not None:
            self.metrics.overload = governor.metrics
        if deadline is not None:
            self.metrics.overload.deadline_seconds = deadline.seconds
        #: digests whose evidence a pressure shrink discarded — the
        #: accounting tests use this to scope the match-on-unshedded
        #: guarantee
        self.shed_subscribers: Set[str] = set()
        self._pressure_sheds = 0

    # -- construction from a checkpoint -------------------------------

    @classmethod
    def resume(
        cls,
        rules: RuleSet,
        hitlist: Hitlist,
        config: Optional[StreamConfig] = None,
        sink=None,
        quarantine: Optional[QuarantineSink] = None,
        stop_token: Optional[StopToken] = None,
        governor: Optional[MemoryGovernor] = None,
        deadline: Optional[DeadlineBudget] = None,
    ) -> "StreamDetectionEngine":
        """Rebuild an engine from the newest usable checkpoint.

        Detection-identity fields (threshold, workers, table bounds,
        salt) are taken from the checkpoint — they must not drift
        across a resume or the continued run would diverge from the
        uninterrupted one.  Operational fields (checkpoint cadence,
        retention, directory) come from ``config``.  The sink is
        truncated to the checkpointed position so re-folded records
        re-emit into a log that ends up byte-identical.  The metrics
        record which checkpoint generation was resumed from and how
        many damaged generations were skipped getting there.
        """
        config = config or StreamConfig()
        if config.checkpoint_dir is None:
            raise ValueError("resume needs config.checkpoint_dir")
        loaded = load_latest(config.checkpoint_dir)
        if loaded is None:
            raise CheckpointError(
                f"no usable checkpoint under {config.checkpoint_dir}"
            )
        payload = loaded.payload
        version = payload.get("state_version")
        if version != STATE_VERSION:
            raise CheckpointError(
                f"engine state version {version!r} unsupported"
            )
        saved = payload["config"]
        config = replace(
            config,
            **{name: saved[name] for name in _IDENTITY_FIELDS},
        )
        engine = cls(
            rules,
            hitlist,
            config,
            sink,
            quarantine=quarantine,
            stop_token=stop_token,
            governor=governor,
            deadline=deadline,
        )
        engine.metrics.resumed_from_generation = loaded.seq
        engine.metrics.checkpoint_fallbacks = loaded.fallbacks
        engine._tables = [
            EvidenceStateTable.from_state(state)
            for state in payload["tables"]
        ]
        counters = payload["counters"]
        engine.metrics.records_processed = int(counters["records"])
        engine.metrics.flows_matched = int(counters["matched"])
        engine.metrics.flows_rejected_spoof = int(
            counters["rejected_spoof"]
        )
        engine.metrics.events_emitted = int(counters["events"])
        engine.metrics.checkpoints_written = int(
            counters["checkpoints_written"]
        )
        engine.metrics.watermark = int(payload["watermark"])
        engine.sink.truncate_to(int(payload["sink_position"]))
        return engine

    @property
    def records_processed(self) -> int:
        """Records folded so far — the resume/skip coordinate."""
        return self.metrics.records_processed

    # -- ingest -------------------------------------------------------

    def process(
        self,
        source: Union[FlowReplaySource, Iterable],
        max_records: Optional[int] = None,
    ) -> int:
        """Fold ``(index, FlowRecord)`` pairs; returns records folded.

        ``max_records`` bounds this call (used by tests to simulate a
        kill mid-stream); the engine remains resumable afterwards.

        Runtime guards (stop token, ``deadline``, memory ``governor``)
        are polled every :data:`GUARD_STRIDE` records: a requested stop
        or an expired deadline ends the call early (the engine remains
        resumable; call :meth:`drain` to persist), memory pressure runs
        the shed ladder in place.
        """
        observe = self._observe
        checkpoint_every = self.config.checkpoint_every
        processed = 0
        guard_left = GUARD_STRIDE
        drops_before = dict(getattr(source, "drops", None) or {})
        if self._check_guards(0):  # stop already requested
            return 0
        started = time.perf_counter()
        try:
            for index, flow in source:
                events = observe(
                    index,
                    flow.first_switched,
                    flow.src_ip,
                    flow.dst_ip,
                    flow.protocol,
                    flow.dst_port,
                    flow.tcp_flags,
                )
                if events:
                    self._emit(events)
                processed += 1
                if (
                    checkpoint_every
                    and self.metrics.records_processed % checkpoint_every
                    == 0
                ):
                    self.write_checkpoint()
                guard_left -= 1
                if guard_left <= 0:
                    guard_left = GUARD_STRIDE
                    if self._check_guards(GUARD_STRIDE):
                        break
                if max_records is not None and processed >= max_records:
                    break
        finally:
            self.metrics.process_seconds += time.perf_counter() - started
            watermark = getattr(source, "high_watermark", None)
            if watermark is not None:
                self.metrics.source_high_watermark = max(
                    self.metrics.source_high_watermark, watermark
                )
            self._fold_source_drops(source, drops_before)
            self._sync_state_metrics()
        return processed

    def process_tuples(
        self,
        tuples: Iterable[FlowTuple],
        start_index: int = 0,
        max_records: Optional[int] = None,
    ) -> int:
        """Fast-path ingest of pre-parsed flow tuples.

        ``tuples`` yields ``(first, src, dst, proto, dport, flags)``
        (see :func:`repro.netflow.replay.iter_flow_tuples`); indices
        are assigned from ``start_index``.
        """
        observe = self._observe
        checkpoint_every = self.config.checkpoint_every
        index = start_index
        processed = 0
        guard_left = GUARD_STRIDE
        if self._check_guards(0):  # stop already requested
            return 0
        started = time.perf_counter()
        try:
            for when, src, dst, proto, dport, flags in tuples:
                events = observe(index, when, src, dst, proto, dport, flags)
                if events:
                    self._emit(events)
                index += 1
                processed += 1
                if (
                    checkpoint_every
                    and self.metrics.records_processed % checkpoint_every
                    == 0
                ):
                    self.write_checkpoint()
                guard_left -= 1
                if guard_left <= 0:
                    guard_left = GUARD_STRIDE
                    if self._check_guards(GUARD_STRIDE):
                        break
                if max_records is not None and processed >= max_records:
                    break
        finally:
            self.metrics.process_seconds += time.perf_counter() - started
            self._sync_state_metrics()
        return processed

    def process_flowfile(
        self,
        path,
        fast: bool = True,
        max_records: Optional[int] = None,
    ) -> int:
        """Replay a flow file, continuing from ``records_processed``.

        Records already folded (a fresh engine has none; a resumed one
        skips the checkpointed prefix) are fast-forwarded over, so
        calling this repeatedly — across kills and resumes — always
        continues where the engine left off.
        """
        skip = self.records_processed
        if fast:
            tuples = iter_flow_tuples(path, quarantine=self.quarantine)
            for _ in range(skip):
                if next(tuples, None) is None:
                    return 0
            return self.process_tuples(
                tuples, start_index=skip, max_records=max_records
            )
        source = FlowReplaySource.from_flowfile(
            path, quarantine=self.quarantine
        )
        source.skip(skip)
        source.next_index = skip
        return self.process(source, max_records=max_records)

    # -- hot path -----------------------------------------------------

    def _observe(
        self,
        index: int,
        when: int,
        src: int,
        dst: int,
        proto: int,
        dport: int,
        flags: int,
    ) -> Optional[List[DetectionEvent]]:
        """Fold one record; return completed detections (usually None)."""
        metrics = self.metrics
        metrics.records_processed += 1
        metrics.records_since_checkpoint += 1
        if when > metrics.watermark:
            metrics.watermark = when
        if (
            self.config.require_established
            and proto == PROTO_TCP
            and not (flags & TCP_ACK and not flags & TCP_SYN)
        ):
            metrics.flows_rejected_spoof += 1
            return None
        day = (when - STUDY_START) // SECONDS_PER_DAY
        if day != self._cached_day:
            self._cached_day = day
            self._cached_endpoints = self._daily.get(day, {})
        fqdn = self._cached_endpoints.get((dst, dport))
        if fqdn is None:
            return None
        metrics.flows_matched += 1
        identity = self._identities.get(src)
        if identity is None:
            digest = self._digests(src)
            identity = (digest, int(digest, 16) % self.config.workers)
            self._identities[src] = identity
        digest, worker = identity
        progress = self._tables[worker].touch(digest, when)
        completed = progress.observe(
            self.rules, self.config.threshold, fqdn, when
        )
        if not completed:
            return None
        return [
            DetectionEvent(
                subscriber=digest,
                class_name=class_name,
                detected_at=detected_at,
                record_index=index,
                matched_domains=self.rules.rule(
                    class_name
                ).matched_domains(progress.first_seen),
            )
            for class_name, detected_at in completed
        ]

    def _emit(self, events: List[DetectionEvent]) -> None:
        append = self.sink.append
        for event in events:
            append(event)
        self.metrics.events_emitted += len(events)

    # -- checkpointing ------------------------------------------------

    def write_checkpoint(self) -> pathlib.Path:
        """Persist the full engine state atomically."""
        if self.config.checkpoint_dir is None:
            raise ValueError("engine has no checkpoint_dir configured")
        started = time.perf_counter()
        self.sink.flush(sync=True)
        metrics = self.metrics
        payload: Dict[str, object] = {
            "state_version": STATE_VERSION,
            "config": {
                "threshold": self.config.threshold,
                "require_established": self.config.require_established,
                "max_subscribers": self.config.max_subscribers,
                "ttl_seconds": self.config.ttl_seconds,
                "workers": self.config.workers,
                "salt": self.config.salt,
            },
            "counters": {
                "records": metrics.records_processed,
                "matched": metrics.flows_matched,
                "rejected_spoof": metrics.flows_rejected_spoof,
                "events": metrics.events_emitted,
                "checkpoints_written": metrics.checkpoints_written + 1,
            },
            "watermark": metrics.watermark,
            "sink_position": self.sink.position(),
            "tables": [table.to_state() for table in self._tables],
        }
        path = write_checkpoint(
            self.config.checkpoint_dir,
            metrics.records_processed,
            payload,
            keep=self.config.checkpoint_keep,
        )
        metrics.checkpoints_written += 1
        metrics.records_since_checkpoint = 0
        metrics.checkpoint_seconds += time.perf_counter() - started
        return path

    # -- runtime guards (see repro.runtime) ---------------------------

    @property
    def stop_token(self) -> Optional[StopToken]:
        """The explicit token, else the active coordinator's."""
        if self._stop_token is not None:
            return self._stop_token
        return current_token()

    @property
    def stopped(self) -> bool:
        """A guard (signal or deadline) ended the last ingest early."""
        return self.metrics.overload.stop_reason is not None

    def _check_guards(self, records: int) -> bool:
        """Poll the runtime guards; true when ingest must stop."""
        governor = self.governor
        if governor is not None and governor.tick(records):
            self._shed_memory(governor)
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            self._note_stop(deadline.reason)
            return True
        token = self.stop_token
        if token is not None and token.stop_requested():
            self._note_stop(token.reason or "stop")
            return True
        return False

    def _note_stop(self, reason: str) -> None:
        if self.metrics.overload.stop_reason is None:
            self.metrics.overload.stop_reason = reason

    def _shed_memory(self, governor: MemoryGovernor) -> None:
        """Run the shed ladder, lossless rungs before lossy ones.

        First pressure event: drop the recomputable identity cache,
        persist an early checkpoint (so shrinking afterwards cannot
        widen the replay window), and collect garbage — detection
        output is unaffected.  If pressure persists into later shed
        events, evidence is shed for real: every state table is shrunk
        to half its occupancy (never below ``_MIN_TABLE_BOUND``), with
        the evicted digests recorded in :attr:`shed_subscribers`.
        Subscribers never shed keep exactly the detections an
        unconstrained run would give them.
        """
        self._pressure_sheds += 1
        if self._identities:
            governor.record_action(
                "identity_cache_clear", units=len(self._identities)
            )
            self._identities.clear()
        if (
            self.config.checkpoint_dir is not None
            and self.metrics.records_since_checkpoint
        ):
            self.write_checkpoint()
            governor.record_action("early_checkpoint")
        governor.collect_garbage()
        if self._pressure_sheds == 1:
            return
        shed = 0
        for table in self._tables:
            target = max(_MIN_TABLE_BOUND, len(table) // 2)
            evicted = table.shrink(target)
            self.shed_subscribers.update(evicted)
            shed += len(evicted)
        if shed:
            governor.record_action("table_shrink", units=shed)

    def _fold_source_drops(self, source, drops_before) -> None:
        """Account a source's shed-policy drops since this call began."""
        drops = getattr(source, "drops", None)
        if not drops:
            return
        delta = {
            reason: count - drops_before.get(reason, 0)
            for reason, count in drops.items()
        }
        self.metrics.overload.record_drops(
            {r: c for r, c in delta.items() if c > 0}
        )

    def drain(self) -> Optional[pathlib.Path]:
        """Persist everything a resume needs; returns the checkpoint.

        Called after an early stop (signal, deadline): writes a final
        checkpoint at the exact record index reached — any index, not
        just a ``checkpoint_every`` boundary — and flushes the event
        sink, so the resumed run's event log ends byte-identical to an
        uninterrupted run's.  A no-op checkpoint-wise when nothing was
        folded since the last one, or without a checkpoint directory.
        """
        path = None
        if (
            self.config.checkpoint_dir is not None
            and self.metrics.records_since_checkpoint
        ):
            path = self.write_checkpoint()
        self.sink.flush(sync=True)
        self._sync_state_metrics()
        return path

    # -- reporting ----------------------------------------------------

    def _sync_state_metrics(self) -> None:
        self.metrics.subscribers_tracked = sum(
            len(table) for table in self._tables
        )
        self.metrics.evicted_lru = sum(
            table.evicted_lru for table in self._tables
        )
        self.metrics.evicted_ttl = sum(
            table.evicted_ttl for table in self._tables
        )
        self.metrics.evicted_pressure = sum(
            table.evicted_pressure for table in self._tables
        )
        for table in self._tables:
            if table.pressure_evicted:
                self.shed_subscribers.update(table.pressure_evicted)
                table.pressure_evicted.clear()
        if self.quarantine is not None:
            self.metrics.records_quarantined = self.quarantine.total
            self.metrics.quarantine_reasons = dict(self.quarantine.counts)

    def metrics_dict(self) -> Dict[str, object]:
        """The ``repro.engine.metrics/1`` stream metrics document."""
        self._sync_state_metrics()
        return self.metrics.to_dict()
